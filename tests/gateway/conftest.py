"""Fixtures for the gateway suite.

``make_world`` mirrors the serving suite's factory (reduced catalog,
zero ambient competition) so gateway tests stay fast; ``gateway_stack``
assembles the full vertical — world, runtime, tenancy store, app — and
optionally binds a live server on an ephemeral port. Plain-socket
helpers rather than an HTTP client library: several tests need to send
deliberately malformed bytes no client would emit.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional, Tuple

import pytest

from repro.core.provider import TransparencyProvider
from repro.gateway import (
    GatewayApp,
    GatewayServer,
    TenantRegistry,
    WorldManifest,
    build_runtime,
    open_tenancy_store,
)
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.workloads.competition import zero_competition
from repro.workloads.personas import (
    AVERAGE_CONSUMER,
    ESTABLISHED_PROFESSIONAL,
    RECENT_ARRIVAL_GRAD_STUDENT,
)
from repro.workloads.population import PopulationBuilder


@pytest.fixture
def make_world():
    """Factory: identically-seeded platforms with a launched sweep."""

    def build(seed: int = 11, users: int = 24) -> AdPlatform:
        platform = AdPlatform(
            config=PlatformConfig(name="gateway"),
            catalog=build_us_catalog(platform_count=40,
                                     partner_count=25),
            competing_draw=zero_competition(),
        )
        web = WebDirectory()
        builder = PopulationBuilder(platform, seed=seed)
        builder.spawn_mix(
            [ESTABLISHED_PROFESSIONAL, AVERAGE_CONSUMER,
             RECENT_ARRIVAL_GRAD_STUDENT],
            users,
        )
        builder.finalize()
        provider = TransparencyProvider(platform, web, budget=5000.0,
                                        bid_cap_cpm=10.0)
        for user_id in platform.users.user_ids():
            provider.optin.via_page_like(user_id)
        provider.launch_partner_sweep()
        return platform

    return build


class GatewayStack:
    """One assembled gateway vertical, with teardown bookkeeping."""

    def __init__(self, platform, runtime, store, tenants, app,
                 server: Optional[GatewayServer]):
        self.platform = platform
        self.runtime = runtime
        self.store = store
        self.tenants = tenants
        self.app = app
        self.server = server

    @property
    def url(self) -> str:
        assert self.server is not None
        return self.server.url

    def close(self) -> None:
        if self.server is not None:
            self.server.stop()
        if self.runtime.running:
            self.runtime.stop()
        if self.runtime.config.backend != "process":
            for shard in self.runtime.router.shards:
                shard.store.close()
        if self.store is not None:
            self.store.close()


@pytest.fixture
def gateway_stack(make_world, tmp_path):
    """Factory: a started gateway (live server unless ``serve=False``)."""
    stacks: List[GatewayStack] = []

    def build(seed: int = 11, users: int = 24, shards: int = 2,
              journal: bool = True, serve: bool = True,
              slo_spec=None) -> GatewayStack:
        manifest = WorldManifest(seed=seed, users=users, shards=shards)
        platform = make_world(seed=seed, users=users)
        journal_dir = str(tmp_path / f"journal-{len(stacks)}")
        runtime = build_runtime(
            platform, manifest,
            journal_dir=journal_dir if journal else None)
        store = tenants = None
        if journal:
            store = open_tenancy_store(journal_dir)
            tenants = TenantRegistry(platform, store)
        app = GatewayApp(platform, runtime, tenants, manifest,
                         slo_spec=slo_spec)
        runtime.start()
        server = GatewayServer(app).start() if serve else None
        stack = GatewayStack(platform, runtime, store, tenants, app,
                             server)
        stacks.append(stack)
        return stack

    yield build
    for stack in stacks:
        stack.close()


def raw_exchange(url: str, payload: bytes,
                 timeout: float = 10.0) -> bytes:
    """Send raw bytes, read until the server closes or times out."""
    host, port = _host_port(url)
    with socket.create_connection((host, port), timeout=timeout) as s:
        s.sendall(payload)
        s.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def http_request(url: str, method: str, path: str,
                 payload: Optional[dict] = None,
                 timeout: float = 10.0) -> Tuple[int, dict]:
    """One request over a fresh connection; JSON-decoded body."""
    host, port = _host_port(url)
    body = b""
    headers = [f"{method} {path} HTTP/1.1", f"Host: {host}",
               "Connection: close"]
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
        headers.append("Content-Type: application/json")
        headers.append(f"Content-Length: {len(body)}")
    frame = ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body
    raw = raw_exchange(url, frame, timeout=timeout)
    return parse_response(raw)


def parse_response(raw: bytes) -> Tuple[int, dict]:
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    if b"Content-Length" in head:
        length = int(
            [line for line in head.split(b"\r\n")
             if line.lower().startswith(b"content-length")][0]
            .split(b":")[1])
        body = body[:length]
    try:
        data = json.loads(body.decode("utf-8"))
    except ValueError:
        data = {"raw": body.decode("utf-8", "replace")}
    return status, data


def split_pipelined(raw: bytes) -> List[Tuple[int, bytes]]:
    """Split a byte stream of back-to-back responses into
    ``(status, body)`` pairs using each frame's ``Content-Length``."""
    out: List[Tuple[int, bytes]] = []
    rest = raw
    while rest:
        head, sep, tail = rest.partition(b"\r\n\r\n")
        if not sep:
            break
        status = int(head.split(b" ", 2)[1])
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length"):
                length = int(line.split(b":")[1])
        out.append((status, tail[:length]))
        rest = tail[length:]
    return out


def _host_port(url: str) -> Tuple[str, int]:
    hostport = url.split("//", 1)[1]
    host, _, port = hostport.partition(":")
    return host, int(port)


def error_code(data: Dict[str, object]) -> str:
    error = data.get("error")
    assert isinstance(error, dict), f"no structured error in {data!r}"
    return str(error["code"])
