"""HTTP wire layer: parsing edges, framing, and error-body discipline.

Two halves: pure parser tests driving :func:`read_request` over an
in-memory stream, and live-socket tests sending deliberately broken
bytes at a running gateway. The invariant under test throughout: a
malformed request gets a structured ``{"error": {code, message}}``
body with the right status — never a stack trace, never a hang.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.gateway import (
    DEFAULT_MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    HttpError,
    read_request,
    render_response,
)
from tests.gateway.conftest import (
    error_code,
    http_request,
    parse_response,
    raw_exchange,
    split_pipelined,
)


def parse(data: bytes, **kwargs):
    async def _run():
        reader = asyncio.StreamReader(limit=MAX_HEADER_BYTES)
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(_run())
    finally:
        loop.close()


def frame(method: str = "POST", path: str = "/v1/serve",
          body: bytes = b"", headers: str = "") -> bytes:
    return (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\n{headers}\r\n"
            ).encode("latin-1") + body


class TestParser:
    def test_parses_method_path_query_body(self):
        request = parse(frame(
            "POST", "/v1/serve?x=1&y=two%20words", body=b'{"a": 1}'))
        assert request.method == "POST"
        assert request.path == "/v1/serve"
        assert request.query == {"x": "1", "y": "two words"}
        assert request.json() == {"a": 1}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_head_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET /healthz HTTP/1.1\r\nHost")
        assert exc.value.status == 400
        assert exc.value.code == "truncated_request"
        assert exc.value.close

    def test_oversized_head_is_431(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET / HTTP/1.1\r\nX-Pad: " +
                  b"a" * (MAX_HEADER_BYTES + 100) + b"\r\n\r\n")
        assert exc.value.status == 431

    @pytest.mark.parametrize("line", [
        b"GARBAGE\r\n\r\n",
        b"GET /x\r\n\r\n",
        b"GET /x HTTP/2\r\n\r\n",
        b"123 /x HTTP/1.1\r\n\r\n",
        b"GET /x HTTP/1.1 extra\r\n\r\n",
    ])
    def test_malformed_request_line_is_400(self, line):
        with pytest.raises(HttpError) as exc:
            parse(line)
        assert exc.value.status == 400
        assert exc.value.code == "bad_request_line"

    def test_malformed_header_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert exc.value.code == "bad_header"

    @pytest.mark.parametrize("value", ["abc", "-5", "1.5", ""])
    def test_garbage_content_length_is_400(self, value):
        with pytest.raises(HttpError) as exc:
            parse(f"POST /x HTTP/1.1\r\nContent-Length: {value}"
                  f"\r\n\r\n".encode())
        assert exc.value.status == 400
        assert exc.value.code == "bad_content_length"

    def test_missing_content_length_means_empty_body(self):
        request = parse(b"POST /x HTTP/1.1\r\nHost: t\r\n\r\n"
                        b'{"ignored": true}')
        assert request.body == b""

    def test_oversized_body_is_413(self):
        assert DEFAULT_MAX_BODY_BYTES == 1024 * 1024
        with pytest.raises(HttpError) as exc:
            parse(frame(body=b"x" * 200), max_body=100)
        assert exc.value.status == 413
        assert exc.value.code == "body_too_large"

    def test_truncated_body_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        assert exc.value.code == "truncated_body"

    def test_transfer_encoding_is_501(self):
        with pytest.raises(HttpError) as exc:
            parse(b"POST /x HTTP/1.1\r\n"
                  b"Transfer-Encoding: chunked\r\n\r\n")
        assert exc.value.status == 501

    def test_non_json_body_is_structured_400(self):
        request = parse(frame(body=b"not json at all"))
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.code == "invalid_json"

    def test_json_array_body_rejected(self):
        request = parse(frame(body=b"[1, 2, 3]"))
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.code == "invalid_json"


class TestRenderResponse:
    def test_frames_content_length_and_connection(self):
        raw = render_response(200, b'{"ok": true}')
        head = raw.split(b"\r\n\r\n")[0]
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: 12" in head
        assert b"Connection: keep-alive" in head

    def test_close_and_extra_headers(self):
        raw = render_response(429, b"{}", close=True,
                              extra_headers={"Retry-After": "1"})
        head = raw.split(b"\r\n\r\n")[0]
        assert b"Connection: close" in head
        assert b"Retry-After: 1" in head


class TestLiveWire:
    """Broken bytes against a real listening gateway."""

    def test_pipelined_requests_answered_in_order(self, gateway_stack):
        stack = gateway_stack()
        burst = (b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                 b"GET /v1/users HTTP/1.1\r\nHost: t\r\n\r\n"
                 b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")
        responses = split_pipelined(raw_exchange(stack.url, burst))
        assert [status for status, _ in responses] == [200, 200, 404]
        users = json.loads(responses[1][1])
        assert len(users["user_ids"]) == 24

    def test_pipelined_serves_resolve_in_order(self, gateway_stack):
        stack = gateway_stack()
        users = list(stack.platform.users.user_ids())[:3]
        burst = b""
        for user_id in users:
            body = json.dumps({"user_id": user_id}).encode()
            burst += (f"POST /v1/serve HTTP/1.1\r\nHost: t\r\n"
                      f"Content-Length: {len(body)}\r\n\r\n"
                      ).encode() + body
        responses = split_pipelined(raw_exchange(stack.url, burst))
        assert len(responses) == 3
        for (status, body), user_id in zip(responses, users):
            assert status == 200
            assert json.loads(body)["user_id"] == user_id

    def test_malformed_json_is_structured_400(self, gateway_stack):
        stack = gateway_stack()
        body = b"{broken"
        raw = raw_exchange(
            stack.url,
            (f"POST /v1/orgs HTTP/1.1\r\nHost: t\r\n"
             f"Content-Length: {len(body)}\r\n\r\n").encode() + body)
        status, data = parse_response(raw)
        assert status == 400
        assert error_code(data) == "invalid_json"
        assert "Traceback" not in raw.decode("latin-1")

    def test_garbage_content_length_live(self, gateway_stack):
        stack = gateway_stack()
        raw = raw_exchange(
            stack.url,
            b"POST /v1/orgs HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: banana\r\n\r\n")
        status, data = parse_response(raw)
        assert status == 400
        assert error_code(data) == "bad_content_length"

    def test_oversized_body_live_is_413(self, gateway_stack):
        stack = gateway_stack()
        raw = raw_exchange(
            stack.url,
            (f"POST /v1/orgs HTTP/1.1\r\nHost: t\r\n"
             f"Content-Length: {DEFAULT_MAX_BODY_BYTES + 1}\r\n\r\n"
             ).encode())
        status, data = parse_response(raw)
        assert status == 413
        assert error_code(data) == "body_too_large"

    def test_bad_request_line_live(self, gateway_stack):
        stack = gateway_stack()
        status, data = parse_response(
            raw_exchange(stack.url, b"WHAT EVEN\r\n\r\n"))
        assert status == 400
        assert error_code(data) == "bad_request_line"

    def test_keep_alive_survives_a_4xx(self, gateway_stack):
        """A routing 404 must not poison the connection: the next
        pipelined request on the same socket still gets served."""
        stack = gateway_stack()
        burst = (b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n"
                 b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        responses = split_pipelined(raw_exchange(stack.url, burst))
        assert [status for status, _ in responses] == [404, 200]

    def test_unknown_route_and_method(self, gateway_stack):
        stack = gateway_stack()
        status, data = http_request(stack.url, "GET", "/v1/nothing")
        assert status == 404
        assert error_code(data) == "not_found"
        status, data = http_request(stack.url, "DELETE", "/v1/orgs")
        assert status == 405
        assert error_code(data) == "method_not_allowed"
