"""HTTP-mode load generation: equivalence, recovery, reconciliation.

The headline test: the same seeded schedule offered over HTTP and
in-process produces byte-identical server-side delivery state. Plus:
crash recovery (journals folded into a fresh runtime reproduce the
stopped runtime's report) and count reconciliation when the gateway
dies mid-run (every offered request resolves, most as ERROR).
"""

from __future__ import annotations

import pytest

from repro.gateway import (
    GatewayApp,
    GatewayServer,
    HttpLoadGenerator,
    TenantRegistry,
    WorldManifest,
    build_runtime,
    fetch_json,
    open_tenancy_store,
    recover_runtime_shards,
)
from repro.gateway.httpgen import _parse_base
from repro.serve import LoadConfig, LoadGenerator
from repro.store import JournalStore
from repro.store.audit import canonical_json, state_report

CONFIG = LoadConfig(rps=250.0, duration_s=1.2, seed=7)


class TestParseBase:
    @pytest.mark.parametrize("url,expected", [
        ("http://127.0.0.1:8080", ("127.0.0.1", 8080)),
        ("http://localhost", ("localhost", 80)),
        ("127.0.0.1:9999", ("127.0.0.1", 9999)),
    ])
    def test_accepts_http_and_bare(self, url, expected):
        assert _parse_base(url) == expected

    @pytest.mark.parametrize("url", ["https://x", "ftp://x", "http://"])
    def test_rejects_non_http(self, url):
        with pytest.raises(ValueError):
            _parse_base(url)


class TestFetchJson:
    def test_fetches_users(self, gateway_stack):
        stack = gateway_stack()
        data = fetch_json(stack.url, "/v1/users")
        assert len(data["user_ids"]) == 24

    def test_non_2xx_raises(self, gateway_stack):
        stack = gateway_stack()
        with pytest.raises(RuntimeError, match="404"):
            fetch_json(stack.url, "/v1/nothing")


class TestEquivalence:
    def test_http_run_matches_in_process_run(self, make_world,
                                             gateway_stack):
        """Same seed, same world build, same schedule: the HTTP path
        and the in-process path must land the identical delivery
        state, byte for byte."""
        stack = gateway_stack(journal=False)
        report_http = HttpLoadGenerator(
            stack.url, config=CONFIG, connections=1).run()
        assert report_http.tally.errors == 0
        stack.runtime.stop()
        state_http = canonical_json(state_report(stack.runtime.router))

        platform = make_world(seed=11, users=24)
        manifest = WorldManifest(seed=11, users=24, shards=2)
        runtime = build_runtime(platform, manifest)
        runtime.start()
        report_proc = LoadGenerator(
            runtime, list(platform.users.user_ids()),
            config=CONFIG).run()
        runtime.stop()
        state_proc = canonical_json(state_report(runtime.router))

        assert state_http == state_proc
        assert report_http.tally.submitted \
            == report_proc.tally.submitted
        assert report_http.tally.impressions \
            == report_proc.tally.impressions

    def test_multi_connection_run_reconciles(self, gateway_stack):
        """Across several pipelined connections every offered request
        still resolves exactly once (served + errors == offered)."""
        stack = gateway_stack()
        report = HttpLoadGenerator(
            stack.url, config=CONFIG, connections=3).run()
        tally = report.tally
        assert tally.submitted == (tally.served + tally.shed
                                   + tally.timeout + tally.errors)
        assert tally.served > 0
        assert tally.errors == 0


class TestCrashRecovery:
    def test_journals_rebuild_the_stopped_state(self, make_world,
                                                gateway_stack,
                                                tmp_path):
        """Serve over HTTP with journaling, stop, then fold the shard
        journals into a *fresh* world: byte-identical state report.
        (The benchmark drives the real ``kill -9`` variant; this
        covers the recovery machinery in-process.)"""
        stack = gateway_stack(journal=True)
        journal_dir = stack.runtime.config.journal_dir
        stack.tenants.create_org("acme", 40.0)
        stack.tenants.create_campaign("org-1", "launch")
        report = HttpLoadGenerator(
            stack.url, config=CONFIG, connections=1).run()
        assert report.tally.errors == 0
        stack.runtime.stop()
        expected = canonical_json(state_report(stack.runtime.router))
        expected_tenants = stack.tenants.state_dump()
        stack.close()

        manifest = WorldManifest(seed=11, users=24, shards=2)
        platform = make_world(seed=11, users=24)
        runtime = build_runtime(platform, manifest,
                                journal_dir=journal_dir)
        recovered = recover_runtime_shards(runtime, journal_dir,
                                           manifest)
        assert recovered == (0, 1)
        rebuilt = canonical_json(state_report(runtime.router))
        assert rebuilt == expected

        from repro.gateway.world import tenancy_journal_path

        records = JournalStore.read(tenancy_journal_path(journal_dir))
        store = open_tenancy_store(str(tmp_path / "fresh-tenancy"))
        tenants = TenantRegistry(platform, store)
        for record in records:
            tenants.apply_record(record)
        assert tenants.state_dump() == expected_tenants
        for shard in runtime.router.shards:
            shard.store.close()
        store.close()

    def test_gateway_death_resolves_every_request(self, gateway_stack):
        """Kill the server (not the runtime) mid-run: the generator
        must still resolve every scheduled request — the tail as
        ERROR — instead of hanging or dropping silently."""
        import threading
        import time

        stack = gateway_stack()
        config = LoadConfig(rps=150.0, duration_s=2.0, seed=3)
        generator = HttpLoadGenerator(stack.url, config=config,
                                      connections=2)
        user_ids = generator.user_ids()  # fetch before the kill
        assert user_ids
        killer = threading.Timer(0.5, stack.server.stop)
        killer.start()
        try:
            report = generator.run()
        finally:
            killer.cancel()
        from repro.serve.loadgen import build_schedule

        tally = report.tally
        assert tally.submitted == len(build_schedule(user_ids, config))
        assert tally.submitted == (tally.served + tally.shed
                                   + tally.timeout + tally.errors)
        assert tally.errors > 0
