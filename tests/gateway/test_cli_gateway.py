"""CLI: ``repro gateway`` and ``repro httpgen``.

The gateway command blocks on signals, so the full round-trip runs it
as a subprocess (start on an ephemeral port, wait for the ready line,
drive it with the in-process ``httpgen`` command, SIGTERM, then
restart over the same journal directory and check recovery). Argument
errors and dead-gateway behavior are covered in-process.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def start_gateway(journal_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "gateway",
         "--journal-dir", str(journal_dir), "--port", "0",
         "--users", "24", "--shards", "2", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    url = None
    deadline = time.monotonic() + 60.0
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if "listening on" in line:
            url = line.split("listening on ", 1)[1].split()[0]
            break
    if url is None:
        process.kill()
        pytest.fail("gateway never printed its ready line")
    return process, url


def stop_gateway(process):
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30.0)
    finally:
        if process.poll() is None:
            process.kill()
    if process.stdout is not None:
        process.stdout.read()
        process.stdout.close()


class TestHttpgenCommand:
    def test_refuses_unreachable_gateway(self, capsys):
        assert main(["httpgen", "--url", "http://127.0.0.1:1",
                     "--duration", "0.2"]) == 1
        assert "httpgen:" in capsys.readouterr().err

    def test_rejects_bad_slo_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["httpgen", "--slo", "nonsense"])
        capsys.readouterr()


class TestGatewayRoundTrip:
    def test_serve_slo_histogram_sigterm_recover(self, tmp_path,
                                                 capsys):
        journal_dir = tmp_path / "journal"
        histogram = tmp_path / "latency.json"
        process, url = start_gateway(journal_dir)
        try:
            code = main(["httpgen", "--url", url,
                         "--rps", "150", "--duration", "1.0",
                         "--seed", "5",
                         "--slo", "availability=90%",
                         "--histogram-out", str(histogram)])
            out = capsys.readouterr().out
            assert code == 0
            assert "repro httpgen" in out
            assert "slo: availability" in out
        finally:
            stop_gateway(process)
        assert process.returncode == 0
        record = json.loads(histogram.read_text())
        assert record["offered"] > 0
        assert record["tally"]["errors"] == 0
        # Clean shutdown recorded the final canonical state.
        final = journal_dir / "final_report.json"
        assert final.exists()

        # Restart over the same directory: the world recovers and
        # serves the same tenancy-free state again.
        process, url = start_gateway(journal_dir)
        try:
            code = main(["httpgen", "--url", url,
                         "--rps", "100", "--duration", "0.5",
                         "--seed", "6"])
            capsys.readouterr()
            assert code == 0
        finally:
            stop_gateway(process)
        assert process.returncode == 0
