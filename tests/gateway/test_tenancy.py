"""TenantRegistry: journal-before-ack durability and verifying replay.

The contract under test: every accepted mutation is on disk (flushed)
before the caller sees it succeed; replaying the journal onto a world
rebuilt from the same manifest reproduces the registry exactly
(including the platform-side account/campaign/audience state); and
replaying onto the *wrong* world is detected loudly, not absorbed.
"""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.gateway import TenantRegistry, open_tenancy_store
from repro.gateway.world import tenancy_journal_path
from repro.store import JournalStore
from repro.store.records import OrgCreated


def make_registry(make_world, tmp_path, name="a", seed=11):
    journal_dir = str(tmp_path / name)
    platform = make_world(seed=seed)
    store = open_tenancy_store(journal_dir)
    return platform, store, TenantRegistry(platform, store), journal_dir


class TestLiveMutations:
    def test_create_org_journals_before_returning(self, make_world,
                                                  tmp_path):
        platform, store, tenants, journal_dir = make_registry(
            make_world, tmp_path)
        record = tenants.create_org("acme", 100.0)
        # On disk already — no flush/close needed: that is the
        # kill -9 guarantee.
        on_disk = JournalStore.read(tenancy_journal_path(journal_dir))
        assert on_disk == [record]
        assert platform.inventory.account(record.account_id).budget \
            == 100.0
        store.close()

    def test_full_mutation_set_round_trips(self, make_world, tmp_path):
        platform, store, tenants, journal_dir = make_registry(
            make_world, tmp_path)
        org = tenants.create_org("acme", 50.0)
        campaign = tenants.create_campaign(org.org_id, "launch")
        audience = tenants.create_audience(
            org.org_id, "runners", ("running", "marathon"))
        pause = tenants.pause_campaign(org.org_id, campaign.campaign_id)
        assert tenants.is_paused(campaign.campaign_id)
        on_disk = JournalStore.read(tenancy_journal_path(journal_dir))
        assert on_disk == [org, campaign, audience, pause]
        store.close()

    def test_org_ids_are_sequential(self, make_world, tmp_path):
        _, store, tenants, _ = make_registry(make_world, tmp_path)
        assert tenants.create_org("a", 0.0).org_id == "org-1"
        assert tenants.create_org("b", 0.0).org_id == "org-2"
        store.close()

    def test_cross_org_pause_rejected_without_journaling(
            self, make_world, tmp_path):
        _, store, tenants, journal_dir = make_registry(
            make_world, tmp_path)
        tenants.create_org("a", 0.0)
        tenants.create_org("b", 0.0)
        campaign = tenants.create_campaign("org-1", "launch")
        count_before = len(
            JournalStore.read(tenancy_journal_path(journal_dir)))
        with pytest.raises(StoreError):
            tenants.pause_campaign("org-2", campaign.campaign_id)
        assert len(JournalStore.read(
            tenancy_journal_path(journal_dir))) == count_before
        store.close()

    def test_unknown_lookups_raise(self, make_world, tmp_path):
        _, store, tenants, _ = make_registry(make_world, tmp_path)
        with pytest.raises(StoreError, match="unknown org"):
            tenants.org("org-9")
        with pytest.raises(StoreError, match="unknown campaign"):
            tenants.campaign("camp-9")
        with pytest.raises(StoreError, match="unknown audience"):
            tenants.audience("aud-9")
        store.close()


class TestReplay:
    def _mutate_and_close(self, make_world, tmp_path):
        platform, store, tenants, journal_dir = make_registry(
            make_world, tmp_path)
        org = tenants.create_org("acme", 75.0)
        campaign = tenants.create_campaign(org.org_id, "launch")
        tenants.create_audience(org.org_id, "runners", ("running",))
        tenants.pause_campaign(org.org_id, campaign.campaign_id)
        snapshot = tenants.state_dump()
        store.close()
        return journal_dir, snapshot

    def test_replay_onto_same_world_reproduces_state(self, make_world,
                                                     tmp_path):
        journal_dir, snapshot = self._mutate_and_close(
            make_world, tmp_path)
        platform2 = make_world(seed=11)  # identical rebuild
        records = JournalStore.read(tenancy_journal_path(journal_dir))
        store2 = open_tenancy_store(str(tmp_path / "replayed"))
        tenants2 = TenantRegistry(platform2, store2)
        for record in records:
            tenants2.apply_record(record)
        assert tenants2.state_dump() == snapshot
        # The platform mutations were re-executed, not just noted.
        org = tenants2.org("org-1")
        assert platform2.inventory.account(org.account_id).budget \
            == 75.0
        assert tenants2.is_paused(
            tenants2.campaigns_for("org-1")[0].campaign_id)
        store2.close()

    def test_replay_is_idempotent(self, make_world, tmp_path):
        journal_dir, snapshot = self._mutate_and_close(
            make_world, tmp_path)
        platform2 = make_world(seed=11)
        records = JournalStore.read(tenancy_journal_path(journal_dir))
        store2 = open_tenancy_store(str(tmp_path / "replayed"))
        tenants2 = TenantRegistry(platform2, store2)
        for record in records + records:  # folded twice
            tenants2.apply_record(record)
        assert tenants2.state_dump() == snapshot
        store2.close()

    def test_replay_onto_wrong_world_is_detected(self, make_world,
                                                 tmp_path):
        """A journal from one world folded onto a differently-built
        world regenerates different platform ids — replay must raise,
        not silently bind campaigns to the wrong accounts."""
        journal_dir, _ = self._mutate_and_close(make_world, tmp_path)
        wrong = make_world(seed=11)
        # Desync the id factory the way a non-identical rebuild would.
        wrong.create_ad_account("interloper", budget=1.0)
        records = JournalStore.read(tenancy_journal_path(journal_dir))
        store2 = open_tenancy_store(str(tmp_path / "wrong"))
        tenants2 = TenantRegistry(wrong, store2)
        with pytest.raises(StoreError, match="different world"):
            for record in records:
                tenants2.apply_record(record)
        store2.close()

    def test_conflicting_record_for_known_id_raises(self, make_world,
                                                    tmp_path):
        _, store, tenants, _ = make_registry(make_world, tmp_path)
        org = tenants.create_org("acme", 10.0)
        conflicting = OrgCreated(org_id=org.org_id, name="not-acme",
                                 account_id=org.account_id, budget=10.0)
        with pytest.raises(StoreError, match="conflicting replay"):
            tenants.apply_record(conflicting)
        store.close()

    def test_unknown_kind_rejected(self, make_world, tmp_path):
        from repro.store.records import ClickRecorded

        _, store, tenants, _ = make_registry(make_world, tmp_path)
        with pytest.raises(StoreError, match="cannot apply"):
            tenants.apply_record(ClickRecorded(
                ad_id="ad", user_id="u", click_seq=0))
        store.close()

    def test_mutations_count_metric(self, make_world, tmp_path):
        from repro.obs.metrics import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry("tenancy-test")) as reg:
            _, store, tenants, _ = make_registry(make_world, tmp_path)
            tenants.create_org("acme", 1.0)
            tenants.create_campaign("org-1", "c")
            assert reg.value("gateway.mutations_journaled") == 2
            store.close()
