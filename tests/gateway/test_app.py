"""GatewayApp: routing, handlers, views, and failure mapping.

Drives :meth:`GatewayApp.handle` directly with parsed
:class:`Request` objects — no sockets — so these cover the
application contract fast; the wire is covered in ``test_http.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.gateway import Done, PendingServe, Request
from repro.gateway.app import serve_result_response
from repro.obs.slo import parse_slo
from repro.serve import ServeStatus
from repro.store.audit import canonical_json, state_report


def req(method: str, path: str, payload=None, query=None) -> Request:
    body = b"" if payload is None else json.dumps(payload).encode()
    return Request(method=method, path=path, query=query or {},
                   headers={}, body=body)


def body_of(done: Done) -> dict:
    assert isinstance(done, Done)
    return json.loads(done.body)


def code_of(done: Done) -> str:
    return body_of(done)["error"]["code"]


class TestOperational:
    def test_healthz_running(self, gateway_stack):
        app = gateway_stack(serve=False).app
        done = app.handle(req("GET", "/healthz"))
        assert done.status == 200
        assert body_of(done)["status"] == "ok"

    def test_healthz_not_running_is_503(self, gateway_stack):
        stack = gateway_stack(serve=False)
        stack.runtime.stop()
        done = stack.app.handle(req("GET", "/healthz"))
        assert done.status == 503

    def test_metrics_is_prometheus_text(self, gateway_stack):
        app = gateway_stack(serve=False).app
        done = app.handle(req("GET", "/metrics"))
        assert done.status == 200
        assert done.content_type.startswith("text/plain")
        assert b"# TYPE" in done.body

    def test_config_echoes_manifest(self, gateway_stack):
        stack = gateway_stack(serve=False)
        done = stack.app.handle(req("GET", "/v1/config"))
        assert body_of(done) == stack.app.manifest.to_dict()

    def test_state_is_canonical_report(self, gateway_stack):
        stack = gateway_stack(serve=False)
        done = stack.app.handle(req("GET", "/v1/state"))
        expected = canonical_json(state_report(stack.runtime.router))
        assert done.body.decode("utf-8") == expected

    def test_slo_with_query_spec(self, gateway_stack):
        stack = gateway_stack(serve=False)
        self._serve_one(stack)
        done = stack.app.handle(req(
            "GET", "/v1/slo",
            query={"spec": "p99=5s,availability=1%"}))
        data = body_of(done)
        assert data["ok"] is True
        assert data["resolved"] >= 1

    def test_slo_without_spec_is_400(self, gateway_stack):
        app = gateway_stack(serve=False).app
        done = app.handle(req("GET", "/v1/slo"))
        assert done.status == 400
        assert code_of(done) == "no_slo_spec"

    def test_slo_server_default_spec(self, gateway_stack):
        stack = gateway_stack(serve=False,
                              slo_spec=parse_slo("availability=1%"))
        self._serve_one(stack)
        done = stack.app.handle(req("GET", "/v1/slo"))
        assert body_of(done)["ok"] is True

    def test_slo_bad_spec_is_400(self, gateway_stack):
        app = gateway_stack(serve=False).app
        done = app.handle(req("GET", "/v1/slo",
                              query={"spec": "nonsense"}))
        assert code_of(done) == "bad_slo_spec"

    @staticmethod
    def _serve_one(stack) -> None:
        user = next(iter(stack.platform.users.user_ids()))
        outcome = stack.app.handle(req("POST", "/v1/serve",
                                       {"user_id": user}))
        assert isinstance(outcome, PendingServe)
        outcome.future.result(timeout=10.0)


class TestServe:
    def test_serve_returns_pending_future(self, gateway_stack):
        stack = gateway_stack(serve=False)
        user = next(iter(stack.platform.users.user_ids()))
        outcome = stack.app.handle(req("POST", "/v1/serve",
                                       {"user_id": user}))
        assert isinstance(outcome, PendingServe)
        result = outcome.future.result(timeout=10.0)
        assert result.status is ServeStatus.SERVED
        done = serve_result_response(result)
        assert done.status == 200
        assert body_of(done)["user_id"] == user

    def test_unknown_user_is_404(self, gateway_stack):
        app = gateway_stack(serve=False).app
        done = app.handle(req("POST", "/v1/serve",
                              {"user_id": "ghost"}))
        assert done.status == 404
        assert code_of(done) == "unknown_user"

    @pytest.mark.parametrize("payload,code", [
        ({}, "missing_user_id"),
        ({"user_id": 7}, "missing_user_id"),
        ({"user_id": "u", "slots": "three"}, "bad_slots"),
        ({"user_id": "u", "slots": True}, "bad_slots"),
        ({"user_id": "u", "deadline_ms": "soon"}, "bad_deadline"),
    ])
    def test_bad_serve_bodies(self, gateway_stack, payload, code):
        app = gateway_stack(serve=False).app
        done = app.handle(req("POST", "/v1/serve", payload))
        assert done.status == 400
        assert code_of(done) == code

    def test_shed_maps_to_429_with_retry_after(self):
        from repro.serve.requests import AdRequest, ServeResult

        done = serve_result_response(ServeResult(
            request=AdRequest(user_id="u"), status=ServeStatus.SHED,
            shard_index=0, error="queue full"))
        assert done.status == 429
        assert done.extra_headers["Retry-After"] == "1"

    def test_timeout_maps_to_504(self):
        from repro.serve.requests import AdRequest, ServeResult

        done = serve_result_response(ServeResult(
            request=AdRequest(user_id="u"), status=ServeStatus.TIMEOUT,
            shard_index=0))
        assert done.status == 504
        assert body_of(done)["error"]["code"] == "deadline_exceeded"


class TestTenancyRoutes:
    def test_org_crud_roundtrip(self, gateway_stack):
        app = gateway_stack(serve=False).app
        done = app.handle(req("POST", "/v1/orgs",
                              {"name": "acme", "budget": 250.0}))
        assert done.status == 201
        org = body_of(done)
        assert org["org_id"] == "org-1"
        assert org["budget"] == 250.0
        listing = body_of(app.handle(req("GET", "/v1/orgs")))
        assert [o["org_id"] for o in listing["orgs"]] == ["org-1"]
        one = body_of(app.handle(req("GET", "/v1/orgs/org-1")))
        assert one["name"] == "acme"

    def test_unknown_org_is_404(self, gateway_stack):
        app = gateway_stack(serve=False).app
        done = app.handle(req("GET", "/v1/orgs/org-99"))
        assert done.status == 404
        assert code_of(done) == "unknown_org"

    @pytest.mark.parametrize("payload,code", [
        ({}, "missing_name"),
        ({"name": "  "}, "missing_name"),
        ({"name": "a", "budget": -4}, "bad_budget"),
        ({"name": "a", "budget": True}, "bad_budget"),
    ])
    def test_bad_org_bodies(self, gateway_stack, payload, code):
        app = gateway_stack(serve=False).app
        done = app.handle(req("POST", "/v1/orgs", payload))
        assert done.status == 400
        assert code_of(done) == code

    def test_campaign_create_pause_flow(self, gateway_stack):
        app = gateway_stack(serve=False).app
        app.handle(req("POST", "/v1/orgs", {"name": "acme"}))
        done = app.handle(req("POST", "/v1/orgs/org-1/campaigns",
                              {"name": "launch"}))
        assert done.status == 201
        campaign = body_of(done)
        assert campaign["paused"] is False
        cid = campaign["campaign_id"]
        paused = body_of(app.handle(req(
            "POST", f"/v1/orgs/org-1/campaigns/{cid}/pause")))
        assert paused["paused"] is True
        listing = body_of(app.handle(req(
            "GET", "/v1/orgs/org-1/campaigns")))
        assert len(listing["campaigns"]) == 1

    def test_campaign_of_other_org_is_404(self, gateway_stack):
        app = gateway_stack(serve=False).app
        app.handle(req("POST", "/v1/orgs", {"name": "a"}))
        app.handle(req("POST", "/v1/orgs", {"name": "b"}))
        done = app.handle(req("POST", "/v1/orgs/org-1/campaigns",
                              {"name": "launch"}))
        cid = body_of(done)["campaign_id"]
        stolen = app.handle(req(
            "GET", f"/v1/orgs/org-2/campaigns/{cid}"))
        assert stolen.status == 404
        assert code_of(stolen) == "unknown_campaign"

    def test_audience_create_and_views(self, gateway_stack):
        app = gateway_stack(serve=False).app
        app.handle(req("POST", "/v1/orgs", {"name": "acme"}))
        done = app.handle(req("POST", "/v1/audiences", {
            "org_id": "org-1", "name": "runners",
            "phrases": ["running"]}))
        assert done.status == 201
        audience = body_of(done)
        assert audience["phrases"] == ["running"]
        aid = audience["audience_id"]
        one = body_of(app.handle(req("GET", f"/v1/audiences/{aid}")))
        assert one["name"] == "runners"
        listing = body_of(app.handle(req(
            "GET", "/v1/audiences", query={"org": "org-1"})))
        assert len(listing["audiences"]) == 1

    @pytest.mark.parametrize("payload,code", [
        ({"phrases": ["x"]}, "missing_org_id"),
        ({"org_id": "org-1", "phrases": []}, "bad_phrases"),
        ({"org_id": "org-1", "phrases": ["ok", ""]}, "bad_phrases"),
        ({"org_id": "org-1", "phrases": "running"}, "bad_phrases"),
    ])
    def test_bad_audience_bodies(self, gateway_stack, payload, code):
        app = gateway_stack(serve=False).app
        app.handle(req("POST", "/v1/orgs", {"name": "acme"}))
        done = app.handle(req("POST", "/v1/audiences", payload))
        assert done.status == 400
        assert code_of(done) == code


class TestTransparency:
    def test_report_counts_served_impressions(self, gateway_stack):
        stack = gateway_stack(serve=False)
        user = next(iter(stack.platform.users.user_ids()))
        outcome = stack.app.handle(req("POST", "/v1/serve",
                                       {"user_id": user}))
        result = outcome.future.result(timeout=10.0)
        assert result.response and result.response.ad_ids
        ad_id = result.response.ad_ids[0]
        report = body_of(stack.app.handle(req(
            "GET", f"/v1/reports/{ad_id}")))
        assert report["impressions"] == 1
        assert report["reach"] == 1
        assert report["spend"] > 0

    def test_unknown_ad_report_is_404(self, gateway_stack):
        app = gateway_stack(serve=False).app
        done = app.handle(req("GET", "/v1/reports/ghost-ad"))
        assert done.status == 404
        assert code_of(done) == "unknown_ad"

    def test_explanation_roundtrip(self, gateway_stack):
        stack = gateway_stack(serve=False)
        user = next(iter(stack.platform.users.user_ids()))
        outcome = stack.app.handle(req("POST", "/v1/serve",
                                       {"user_id": user}))
        result = outcome.future.result(timeout=10.0)
        ad_id = result.response.ad_ids[0]
        done = stack.app.handle(req(
            "GET", "/v1/explanations",
            query={"user": user, "ad": ad_id}))
        assert done.status == 200
        assert body_of(done)["ad_id"] == ad_id
        assert body_of(done)["text"]

    def test_explanation_missing_params_is_400(self, gateway_stack):
        app = gateway_stack(serve=False).app
        done = app.handle(req("GET", "/v1/explanations"))
        assert done.status == 400
        assert code_of(done) == "missing_params"

    def test_explanation_unknown_ids_is_404(self, gateway_stack):
        app = gateway_stack(serve=False).app
        done = app.handle(req("GET", "/v1/explanations",
                              query={"user": "ghost", "ad": "ghost"}))
        assert done.status == 404


class TestFailureMapping:
    def test_handler_crash_is_opaque_500(self, gateway_stack, caplog):
        stack = gateway_stack(serve=False)
        stack.app._routes.insert(0, (
            "GET",
            __import__("re").compile("^/boom$"),
            lambda request: (_ for _ in ()).throw(RuntimeError("kaboom")),
        ))
        import logging

        with caplog.at_level(logging.ERROR, logger="repro.gateway.app"):
            done = stack.app.handle(req("GET", "/boom"))
        assert done.status == 500
        assert code_of(done) == "internal_error"
        assert "kaboom" not in done.body.decode()
        assert any("unhandled error" in r.message for r in caplog.records)
