"""Tests for the malicious-advertiser inference attacks and defenses."""

import pytest

from repro.attacks import DeliveryInferenceAttack, SizeEstimateAttack
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.workloads.competition import zero_competition

VICTIM_EMAIL = "victim@example.com"


def _platform(min_match=0):
    return AdPlatform(
        config=PlatformConfig(name=f"atk{min_match}",
                              min_delivery_match_count=min_match),
        catalog=build_us_catalog(40, 25),
        competing_draw=zero_competition(),
    )


def _plant_victim(platform, has_attr):
    victim = platform.register_user()
    platform.users.attach_pii(victim.user_id, "email", VICTIM_EMAIL)
    attr = platform.catalog.partner_attributes()[0]
    if has_attr:
        victim.set_attribute(attr)
    return victim, attr


class TestSizeEstimateAttack:
    def test_defeated_by_reach_floor(self):
        """The documented platform behaviour (report small reach only as
        'below 1,000') collapses victim-present and victim-absent."""
        platform = _platform()
        _, attr = _plant_victim(platform, has_attr=True)
        outcome = SizeEstimateAttack(platform).run(
            VICTIM_EMAIL, attr.attr_id, ground_truth=True
        )
        assert outcome.inferred_bit is None
        assert "below" in outcome.observable

    def test_same_answer_either_way(self):
        for truth in (True, False):
            platform = _platform()
            _, attr = _plant_victim(platform, has_attr=truth)
            outcome = SizeEstimateAttack(platform, label=f"s{truth}").run(
                VICTIM_EMAIL, attr.attr_id, ground_truth=truth
            )
            assert outcome.inferred_bit is None


class TestDeliveryInferenceAttack:
    def test_succeeds_against_undefended_platform(self):
        """The leak the paper assumes patched: one billed impression
        reveals the victim's bit on a platform without the
        narrow-targeting defense (the 2018 state of the world)."""
        platform = _platform(min_match=0)
        _, attr = _plant_victim(platform, has_attr=True)
        outcome = DeliveryInferenceAttack(platform).run(
            VICTIM_EMAIL, attr.attr_id, ground_truth=True
        )
        assert outcome.inferred_bit is True
        assert outcome.correct

    def test_negative_victim_yields_no_impressions(self):
        platform = _platform(min_match=0)
        _, attr = _plant_victim(platform, has_attr=False)
        outcome = DeliveryInferenceAttack(platform).run(
            VICTIM_EMAIL, attr.attr_id, ground_truth=False
        )
        assert outcome.inferred_bit is None  # ambiguous zero

    def test_blocked_by_min_match_defense(self):
        """With min_delivery_match_count, the probe ad (1 matching user)
        never serves; positives and negatives look identical."""
        platform = _platform(min_match=20)
        _, attr = _plant_victim(platform, has_attr=True)
        outcome = DeliveryInferenceAttack(platform).run(
            VICTIM_EMAIL, attr.attr_id, ground_truth=True
        )
        assert outcome.inferred_bit is None
        assert "impressions: 0" in outcome.observable


class TestDefenseCostToTreads:
    def test_defense_breaks_small_audience_treads(self, web):
        """The tension benchmark A3 quantifies: the defense that blocks
        the attack also silences Treads for small opt-in groups, because
        both rely on deliver-iff-match over narrow intersections."""
        from repro.core.client import TreadClient
        from repro.core.provider import TransparencyProvider

        platform = _platform(min_match=20)
        provider = TransparencyProvider(platform, web, budget=50.0)
        attr = platform.catalog.partner_attributes()[0]
        user = platform.register_user()
        user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep([attr])
        provider.run_delivery()
        profile = TreadClient(user.user_id, platform,
                              provider.publish_decode_pack()).sync()
        assert profile.total_facts == 0  # Tread withheld by the defense

    def test_treads_survive_defense_at_scale(self, web):
        """With enough opted-in users per attribute, Treads clear the
        same threshold and keep working."""
        from repro.core.client import TreadClient
        from repro.core.provider import TransparencyProvider

        platform = _platform(min_match=20)
        provider = TransparencyProvider(platform, web, budget=50.0)
        attr = platform.catalog.partner_attributes()[0]
        users = []
        for _ in range(25):
            user = platform.register_user()
            user.set_attribute(attr)
            provider.optin.via_page_like(user.user_id)
            users.append(user)
        provider.launch_attribute_sweep([attr], include_control=False)
        provider.run_delivery()
        pack = provider.publish_decode_pack()
        revealed = sum(
            1 for user in users
            if attr.attr_id in TreadClient(user.user_id, platform,
                                           pack).sync().set_attributes
        )
        assert revealed == 25
