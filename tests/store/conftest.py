"""Fixtures for the state-store suite: a small deterministic world.

Same shape as the serving suite's ``make_world`` but smaller (the store
tests assert byte-level equalities, not scale), and parameterized on
the platform's shared store so the journaled and in-memory backends run
the identical scenario.
"""

from __future__ import annotations

import pytest

from repro.core.provider import TransparencyProvider
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.workloads.competition import zero_competition
from repro.workloads.personas import (
    AVERAGE_CONSUMER,
    ESTABLISHED_PROFESSIONAL,
    RECENT_ARRIVAL_GRAD_STUDENT,
)
from repro.workloads.population import PopulationBuilder


@pytest.fixture
def make_store_world():
    """Factory: identically-seeded platform + launched sweep, with an
    optional explicit shared state store."""

    def build(seed: int = 11, users: int = 12, store=None):
        platform = AdPlatform(
            config=PlatformConfig(name="store-test"),
            catalog=build_us_catalog(platform_count=40, partner_count=25),
            competing_draw=zero_competition(),
            store=store,
        )
        web = WebDirectory()
        builder = PopulationBuilder(platform, seed=seed)
        builder.spawn_mix(
            [ESTABLISHED_PROFESSIONAL, AVERAGE_CONSUMER,
             RECENT_ARRIVAL_GRAD_STUDENT],
            users,
        )
        builder.finalize()
        provider = TransparencyProvider(platform, web, budget=5000.0,
                                        bid_cap_cpm=10.0)
        for user_id in platform.users.user_ids():
            provider.optin.via_page_like(user_id)
        provider.launch_partner_sweep()
        return platform, provider

    return build
