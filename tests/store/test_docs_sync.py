"""Diffs docs/state.md against the repro.store record catalog.

Same contract as the observability docs-sync suite: every registered
record kind must appear in the doc's catalog table with exactly the
dataclass's fields, and every kind-shaped row the doc contains must
exist in :data:`repro.store.records.RECORD_TYPES` — so the page cannot
drift from the code in either direction.
"""

import re
from dataclasses import fields
from pathlib import Path

import pytest

from repro.store import SNAPSHOT_VERSION
from repro.store.records import RECORD_TYPES

DOC_PATH = Path(__file__).resolve().parents[2] / "docs" / "state.md"

#: Catalog rows: | `kind` | ClassName | field, field, ... | folded by |
_ROW = re.compile(
    r"^\| `([a-z_]+)` \| (\w+) \| ([^|]+) \| ([^|]+) \|", re.MULTILINE
)


@pytest.fixture(scope="module")
def doc_text():
    return DOC_PATH.read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def catalog_rows(doc_text):
    section = re.search(
        r"^## Record catalog$(.*?)(?=^## |\Z)",
        doc_text, re.MULTILINE | re.DOTALL,
    )
    assert section, "docs/state.md lost its 'Record catalog' section"
    rows = {m.group(1): m for m in _ROW.finditer(section.group(1))}
    assert rows, "record catalog table not found"
    return rows


class TestRecordCatalog:
    def test_every_kind_documented(self, catalog_rows):
        missing = sorted(set(RECORD_TYPES) - set(catalog_rows))
        assert not missing, f"record kinds missing from docs: {missing}"

    def test_no_phantom_kinds_documented(self, catalog_rows):
        phantoms = sorted(set(catalog_rows) - set(RECORD_TYPES))
        assert not phantoms, f"docs mention unknown kinds: {phantoms}"

    def test_documented_class_names_match(self, catalog_rows):
        for kind, row in catalog_rows.items():
            assert row.group(2) == RECORD_TYPES[kind].__name__, (
                f"{kind} documented as {row.group(2)}, "
                f"implemented by {RECORD_TYPES[kind].__name__}"
            )

    def test_documented_fields_match_dataclasses(self, catalog_rows):
        for kind, row in catalog_rows.items():
            documented = [f.strip() for f in row.group(3).split(",")]
            actual = [f.name for f in fields(RECORD_TYPES[kind])]
            assert documented == actual, (
                f"{kind}: docs say {documented}, dataclass has {actual}"
            )


class TestFormatPins:
    def test_snapshot_version_documented(self, doc_text):
        assert f"currently {SNAPSHOT_VERSION}" in doc_text, (
            "docs/state.md must state the current SNAPSHOT_VERSION"
        )

    def test_doc_names_its_enforcement(self, doc_text):
        assert "repro.store.records" in doc_text
        assert "test_docs_sync" in doc_text

    def test_store_metrics_mentioned_here_exist(self, doc_text):
        from repro.obs import names
        mentioned = re.findall(r"`(store\.[a-z_]+)`", doc_text)
        assert mentioned, "docs/state.md should list the store metrics"
        for name in mentioned:
            assert name in names.METRICS or name in names.SPANS, (
                f"docs/state.md mentions unregistered {name}"
            )
