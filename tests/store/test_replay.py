"""Deterministic replay at the platform layer.

The platform's audiences, billing, and delivery all journal into one
shared store; these tests pin the two recovery identities the state
layer promises:

1. restore(snapshot) + replay(journal suffix) == live end state;
2. replay(full journal) onto a freshly built identical world == live
   end state (the CLI ``replay`` semantic — audience-delta folding must
   be idempotent for this, since world-building re-creates audiences).
"""

import pytest

from repro.errors import StoreError
from repro.store import JournalStore, MemoryStore
from repro.store.audit import canonical_json, state_report


def _drive(provider, rounds):
    provider.run_delivery(max_rounds=rounds)


class TestSnapshotSuffixReplay:
    @pytest.mark.parametrize("backend", ["memory", "journal"])
    def test_restore_plus_suffix_reproduces_live_state(
            self, make_store_world, tmp_path, backend):
        store = (MemoryStore() if backend == "memory"
                 else JournalStore(str(tmp_path / "wal.jsonl")))
        platform, provider = make_store_world(store=store)
        _drive(provider, rounds=2)
        snapshot = platform.store.checkpoint(label="mid")
        _drive(provider, rounds=3)

        final_report = canonical_json(state_report(platform))
        final_export = platform.delivery.export_state()
        journal = platform.store.records()
        assert snapshot.journal_seq < len(journal), \
            "post-snapshot serving should have extended the journal"

        platform.store.restore(snapshot)
        mid_report = canonical_json(state_report(platform))
        assert mid_report != final_report, \
            "restore should have rewound past the post-snapshot rounds"
        applied = platform.store.replay(journal[snapshot.journal_seq:])
        assert applied == len(journal) - snapshot.journal_seq
        assert canonical_json(state_report(platform)) == final_report
        assert platform.delivery.export_state() == final_export
        store.close()

    def test_restore_is_exact_not_approximate(self, make_store_world):
        platform, provider = make_store_world()
        _drive(provider, rounds=2)
        snapshot = platform.store.checkpoint()
        mid_export = platform.delivery.export_state()
        mid_spend = provider.total_spend()
        _drive(provider, rounds=3)
        platform.store.restore(snapshot)
        assert platform.delivery.export_state() == mid_export
        assert provider.total_spend() == pytest.approx(mid_spend)

    def test_snapshot_bytes_stable_across_checkpoints(
            self, make_store_world):
        platform, provider = make_store_world()
        _drive(provider, rounds=2)
        first = platform.store.checkpoint(label="x")
        second = platform.store.checkpoint(label="x")
        assert first.to_json() == second.to_json()


def _add_page_audience(platform):
    account_id = platform.inventory.accounts()[0].account_id
    return platform.audiences.create_page_audience(
        "aud-replay", account_id, page_id="page-replay",
        name="replay probe",
    )


class TestFullJournalReplay:
    def test_fresh_world_plus_full_journal_matches_live(
            self, make_store_world):
        platform, provider = make_store_world()
        _add_page_audience(platform)
        _drive(provider, rounds=4)
        live_report = canonical_json(state_report(platform))
        live_audiences = platform.audiences.state_dump()
        journal = platform.store.records()

        rebuilt, _ = make_store_world()
        rebuilt.store.replay(journal)
        assert canonical_json(state_report(rebuilt)) == live_report
        assert rebuilt.audiences.state_dump() == live_audiences

    def test_audience_deltas_fold_idempotently(self, make_store_world):
        platform, _ = make_store_world()
        _add_page_audience(platform)
        deltas = [r for r in platform.store.records()
                  if r.kind == "audience_delta"]
        assert deltas, "audience creation should journal a delta"
        before = platform.audiences.state_dump()
        platform.store.replay(deltas)  # identical payloads: no-ops
        assert platform.audiences.state_dump() == before

    def test_conflicting_audience_delta_rejected(self, make_store_world):
        platform, _ = make_store_world()
        _add_page_audience(platform)
        delta = next(r for r in platform.store.records()
                     if r.kind == "audience_delta")
        from dataclasses import replace
        clash = replace(delta, name=delta.name + "-mutated")
        with pytest.raises(StoreError, match="conflict"):
            platform.audiences.apply_record(clash)

    def test_charge_replay_redebits_budgets(self, make_store_world):
        # Zero-competition second-price auctions clear at $0, so charge
        # the ledger directly with nonzero amounts to make the re-debit
        # observable.
        platform, _ = make_store_world()
        account = platform.inventory.accounts()[0]
        for seq, amount in enumerate((0.002, 0.005, 0.011)):
            platform.ledger.charge_impression(
                "ad-bill", account.account_id, amount, impression_seq=seq)
        spent = platform.ledger.spend_for_account(account.account_id)
        assert spent == pytest.approx(0.018)
        charges = [r for r in platform.store.records()
                   if r.kind == "charge"]

        rebuilt, _ = make_store_world()
        budget_before = rebuilt.inventory.account(
            account.account_id).budget
        rebuilt.store.replay(charges)
        assert rebuilt.ledger.spend_for_account(
            account.account_id) == pytest.approx(spent)
        assert rebuilt.inventory.account(
            account.account_id).budget == pytest.approx(
                budget_before - spent)
