"""The record codec: dict/JSONL round-trips and corruption handling."""

import json

import pytest

from repro.errors import StoreError
from repro.store import (
    RECORD_TYPES,
    AudienceCreated,
    AudienceDelta,
    CampaignCreated,
    CampaignPaused,
    CapIncremented,
    ChargeRecorded,
    ClickRecorded,
    ImpressionRecorded,
    OrgCreated,
    SlotClaimed,
)
from repro.store.records import (
    decode_line,
    encode_line,
    record_from_dict,
    record_to_dict,
)

SAMPLES = [
    ImpressionRecorded(seq=3, ad_id="ad-1", account_id="acct-1",
                       user_id="u-1", price=0.002),
    ClickRecorded(ad_id="ad-1", user_id="u-1", click_seq=0),
    ChargeRecorded(ad_id="ad-1", account_id="acct-1", amount=0.002,
                   impression_seq=3),
    CapIncremented(ad_id="ad-1", user_id="u-1", count=2),
    AudienceDelta(audience_id="aud-1", owner_account_id="acct-1",
                  audience_kind="pii", name="uploaded",
                  member_ids=("u-1", "u-2")),
    SlotClaimed(user_id="u-1", slots=3),
    OrgCreated(org_id="org-1", name="acme", account_id="acct-9",
               budget=500.0),
    CampaignCreated(org_id="org-1", campaign_id="camp-1", name="spring"),
    CampaignPaused(org_id="org-1", campaign_id="camp-1"),
    AudienceCreated(org_id="org-1", audience_id="aud-7", name="runners",
                    phrases=("running", "marathon")),
]


class TestCatalog:
    def test_every_kind_registered_once(self):
        kinds = [cls.kind for cls in RECORD_TYPES.values()]
        assert sorted(kinds) == sorted(set(kinds))
        assert set(RECORD_TYPES) == {
            "impression", "click", "charge", "cap_increment",
            "audience_delta", "slot_claim", "org_created",
            "campaign_created", "campaign_paused", "audience_created",
        }

    def test_samples_cover_every_kind(self):
        assert {type(r).kind for r in SAMPLES} == set(RECORD_TYPES)


class TestRoundTrip:
    @pytest.mark.parametrize("record", SAMPLES,
                             ids=[type(r).kind for r in SAMPLES])
    def test_dict_round_trip(self, record):
        assert record_from_dict(record_to_dict(record)) == record

    @pytest.mark.parametrize("record", SAMPLES,
                             ids=[type(r).kind for r in SAMPLES])
    def test_line_round_trip(self, record):
        line = encode_line(record)
        assert line.endswith("\n")
        assert decode_line(line) == record

    def test_kind_is_first_key_on_the_wire(self):
        line = encode_line(SAMPLES[0])
        assert line.startswith('{"kind":"impression"')

    @pytest.mark.parametrize("record", SAMPLES,
                             ids=[type(r).kind for r in SAMPLES])
    def test_encode_matches_generic_json(self, record):
        # encode_line has hand-rolled fast paths for the hot kinds;
        # they must stay byte-identical to the generic encoder.
        expected = json.dumps(record_to_dict(record),
                              separators=(",", ":")) + "\n"
        assert encode_line(record) == expected

    def test_fast_path_escapes_strings(self):
        hostile = ImpressionRecorded(seq=1, ad_id='ad-"quoted"\\',
                                     account_id="acct-\n", user_id="u\t1",
                                     price=1.5)
        assert decode_line(encode_line(hostile)) == hostile

    def test_tuples_survive_as_tuples(self):
        delta = record_from_dict(
            json.loads(encode_line(SAMPLES[4]))
        )
        assert isinstance(delta, AudienceDelta)
        assert delta.member_ids == ("u-1", "u-2")


class TestCorruption:
    def test_unknown_kind(self):
        with pytest.raises(StoreError, match="unknown record kind"):
            record_from_dict({"kind": "tectonic_shift"})

    def test_missing_kind(self):
        with pytest.raises(StoreError, match="unknown record kind"):
            record_from_dict({"ad_id": "ad-1"})

    def test_malformed_fields(self):
        with pytest.raises(StoreError, match="malformed"):
            record_from_dict({"kind": "click", "ad_id": "ad-1"})

    def test_extra_fields_rejected(self):
        payload = record_to_dict(SAMPLES[1])
        payload["surprise"] = 1
        with pytest.raises(StoreError, match="malformed"):
            record_from_dict(payload)

    def test_corrupt_json_line(self):
        with pytest.raises(StoreError, match="corrupt journal line"):
            decode_line("{not json")

    def test_non_object_line(self):
        with pytest.raises(StoreError, match="not a JSON object"):
            decode_line("[1, 2, 3]")

    def test_unregistered_record_type(self):
        class Rogue:
            kind = "rogue"

        with pytest.raises(StoreError, match="unregistered"):
            record_to_dict(Rogue())
