"""Property test: export_state / import_state round-trips exactly.

For *any* randomly generated delivery state (impressions over real ads
and users, clicks, explicit cap excesses), importing it into a fresh
engine and exporting again is a fixed point: the second cycle's bytes
equal the first's, impression for impression, cap for cap. This is the
contract shard migration and crash recovery lean on — an export is a
complete, canonical description of delivery state, not an approximation
of one.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.provider import TransparencyProvider
from repro.platform.billing import BillingLedger
from repro.platform.catalog import build_us_catalog
from repro.platform.delivery import DeliveryEngine
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.workloads.competition import zero_competition
from repro.workloads.personas import (
    AVERAGE_CONSUMER,
    ESTABLISHED_PROFESSIONAL,
)
from repro.workloads.population import PopulationBuilder


@pytest.fixture(scope="module")
def world():
    """One shared world: the engines under test only need its inventory
    and audience registry, which the imports never mutate."""
    platform = AdPlatform(
        config=PlatformConfig(name="roundtrip"),
        catalog=build_us_catalog(platform_count=30, partner_count=20),
        competing_draw=zero_competition(),
    )
    web = WebDirectory()
    builder = PopulationBuilder(platform, seed=5)
    builder.spawn_mix([ESTABLISHED_PROFESSIONAL, AVERAGE_CONSUMER], 10)
    builder.finalize()
    provider = TransparencyProvider(platform, web, budget=500.0,
                                    bid_cap_cpm=10.0)
    for user_id in platform.users.user_ids():
        provider.optin.via_page_like(user_id)
    provider.launch_partner_sweep()
    return platform


def _fresh_engine(platform):
    return DeliveryEngine(
        platform.inventory,
        platform.audiences,
        BillingLedger(platform.inventory),
        zero_competition(),
    )


def _canonical(state):
    return json.dumps(state, sort_keys=True)


def _state_from(platform, picks, clicks, caps):
    """Assemble an export-shaped state dict from strategy draws."""
    ads = platform.inventory.ads()
    users = platform.users.user_ids()
    impressions = [
        {
            "kind": "impression",
            "seq": seq,
            "ad_id": ads[ad_pick % len(ads)].ad_id,
            "account_id": ads[ad_pick % len(ads)].account_id,
            "user_id": users[user_pick % len(users)],
            "price": price,
        }
        for seq, (ad_pick, user_pick, price) in enumerate(picks)
    ]
    click_rows = [
        {
            "kind": "click",
            "ad_id": impressions[pick % len(impressions)]["ad_id"],
            "user_id": impressions[pick % len(impressions)]["user_id"],
            "click_seq": click_seq,
        }
        for click_seq, pick in enumerate(clicks)
    ] if impressions else []
    cap_rows = sorted(
        {
            (ads[ad_pick % len(ads)].ad_id,
             users[user_pick % len(users)]): excess
            for ad_pick, user_pick, excess in caps
        }.items()
    )
    return {
        "impressions": impressions,
        "clicks": click_rows,
        "extra_caps": [[ad_id, user_id, excess]
                       for (ad_id, user_id), excess in cap_rows],
    }


_PICK = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # ad pick
    st.integers(min_value=0, max_value=10_000),  # user pick
    st.floats(min_value=0.0, max_value=0.02, allow_nan=False),
)
_CAP = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=3),
)


class TestRandomStateRoundTrip:
    @given(
        picks=st.lists(_PICK, max_size=30),
        clicks=st.lists(st.integers(min_value=0, max_value=10_000),
                        max_size=10),
        caps=st.lists(_CAP, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_cycles_are_byte_identical(self, world, picks, clicks,
                                           caps):
        state = _state_from(world, picks, clicks, caps)

        first = _fresh_engine(world)
        first.import_state(state)
        cycle_one = first.export_state()

        second = _fresh_engine(world)
        second.import_state(cycle_one)
        cycle_two = second.export_state()

        assert _canonical(cycle_one) == _canonical(cycle_two)
        # and the import actually took: counts, not just bytes
        assert len(second.impressions()) == len(state["impressions"])
        assert len(second.clicks()) == len(state["clicks"])

    @given(
        picks=st.lists(_PICK, min_size=1, max_size=15),
    )
    @settings(max_examples=25, deadline=None)
    def test_import_preserves_every_impression_field(self, world, picks):
        state = _state_from(world, picks, [], [])
        engine = _fresh_engine(world)
        engine.import_state(state)
        exported = engine.export_state()["impressions"]
        assert exported == state["impressions"]

    @given(
        picks=st.lists(_PICK, max_size=12),
        caps=st.lists(_CAP, max_size=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_cap_state_survives_the_round_trip(self, world, picks, caps):
        state = _state_from(world, picks, [], caps)
        first = _fresh_engine(world)
        first.import_state(state)
        second = _fresh_engine(world)
        second.import_state(first.export_state())
        assert first._shown_counts == second._shown_counts
        assert first._capped_for_user == second._capped_for_user


class TestServedScenarioRoundTrip:
    """The same fixed point over *served* (not synthetic) state."""

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_served_state_round_trips(self, world, seed):
        platform = world
        engine = _fresh_engine(platform)
        users = list(platform.users)
        # deterministic mini-run shaped by the seed
        for user in users[seed % 3:]:
            with engine.serving_session():
                for _ in range(1 + seed % 2):
                    engine.serve_slot(user)
        exported = engine.export_state()

        rebuilt = _fresh_engine(platform)
        rebuilt.import_state(exported)
        assert _canonical(rebuilt.export_state()) == _canonical(exported)
        again = _fresh_engine(platform)
        again.import_state(rebuilt.export_state())
        assert _canonical(again.export_state()) == _canonical(exported)
