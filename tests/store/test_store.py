"""StateStore backends: journaling, owner registry, checkpoint/replay
mechanics — exercised with a minimal counter-style owner so the store's
own contract is pinned independently of the platform."""

import threading

import pytest

from repro.errors import StoreError
from repro.store import (
    JournalStore,
    MemoryStore,
    SlotClaimed,
    Snapshot,
    StateOwner,
)
from repro.store.store import open_store


class CounterOwner:
    """Tiny state owner: per-user counters driven by SlotClaimed."""

    store_name = "counter"
    handled_kinds = (SlotClaimed.kind,)

    def __init__(self, store):
        self.counts = {}
        self._store = store
        store.attach(self)

    def claim(self, user_id, slots):
        record = SlotClaimed(user_id=user_id, slots=slots)
        self._store.append(record)
        self.apply_record(record)

    def state_dump(self):
        return {"counts": dict(self.counts)}

    def state_load(self, state):
        self.counts = {str(k): int(v)
                       for k, v in state["counts"].items()}

    def apply_record(self, record):
        self.counts[record.user_id] = (
            self.counts.get(record.user_id, 0) + record.slots)


@pytest.fixture(params=["memory", "journal"])
def store(request, tmp_path):
    if request.param == "memory":
        built = MemoryStore()
    else:
        built = JournalStore(str(tmp_path / "wal.jsonl"))
    yield built
    built.close()


class TestJournaling:
    def test_append_and_read_back(self, store):
        owner = CounterOwner(store)
        owner.claim("u-1", 3)
        owner.claim("u-2", 1)
        owner.claim("u-1", 3)
        assert store.record_count == 3
        assert store.records() == [
            SlotClaimed("u-1", 3), SlotClaimed("u-2", 1),
            SlotClaimed("u-1", 3),
        ]
        assert owner.counts == {"u-1": 6, "u-2": 1}

    def test_owner_protocol_runtime_checkable(self, store):
        assert isinstance(CounterOwner(store), StateOwner)

    def test_duplicate_owner_name_rejected(self, store):
        CounterOwner(store)
        with pytest.raises(StoreError, match="already attached"):
            CounterOwner(store)

    def test_kind_claim_clash_rejected(self, store):
        CounterOwner(store)

        class Rival(CounterOwner):
            store_name = "rival"

        with pytest.raises(StoreError, match="already handled"):
            Rival(store)

    def test_open_store_factory(self, tmp_path):
        assert isinstance(open_store(), MemoryStore)
        journaled = open_store(str(tmp_path / "j.jsonl"))
        assert isinstance(journaled, JournalStore)
        journaled.close()


class TestJournalDurability:
    def test_journal_survives_reopen(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        first = JournalStore(path)
        CounterOwner(first).claim("u-1", 2)
        first.close()
        reopened = JournalStore(path)
        assert reopened.record_count == 1
        owner = CounterOwner(reopened)
        owner.claim("u-2", 5)
        assert reopened.record_count == 2
        reopened.close()
        assert JournalStore.read(path) == [
            SlotClaimed("u-1", 2), SlotClaimed("u-2", 5),
        ]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert JournalStore.read(str(tmp_path / "nope.jsonl")) == []

    def test_corrupt_mid_file_line_raises(self, tmp_path):
        # Damage *before* the final line is corruption, not a torn
        # write — recovery must refuse rather than silently skip.
        path = tmp_path / "wal.jsonl"
        path.write_text("garbage\n"
                        '{"kind":"slot_claim","user_id":"u","slots":1}\n',
                        encoding="utf-8")
        with pytest.raises(StoreError, match="corrupt journal line"):
            JournalStore.read(str(path))

    def test_fsync_mode_appends(self, tmp_path):
        store = JournalStore(str(tmp_path / "wal.jsonl"), fsync=True)
        CounterOwner(store).claim("u-1", 1)
        store.close()
        assert store.record_count == 1

    def test_concurrent_appends_all_land(self, tmp_path):
        store = JournalStore(str(tmp_path / "wal.jsonl"))
        owner = CounterOwner(store)
        threads = [
            threading.Thread(
                target=lambda: [owner.claim("u", 1) for _ in range(50)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.record_count == 200
        assert len(store.records()) == 200
        store.close()


class TestTornWrites:
    """A writer killed mid-flush leaves a partial final line; recovery
    must drop it (it was never acknowledged), not crash."""

    GOOD = '{"kind":"slot_claim","user_id":"u-1","slots":2}\n'
    TORN = '{"kind":"slot_claim","user_id":"u-2","slo'  # no newline

    def test_read_drops_unterminated_final_line(self, tmp_path, caplog):
        path = tmp_path / "wal.jsonl"
        path.write_text(self.GOOD + self.TORN, encoding="utf-8")
        with caplog.at_level("WARNING", logger="repro.store.store"):
            records = JournalStore.read(str(path))
        assert records == [SlotClaimed("u-1", 2)]
        assert any("torn write" in r.message for r in caplog.records)

    def test_read_drops_undecodable_final_line(self, tmp_path, caplog):
        path = tmp_path / "wal.jsonl"
        path.write_text(self.GOOD + "gar{bage\n", encoding="utf-8")
        with caplog.at_level("WARNING", logger="repro.store.store"):
            records = JournalStore.read(str(path))
        assert records == [SlotClaimed("u-1", 2)]
        assert any("torn write" in r.message for r in caplog.records)

    def test_reopen_truncates_tail_then_appends_cleanly(self, tmp_path,
                                                        caplog):
        path = tmp_path / "wal.jsonl"
        path.write_text(self.GOOD + self.TORN, encoding="utf-8")
        with caplog.at_level("WARNING", logger="repro.store.store"):
            store = JournalStore(str(path))
        assert store.record_count == 1
        assert any("torn" in r.message for r in caplog.records)
        CounterOwner(store).claim("u-3", 4)
        store.close()
        # The torn tail is gone from disk: the appended record starts
        # on its own line instead of welding onto the partial one.
        assert JournalStore.read(str(path)) == [
            SlotClaimed("u-1", 2), SlotClaimed("u-3", 4),
        ]

    def test_restore_and_replay_survive_torn_tail(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        first = JournalStore(str(path))
        owner = CounterOwner(first)
        owner.claim("u-1", 2)
        snapshot = first.checkpoint()
        owner.claim("u-2", 5)
        first.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(self.TORN)
        reopened = JournalStore(str(path))
        rebuilt = CounterOwner(reopened)
        reopened.restore(snapshot)
        reopened.replay(reopened.records()[snapshot.journal_seq:])
        assert rebuilt.counts == {"u-1": 2, "u-2": 5}
        reopened.close()

    def test_empty_file_reopen_is_fine(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text("", encoding="utf-8")
        store = JournalStore(str(path))
        assert store.record_count == 0
        store.close()


class TestCheckpointRestoreReplay:
    def test_checkpoint_captures_position_and_state(self, store):
        owner = CounterOwner(store)
        owner.claim("u-1", 3)
        snapshot = store.checkpoint(label="mid")
        assert snapshot.journal_seq == 1
        assert snapshot.label == "mid"
        assert snapshot.state == {"counter": {"counts": {"u-1": 3}}}

    def test_restore_then_suffix_replay_reaches_end_state(self, store):
        owner = CounterOwner(store)
        owner.claim("u-1", 3)
        snapshot = store.checkpoint()
        owner.claim("u-1", 2)
        owner.claim("u-2", 7)
        final = dict(owner.counts)
        journal = store.records()

        store.restore(snapshot)
        assert owner.counts == {"u-1": 3}
        applied = store.replay(journal[snapshot.journal_seq:])
        assert applied == 2
        assert owner.counts == final

    def test_restore_rejects_section_mismatch(self, store):
        CounterOwner(store)
        with pytest.raises(StoreError, match="mismatch"):
            store.restore(Snapshot(version=1, journal_seq=0,
                                   state={"stranger": {}}))

    def test_replay_rejects_unclaimed_kind(self, store):
        with pytest.raises(StoreError, match="no attached owner"):
            store.replay([SlotClaimed("u-1", 1)])

    def test_replay_twice_is_not_journaled(self, store):
        owner = CounterOwner(store)
        owner.claim("u-1", 1)
        journal = store.records()
        store.replay(journal)
        # replay applied (counts doubled) but journaled nothing
        assert owner.counts == {"u-1": 2}
        assert store.record_count == 1
