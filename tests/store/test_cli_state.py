"""CLI: ``repro checkpoint`` / ``repro restore`` / ``repro replay``."""

from __future__ import annotations

import json

from repro.cli import main

FAST = ["--users", "24", "--rounds", "3", "--checkpoint-after", "1",
        "--shards", "2", "--seed", "11"]


class TestCheckpointCommand:
    def test_checkpoint_writes_the_full_directory(self, capsys,
                                                  tmp_path):
        out = str(tmp_path)
        assert main(["checkpoint", "--out", out, *FAST]) == 0
        printed = capsys.readouterr().out
        assert "repro checkpoint" in printed
        assert "records journaled" in printed
        names = {p.name for p in tmp_path.iterdir()}
        assert "manifest.json" in names
        assert "final_report.json" in names
        assert "shard-0-of-2.journal.jsonl" in names
        assert "shard-0-of-2.snapshot.json" in names
        assert "shard-1-of-2.journal.jsonl" in names
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest == {"seed": 11, "users": 24, "shards": 2,
                            "rounds": 3, "checkpoint_after": 1,
                            "slots": 3}

    def test_checkpoint_after_must_fit_rounds(self, capsys, tmp_path):
        assert main(["checkpoint", "--out", str(tmp_path),
                     "--rounds", "2", "--checkpoint-after", "5"]) == 2


class TestRestoreAndReplayCommands:
    def test_restore_and_replay_are_byte_identical(self, capsys,
                                                   tmp_path):
        out = str(tmp_path)
        assert main(["checkpoint", "--out", out, *FAST]) == 0
        assert main(["restore", "--from", out]) == 0
        printed = capsys.readouterr().out
        assert "byte-identical" in printed
        assert main(["replay", "--from", out]) == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_restore_detects_divergence(self, capsys, tmp_path):
        out = str(tmp_path)
        assert main(["checkpoint", "--out", out, *FAST]) == 0
        report_path = tmp_path / "final_report.json"
        report = json.loads(report_path.read_text())
        report["totals"]["impressions"] += 1  # corrupt the record
        report_path.write_text(json.dumps(report, sort_keys=True,
                                          separators=(",", ":")) + "\n")
        assert main(["restore", "--from", out]) == 1
        assert "diverged" in capsys.readouterr().err
