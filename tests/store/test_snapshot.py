"""Snapshot format: canonical bytes, versioning, corruption handling."""

import json

import pytest

from repro.errors import StoreError
from repro.store import SNAPSHOT_VERSION, Snapshot


def _snapshot(**overrides):
    base = dict(version=SNAPSHOT_VERSION, journal_seq=4,
                state={"b": {"x": 1}, "a": {"y": [1, 2]}}, label="t")
    base.update(overrides)
    return Snapshot(**base)


class TestCanonicalBytes:
    def test_equal_state_is_byte_identical(self):
        left = _snapshot()
        right = Snapshot(version=SNAPSHOT_VERSION, journal_seq=4,
                         state={"a": {"y": [1, 2]}, "b": {"x": 1}},
                         label="t")
        assert left.to_json() == right.to_json()

    def test_keys_are_sorted(self):
        data = json.loads(_snapshot().to_json())
        assert list(data) == sorted(data)
        assert list(data["state"]) == ["a", "b"]

    def test_json_round_trip(self):
        snapshot = _snapshot()
        again = Snapshot.from_json(snapshot.to_json())
        assert again == snapshot
        assert again.to_json() == snapshot.to_json()

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "s.snapshot.json")
        snapshot = _snapshot()
        snapshot.save(path)
        assert Snapshot.load(path) == snapshot


class TestValidation:
    def test_unsupported_version(self):
        text = _snapshot().to_json().replace(
            f'"version":{SNAPSHOT_VERSION}', '"version":999')
        with pytest.raises(StoreError, match="version 999"):
            Snapshot.from_json(text)

    def test_corrupt_text(self):
        with pytest.raises(StoreError, match="corrupt snapshot"):
            Snapshot.from_json("{oops")

    def test_non_object(self):
        with pytest.raises(StoreError, match="not a JSON object"):
            Snapshot.from_json("[]")

    def test_bad_journal_seq(self):
        payload = json.loads(_snapshot().to_json())
        payload["journal_seq"] = -2
        with pytest.raises(StoreError, match="bad journal_seq"):
            Snapshot.from_json(json.dumps(payload))

    def test_bad_state_section(self):
        payload = json.loads(_snapshot().to_json())
        payload["state"] = "nope"
        with pytest.raises(StoreError, match="bad state section"):
            Snapshot.from_json(json.dumps(payload))

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(StoreError, match="no snapshot at"):
            Snapshot.load(str(tmp_path / "absent.json"))
