"""Keeps docs/api_tour.md honest: its code path must run end to end.

This is the tour's snippets concatenated into one scenario; if an API in
the tour changes shape, this test fails before the documentation rots.
"""

import pytest


def test_api_tour_scenario_end_to_end():
    # 1. stand up a platform
    from repro import AdPlatform, PlatformConfig, WebDirectory
    from repro.platform.catalog import build_us_catalog
    from repro.workloads.competition import lognormal_competition

    platform = AdPlatform(
        config=PlatformConfig(name="tour", default_cpm=2.0),
        catalog=build_us_catalog(),
        competing_draw=lognormal_competition(median_cpm=2.0, seed=7),
    )
    web = WebDirectory()

    # 2. populate it
    user = platform.register_user(age=34, zip_code="02115")
    user.set_attribute(platform.catalog.get("pc-networth-006"))

    from repro.workloads import ESTABLISHED_PROFESSIONAL, PopulationBuilder

    builder = PopulationBuilder(platform, seed=42)
    people = builder.spawn(ESTABLISHED_PROFESSIONAL, 12)
    builder.finalize()

    # 3. run a provider
    from repro import TransparencyProvider

    provider = TransparencyProvider(platform, web, budget=500.0,
                                    bid_cap_cpm=10.0)
    for person in people:
        provider.optin.via_page_like(person.user_id)
    provider.launch_partner_sweep()

    # 4. deliver, paced
    from repro import PacedCampaignRunner
    from repro.workloads.browsing import BrowsingModel

    runner = PacedCampaignRunner(
        provider, daily_budget=0.10,
        browsing_model=BrowsingModel(mean_slots=25),
    )
    result = runner.run(max_days=60)
    assert result.saturated and not result.exhausted_budget

    # 5. decode user-side, over the published wire format
    from repro import TreadClient
    from repro.core import (
        diff_profiles,
        pack_from_json,
        pack_to_json,
        validate_pack,
    )

    wire = pack_to_json(provider.publish_decode_pack())
    pack = pack_from_json(wire)
    assert validate_pack(pack, platform.catalog) == []

    person = people[0]
    profile = TreadClient(person.user_id, platform, pack).sync()
    assert profile.control_received
    truth = {a for a in person.binary_attrs if a.startswith("pc-")}
    assert profile.set_attributes == truth

    assert diff_profiles(profile, profile).is_empty

    # 6. provider-side aggregates only
    counts = provider.aggregate_attribute_counts()
    assert sum(counts.values()) >= len(truth)
    assert provider.total_spend() > 0.0

    # 7. the companion toolkits import cleanly
    from repro.attacks import DeliveryInferenceAttack  # noqa: F401
    from repro.baselines import CorrelationAuditor, status_quo_view  # noqa: F401
    from repro.core.regulator import AdvertiserAuditor  # noqa: F401
    from repro.platform.policy import TreadPatternDetector  # noqa: F401

    # 9. observability (section 8 is the performance model, measured in
    # benchmarks/): registry swapped in before the platform is built
    from repro.obs import export
    from repro.obs.metrics import MetricsRegistry, use_registry

    with use_registry(MetricsRegistry("tour")) as reg:
        obs_platform = AdPlatform(
            config=PlatformConfig(name="tour-obs"),
            catalog=build_us_catalog(),
        )
        obs_web = WebDirectory()
        obs_user = obs_platform.register_user()
        obs_user.set_attribute(obs_platform.catalog.get("pc-networth-006"))
        obs_provider = TransparencyProvider(obs_platform, obs_web,
                                            budget=100.0)
        obs_provider.optin.via_page_like(obs_user.user_id)
        obs_provider.launch_partner_sweep()
        obs_provider.run_delivery()
    assert reg.value("delivery.slots_served") > 0
    assert "delivery.slots_served" in export.to_table(reg)

    # 10. serve it like a platform
    from repro import (
        AdRequest,
        LoadConfig,
        LoadGenerator,
        RuntimeConfig,
        ServingRuntime,
    )

    runtime = ServingRuntime(platform, RuntimeConfig(
        num_shards=4,
        queue_capacity=256,
    ))
    with runtime:
        result = runtime.submit(
            AdRequest(user.user_id, slots=2, deadline_s=0.05)
        ).result()
        assert result.ok and result.response.filled_slots <= 2

        report = LoadGenerator(
            runtime, platform.users.user_ids(),
            LoadConfig(rps=300, duration_s=0.3, seed=42),
        ).run()
    assert set(report.percentiles()) == {"p50", "p95", "p99"}
    assert report.tally.errors == 0

    # 10 (continued): the process backend serves the same world from
    # one worker process per shard, then merges state back at stop
    proc_runtime = ServingRuntime(platform, RuntimeConfig(
        num_shards=4, backend="process",
    ))
    with proc_runtime:
        results = proc_runtime.serve_and_wait(
            [AdRequest(uid, slots=1)
             for uid in platform.users.user_ids()])
    assert all(r.ok for r in results)
    assert proc_runtime.router.total_impressions() > 0

    # 12. put it on the network (section 11 is the journal round-trip,
    # exercised by the checkpoint/restore CLI tests)
    import tempfile

    from repro.gateway import (
        GatewayApp,
        GatewayServer,
        HttpLoadGenerator,
        TenantRegistry,
        WorldManifest,
        build_runtime,
        build_world,
        fetch_json,
        open_tenancy_store,
        save_manifest,
    )

    journal_dir = tempfile.mkdtemp()
    manifest = WorldManifest(seed=11, users=24, shards=2)
    save_manifest(journal_dir, manifest)
    gw_platform = build_world(manifest)
    gw_runtime = build_runtime(gw_platform, manifest,
                               journal_dir=journal_dir)
    tenancy_store = open_tenancy_store(journal_dir)
    tenants = TenantRegistry(gw_platform, tenancy_store)
    server = GatewayServer(GatewayApp(gw_platform, gw_runtime, tenants,
                                      manifest))
    gw_runtime.start()
    server.start()
    try:
        assert fetch_json(server.url, "/healthz")["status"] == "ok"
        org = tenants.create_org("acme", 40.0)
        assert fetch_json(
            server.url, f"/v1/orgs/{org.org_id}")["name"] == "acme"
        report = HttpLoadGenerator(
            server.url,
            config=LoadConfig(rps=200, duration_s=0.4, seed=7),
        ).run()
        assert report.tally.errors == 0
    finally:
        server.stop()
        gw_runtime.stop()
        for shard in gw_runtime.router.shards:
            shard.store.close()
        tenancy_store.close()

    # 13. scale it to a hundred thousand users
    from repro.workloads.competition import zero_competition

    big = AdPlatform(
        config=PlatformConfig(name="big", columnar_users=True),
        catalog=build_us_catalog(),
        competing_draw=zero_competition(),
    )
    partner_attrs = big.catalog.partner_attributes()
    for i in range(100_000):
        person = big.register_user()
        for k in range(3):
            person.set_attribute(partner_attrs[(i * 3 + k)
                                               % len(partner_attrs)])

    stats = big.users.stats()
    assert stats["rows"] == 100_000
    assert stats["dense_ids"]
    assert stats["column_bytes"] < 64 * 1024 * 1024

    target = partner_attrs[0]
    carriers = big.users.users_with_attribute(target.attr_id)
    assert all(u.has_attribute(target.attr_id) for u in carriers)

    # 14. deliver it as column algebra (the batch sweep)
    from repro.platform.ads import AdCreative
    from repro.store.store import NullStore

    fast = AdPlatform(
        config=PlatformConfig(name="fast", columnar_users=True,
                              compact_delivery=True),
        catalog=build_us_catalog(),
        competing_draw=zero_competition(),
        store=NullStore(),
    )
    account = fast.create_ad_account("adv", budget=100.0)
    campaign = fast.create_campaign(account.account_id, "camp")
    sweep_attrs = fast.catalog.partner_attributes()[:4]
    for attr in sweep_attrs:
        fast.submit_ad(account.account_id, campaign.campaign_id,
                       AdCreative("h", f"ref {attr.attr_id}"),
                       f"attr:{attr.attr_id} & country:US",
                       bid_cap_cpm=10.0)
    for i in range(200):
        fast.register_user().set_attribute(sweep_attrs[i % 4])

    stats = fast.run_sweep()
    assert stats.filled_by_tracked_ads > 0
    assert fast.run_sweep(workers=2).filled_by_tracked_ads == 0
