"""Tests for population generation and the broker pipeline."""

import pytest

from repro.workloads.personas import (
    AVERAGE_CONSUMER,
    ESTABLISHED_PROFESSIONAL,
    RECENT_ARRIVAL_GRAD_STUDENT,
)
from repro.workloads.population import (
    PopulationBuilder,
    ground_truth_partner_attrs,
)


class TestSpawn:
    def test_demographics_within_persona_ranges(self, platform):
        builder = PopulationBuilder(platform, seed=1)
        users = builder.spawn(ESTABLISHED_PROFESSIONAL, 10)
        for user in users:
            low, high = ESTABLISHED_PROFESSIONAL.age_range
            assert low <= user.age <= high
            assert user.gender in ESTABLISHED_PROFESSIONAL.genders

    def test_platform_attribute_counts_in_range(self, platform):
        builder = PopulationBuilder(platform, seed=1)
        users = builder.spawn(AVERAGE_CONSUMER, 10)
        multi_count = len(platform.catalog.multi_attributes())
        for user in users:
            low, high = AVERAGE_CONSUMER.platform_attr_range
            binaries = len(user.binary_attrs)
            # small test catalog may cap below the persona's upper bound
            pool = len([a for a in platform.catalog.platform_attributes()
                        if a.is_binary])
            assert min(low, pool) <= binaries <= min(high, pool)
            assert len(user.multi_attrs) == multi_count

    def test_pii_attached_and_indexed(self, platform):
        builder = PopulationBuilder(platform, seed=1)
        user = builder.spawn(ESTABLISHED_PROFESSIONAL, 1)[0]
        assert "email" in user.pii_hashes
        assert "phone" in user.pii_hashes

    def test_persona_ground_truth_recorded(self, platform):
        builder = PopulationBuilder(platform, seed=1)
        user = builder.spawn(RECENT_ARRIVAL_GRAD_STUDENT, 1)[0]
        assert builder.persona_of[user.user_id] == \
            "recent_arrival_grad_student"

    def test_reproducible_with_same_seed(self, full_platform):
        from repro.platform.catalog import build_us_catalog
        from repro.platform.platform import AdPlatform, PlatformConfig
        from repro.workloads.competition import zero_competition

        def build():
            platform = AdPlatform(
                config=PlatformConfig(name="repro"),
                catalog=build_us_catalog(40, 25),
                competing_draw=zero_competition(),
            )
            builder = PopulationBuilder(platform, seed=7)
            users = builder.spawn(AVERAGE_CONSUMER, 5)
            builder.finalize()
            return [(u.age, sorted(u.binary_attrs)) for u in users]

        assert build() == build()


class TestBrokerPipeline:
    def test_established_professional_gets_partner_attrs(self, platform):
        builder = PopulationBuilder(platform, seed=3)
        user = builder.spawn(ESTABLISHED_PROFESSIONAL, 1)[0]
        assert not any(a.startswith("pc-") for a in user.binary_attrs)
        builder.finalize()
        partner_attrs = {a for a in user.binary_attrs if a.startswith("pc-")}
        low, high = ESTABLISHED_PROFESSIONAL.partner_attr_range
        assert partner_attrs  # definitely covered (coverage=1.0)

    def test_recent_arrival_gets_none(self, platform):
        """The paper's key asymmetry, reproduced by construction."""
        builder = PopulationBuilder(platform, seed=3)
        user = builder.spawn(RECENT_ARRIVAL_GRAD_STUDENT, 1)[0]
        builder.finalize()
        assert not any(a.startswith("pc-") for a in user.binary_attrs)

    def test_exclusive_families_single_pick(self, full_platform):
        """A user gets at most one net-worth band, one job role, etc."""
        builder = PopulationBuilder(full_platform, seed=5)
        users = builder.spawn(ESTABLISHED_PROFESSIONAL, 10)
        builder.finalize()
        for user in users:
            for family in ("pc-networth", "pc-jobrole", "pc-hometype"):
                picks = [a for a in user.binary_attrs
                         if a.startswith(family)]
                assert len(picks) <= 1

    def test_spawn_mix(self, platform):
        builder = PopulationBuilder(platform, seed=2)
        users = builder.spawn_mix(
            [ESTABLISHED_PROFESSIONAL, RECENT_ARRIVAL_GRAD_STUDENT],
            count=20,
        )
        assert len(users) == 20
        personas = set(builder.persona_of.values())
        assert personas <= {"established_professional",
                            "recent_arrival_grad_student"}


class TestGroundTruth:
    def test_partner_only(self, platform):
        builder = PopulationBuilder(platform, seed=3)
        user = builder.spawn(ESTABLISHED_PROFESSIONAL, 1)[0]
        builder.finalize()
        truth = ground_truth_partner_attrs(platform, [user.user_id])
        assert all(a.startswith("pc-") for a in truth[user.user_id])
        assert truth[user.user_id] == {
            a for a in user.binary_attrs if a.startswith("pc-")
        }
