"""Tests for competing-bid models."""

import pytest

from repro.workloads import competition


class TestModels:
    def test_fixed(self):
        draw = competition.fixed_competition(2.0)
        assert draw() == pytest.approx(0.002)
        assert draw() == pytest.approx(0.002)

    def test_zero(self):
        assert competition.zero_competition()() == 0.0

    def test_lognormal_median_calibration(self):
        draw = competition.lognormal_competition(median_cpm=2.0, seed=1)
        samples = sorted(draw() for _ in range(10_001))
        median = samples[len(samples) // 2]
        assert median == pytest.approx(0.002, rel=0.1)

    def test_lognormal_reproducible(self):
        a = competition.lognormal_competition(seed=5)
        b = competition.lognormal_competition(seed=5)
        assert [a() for _ in range(10)] == [b() for _ in range(10)]

    def test_peak_offpeak_between_regimes(self):
        draw = competition.peak_offpeak_competition(seed=2)
        samples = [draw() for _ in range(5000)]
        mean_cpm = 1000 * sum(samples) / len(samples)
        assert 1.0 < mean_cpm < 4.5


class TestWinRates:
    def test_paper_calibration_points(self):
        """$2 CPM wins ~half, $10 CPM (the validation's 5x) wins ~always."""
        factory = lambda: competition.lognormal_competition(seed=9)
        assert 0.45 < competition.win_rate(2.0, factory()) < 0.55
        assert competition.win_rate(10.0, factory()) > 0.98

    def test_win_rate_curve_monotone(self):
        factory = lambda: competition.lognormal_competition(seed=9)
        curve = competition.win_rate_curve(
            [0.5, 1.0, 2.0, 5.0, 10.0, 20.0], factory, trials=5000
        )
        rates = [rate for _, rate in curve]
        assert rates == sorted(rates)
        assert rates[0] < 0.1
        assert rates[-1] > 0.99
