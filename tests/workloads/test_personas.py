"""Unit tests for persona definitions."""

import pytest

from repro.workloads.personas import (
    ESTABLISHED_PROFESSIONAL,
    PERSONAS,
    RECENT_ARRIVAL_GRAD_STUDENT,
    Persona,
)


class TestPaperPersonas:
    def test_profiled_author_archetype(self):
        """The author the validation revealed: full broker coverage with
        the exact attribute families the paper lists."""
        persona = ESTABLISHED_PROFESSIONAL
        assert persona.broker_coverage == 1.0
        assert persona.partner_attr_range[0] >= 9
        for family in ("pc-networth", "pc-restaurants", "pc-apparel",
                       "pc-jobrole", "pc-hometype", "pc-autointent"):
            assert family in persona.partner_families

    def test_unprofiled_author_archetype(self):
        """'a graduate student who has only been in the U.S. for over a
        year' — zero broker coverage, zero partner attributes."""
        persona = RECENT_ARRIVAL_GRAD_STUDENT
        assert persona.broker_coverage == 0.0
        assert persona.partner_attr_range == (0, 0)


class TestValidation:
    def test_all_personas_well_formed(self):
        for persona in PERSONAS:
            assert persona.age_range[0] <= persona.age_range[1]
            assert 0.0 <= persona.broker_coverage <= 1.0
            assert persona.genders

    def test_names_unique(self):
        names = [p.name for p in PERSONAS]
        assert len(names) == len(set(names))

    def test_bad_coverage_rejected(self):
        with pytest.raises(ValueError):
            Persona(name="x", age_range=(20, 30), genders=("male",),
                    platform_attr_range=(1, 2), partner_attr_range=(0, 0),
                    broker_coverage=1.5, partner_families=())

    def test_inverted_age_rejected(self):
        with pytest.raises(ValueError):
            Persona(name="x", age_range=(30, 20), genders=("male",),
                    platform_attr_range=(1, 2), partner_attr_range=(0, 0),
                    broker_coverage=0.5, partner_families=())
