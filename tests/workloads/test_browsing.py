"""Tests for browsing-session generation."""

import random

import pytest

from repro.core.provider import TransparencyProvider
from repro.workloads.browsing import (
    BrowsingModel,
    days_until_coverage,
    simulate_day,
)


class TestBrowsingModel:
    def test_slots_at_least_min(self):
        model = BrowsingModel(mean_slots=0.5, min_slots=2)
        rng = random.Random(1)
        assert all(model.slots_for(rng) >= 2 for _ in range(100))

    def test_mean_roughly_respected(self):
        model = BrowsingModel(mean_slots=20.0, heavy_user_fraction=0.0)
        rng = random.Random(2)
        samples = [model.slots_for(rng) for _ in range(3000)]
        assert 17 < sum(samples) / len(samples) < 23

    def test_heavy_tail_raises_mean(self):
        light = BrowsingModel(mean_slots=10.0, heavy_user_fraction=0.0)
        heavy = BrowsingModel(mean_slots=10.0, heavy_user_fraction=0.5,
                              heavy_multiplier=4)
        rng_l, rng_h = random.Random(3), random.Random(3)
        mean_l = sum(light.slots_for(rng_l) for _ in range(2000)) / 2000
        mean_h = sum(heavy.slots_for(rng_h) for _ in range(2000)) / 2000
        assert mean_h > mean_l * 1.5

    def test_zero_mean(self):
        model = BrowsingModel(mean_slots=0.0, min_slots=1)
        assert model.slots_for(random.Random(1)) == 1


class TestSimulateDay:
    def test_slots_counted_per_user(self, platform, web):
        users = [platform.register_user() for _ in range(5)]
        day = simulate_day(platform, users, seed=4)
        assert set(day.slots_by_user) == {u.user_id for u in users}
        assert day.stats.slots == sum(day.slots_by_user.values())

    def test_treads_delivered_through_browsing(self, platform, web):
        provider = TransparencyProvider(platform, web, budget=100.0)
        attr = platform.catalog.partner_attributes()[0]
        user = platform.register_user()
        user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep([attr])
        day = simulate_day(platform, [user],
                           BrowsingModel(mean_slots=30.0), seed=5)
        assert day.stats.filled_by_tracked_ads == 2  # control + attribute


class TestDaysUntilCoverage:
    def test_active_users_covered_quickly(self, platform, web):
        provider = TransparencyProvider(platform, web, budget=100.0)
        attrs = platform.catalog.partner_attributes()[:3]
        users = []
        for _ in range(4):
            user = platform.register_user()
            for attr in attrs:
                user.set_attribute(attr)
            provider.optin.via_page_like(user.user_id)
            users.append(user)
        provider.launch_attribute_sweep(attrs)
        expected = 4 * (3 + 1)
        days = days_until_coverage(platform, users, expected,
                                   BrowsingModel(mean_slots=30.0), seed=6)
        assert days <= 3

    def test_max_days_cap(self, platform, web):
        user = platform.register_user()
        days = days_until_coverage(platform, [user],
                                   expected_impressions=100,
                                   max_days=5, seed=7)
        assert days == 5
