"""Tests for the Wilson-interval prevalence estimates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import prevalence_estimate, wilson_interval


class TestWilsonInterval:
    def test_half_and_half(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert high - low < 0.25

    def test_zero_count_interval_starts_at_zero(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0
        assert 0.0 < high < 0.5

    def test_full_count_interval_ends_at_one(self):
        low, high = wilson_interval(10, 10)
        assert high == 1.0
        assert 0.5 < low < 1.0

    def test_paper_scale_n2_is_wide(self):
        """The validation's n=2: any estimate is nearly uninformative —
        which Wilson reports honestly (unlike a Wald interval)."""
        low, high = wilson_interval(1, 2)
        assert high - low > 0.8

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)


class TestPrevalenceEstimate:
    def test_fields(self):
        estimate = prevalence_estimate(3, 10)
        assert estimate.point == pytest.approx(0.3)
        assert estimate.low < 0.3 < estimate.high
        assert "n=10" in str(estimate)


@given(
    sample_size=st.integers(1, 5000),
    data=st.data(),
)
def test_interval_properties(sample_size, data):
    """For any observation: interval within [0,1], contains the point
    estimate, and narrows with sample size."""
    count = data.draw(st.integers(0, sample_size))
    low, high = wilson_interval(count, sample_size)
    point = count / sample_size
    assert 0.0 <= low <= point <= high <= 1.0
    # a 100x larger sample with the same proportion gives a narrower CI
    low_big, high_big = wilson_interval(count * 100, sample_size * 100)
    assert (high_big - low_big) <= (high - low) + 1e-12
