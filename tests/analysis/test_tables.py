"""Tests for the table renderer."""

from repro.analysis.tables import format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(("name", "n"), [("alpha", 1), ("b", 22)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert lines[2].startswith("alpha")
        # numeric column right-aligned
        assert lines[2].endswith("1")
        assert lines[3].endswith("22")

    def test_title(self):
        out = format_table(("a",), [(1,)], title="My Table")
        lines = out.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_float_formatting(self):
        out = format_table(("x",), [(0.002,), (1234.5,), (0.0,)])
        assert "0.00200" in out
        assert "1,234.5" in out

    def test_bool_formatting(self):
        out = format_table(("ok",), [(True,), (False,)])
        assert "yes" in out and "no" in out

    def test_int_thousands(self):
        out = format_table(("n",), [(1234567,)])
        assert "1,234,567" in out

    def test_widths_accommodate_long_cells(self):
        out = format_table(("h",), [("a much longer cell",)])
        header, rule, row = out.splitlines()
        assert len(rule) >= len(row.rstrip())
