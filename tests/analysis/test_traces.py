"""Tests for trace capture and JSONL round-trip."""

import pytest

from repro.analysis.traces import (
    Trace,
    capture_trace,
    dump_jsonl,
    load_jsonl,
    spend_by_day_of_seq,
)
from repro.core.provider import TransparencyProvider


@pytest.fixture
def traced(platform, web):
    provider = TransparencyProvider(platform, web, budget=100.0)
    attrs = platform.catalog.partner_attributes()[:3]
    user = platform.register_user()
    for attr in attrs:
        user.set_attribute(attr)
    provider.optin.via_page_like(user.user_id)
    provider.optin.via_pixel(platform.browser_for(user.user_id))
    provider.launch_attribute_sweep(attrs)
    provider.run_delivery()
    return provider, capture_trace(platform, websites=[provider.website])


class TestCapture:
    def test_impressions_and_charges_captured(self, traced):
        provider, trace = traced
        assert len(trace.of_kind("impression")) == 4  # 3 attrs + control
        assert len(trace.of_kind("charge")) == 4

    def test_web_visits_captured(self, traced):
        _, trace = traced
        visits = trace.of_kind("web_visit")
        assert len(visits) == 1
        assert visits[0]["path"] == "/optin"

    def test_header_metadata(self, traced, platform):
        _, trace = traced
        assert trace.header["platform"] == platform.name
        assert trace.header["users"] == 1

    def test_visibility_labels(self, traced):
        _, trace = traced
        assert all(e["visibility"] == "platform-internal"
                   for e in trace.of_kind("impression"))
        assert all(e["visibility"] == "advertiser"
                   for e in trace.of_kind("charge"))


class TestRoundTrip:
    def test_dump_load_identity(self, traced):
        _, trace = traced
        restored = load_jsonl(dump_jsonl(trace))
        assert restored.header == trace.header
        assert restored.events == trace.events

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            load_jsonl("")

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            load_jsonl('{"kind": "impression"}')

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            load_jsonl('{"kind": "header", "schema": 99}')


class TestDownstreamAnalysis:
    def test_spend_buckets(self, traced):
        _, trace = traced
        buckets = spend_by_day_of_seq(trace, seqs_per_day=2)
        assert sum(buckets.values()) == pytest.approx(
            sum(e["amount"] for e in trace.of_kind("charge"))
        )

    def test_bad_bucket_size_rejected(self):
        with pytest.raises(ValueError):
            spend_by_day_of_seq(Trace(), seqs_per_day=0)
