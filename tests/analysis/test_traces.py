"""Tests for trace capture and JSONL round-trip."""

import pytest

from repro.analysis.traces import (
    Trace,
    capture_trace,
    dump_jsonl,
    load_jsonl,
    merge_event_stream,
    spend_by_day_of_seq,
)
from repro.core.provider import TransparencyProvider
from repro.obs.events import ImpressionDelivered, bus


@pytest.fixture
def traced(platform, web):
    provider = TransparencyProvider(platform, web, budget=100.0)
    attrs = platform.catalog.partner_attributes()[:3]
    user = platform.register_user()
    for attr in attrs:
        user.set_attribute(attr)
    provider.optin.via_page_like(user.user_id)
    provider.optin.via_pixel(platform.browser_for(user.user_id))
    provider.launch_attribute_sweep(attrs)
    provider.run_delivery()
    return provider, capture_trace(platform, websites=[provider.website])


class TestCapture:
    def test_impressions_and_charges_captured(self, traced):
        provider, trace = traced
        assert len(trace.of_kind("impression")) == 4  # 3 attrs + control
        assert len(trace.of_kind("charge")) == 4

    def test_web_visits_captured(self, traced):
        _, trace = traced
        visits = trace.of_kind("web_visit")
        assert len(visits) == 1
        assert visits[0]["path"] == "/optin"

    def test_header_metadata(self, traced, platform):
        _, trace = traced
        assert trace.header["platform"] == platform.name
        assert trace.header["users"] == 1

    def test_visibility_labels(self, traced):
        _, trace = traced
        assert all(e["visibility"] == "platform-internal"
                   for e in trace.of_kind("impression"))
        assert all(e["visibility"] == "advertiser"
                   for e in trace.of_kind("charge"))


class TestClickCapture:
    def test_clicks_captured_with_visibility(self, traced, platform):
        _, trace = traced
        impression = platform.delivery.impressions()[0]
        platform.delivery.record_click(impression.user_id, impression.ad_id)
        trace = capture_trace(platform)
        clicks = trace.of_kind("click")
        assert len(clicks) == 1
        assert clicks[0]["ad_id"] == impression.ad_id
        assert clicks[0]["user_id"] == impression.user_id
        assert clicks[0]["click_seq"] == 0
        assert clicks[0]["visibility"] == "platform-internal"

    def test_click_round_trip(self, traced, platform):
        _, _ = traced
        impression = platform.delivery.impressions()[0]
        platform.delivery.record_click(impression.user_id, impression.ad_id)
        trace = capture_trace(platform)
        restored = load_jsonl(dump_jsonl(trace))
        assert restored.of_kind("click") == trace.of_kind("click")

    def test_no_clicks_no_click_events(self, traced):
        _, trace = traced
        assert trace.of_kind("click") == []


class TestMergeEventStream:
    def test_merges_typed_events(self):
        trace = Trace(header={"schema": 1})
        event = ImpressionDelivered(ad_id="ad-1", account_id="acct-1",
                                    user_id="u-1", price=0.002,
                                    impression_seq=0)
        result = merge_event_stream(trace, [event])
        assert result is trace
        merged = trace.of_kind("impression_delivered")
        assert len(merged) == 1
        assert merged[0]["ad_id"] == "ad-1"
        assert merged[0]["visibility"] == "observability"

    def test_merges_plain_dicts_preserving_visibility(self):
        trace = Trace()
        merge_event_stream(trace, [
            {"kind": "click_recorded", "ad_id": "ad-2",
             "visibility": "custom"},
        ])
        assert trace.events[0]["visibility"] == "custom"

    def test_header_records_rejected(self):
        with pytest.raises(ValueError):
            merge_event_stream(Trace(), [{"kind": "header", "schema": 1}])

    def test_captured_bus_events_round_trip(self, platform, web):
        with bus().capture() as captured:
            provider = TransparencyProvider(platform, web, budget=100.0)
            attr = platform.catalog.partner_attributes()[0]
            user = platform.register_user()
            user.set_attribute(attr)
            provider.optin.via_page_like(user.user_id)
            provider.launch_attribute_sweep([attr])
            provider.run_delivery()
        trace = merge_event_stream(capture_trace(platform), captured)
        live = trace.of_kind("impression_delivered")
        snapshot = trace.of_kind("impression")
        assert len(live) == len(snapshot) > 0
        restored = load_jsonl(dump_jsonl(trace))
        assert restored.events == trace.events


class TestRoundTrip:
    def test_dump_load_identity(self, traced):
        _, trace = traced
        restored = load_jsonl(dump_jsonl(trace))
        assert restored.header == trace.header
        assert restored.events == trace.events

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            load_jsonl("")

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            load_jsonl('{"kind": "impression"}')

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            load_jsonl('{"kind": "header", "schema": 99}')


class TestDownstreamAnalysis:
    def test_spend_buckets(self, traced):
        _, trace = traced
        buckets = spend_by_day_of_seq(trace, seqs_per_day=2)
        assert sum(buckets.values()) == pytest.approx(
            sum(e["amount"] for e in trace.of_kind("charge"))
        )

    def test_bad_bucket_size_rejected(self):
        with pytest.raises(ValueError):
            spend_by_day_of_seq(Trace(), seqs_per_day=0)
