"""Tests for the provider campaign report."""

import pytest

from repro.analysis.report import campaign_report
from repro.core.provider import TransparencyProvider


@pytest.fixture
def run_provider(platform, web):
    provider = TransparencyProvider(platform, web, budget=100.0)
    attrs = platform.catalog.partner_attributes()[:3]
    for _ in range(4):
        user = platform.register_user()
        for attr in attrs[:2]:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
    provider.launch_attribute_sweep(attrs)
    provider.run_delivery()
    return provider


class TestCampaignReport:
    def test_contains_overview_numbers(self, run_provider):
        report = campaign_report(run_provider)
        assert "Treads launched" in report
        assert "impressions billed" in report
        # 4 users x (2 set attrs + control) = 12
        assert "12" in report

    def test_aggregate_attribute_section(self, run_provider, platform):
        report = campaign_report(run_provider)
        top_attr = platform.catalog.partner_attributes()[0]
        assert top_attr.name in report
        assert "aggregates only" in report

    def test_never_contains_user_ids(self, run_provider, platform):
        report = campaign_report(run_provider)
        for profile in platform.users:
            assert profile.user_id not in report

    def test_empty_campaign(self, platform, web):
        provider = TransparencyProvider(platform, web, budget=10.0)
        report = campaign_report(provider)
        assert "Treads launched" in report
        assert "-" in report  # no effective CPM yet

    def test_top_attributes_limit(self, run_provider):
        short = campaign_report(run_provider, top_attributes=1)
        full = campaign_report(run_provider, top_attributes=10)
        assert len(short) <= len(full)
