"""Tests for reveal-quality metrics."""

import pytest

from repro.analysis.metrics import (
    CoverageScore,
    macro_scores,
    mechanism_completeness,
    score_reveal,
)


class TestCoverageScore:
    def test_perfect(self):
        score = score_reveal({"a", "b"}, {"a", "b"})
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_partial_recall(self):
        score = score_reveal({"a"}, {"a", "b"})
        assert score.precision == 1.0
        assert score.recall == 0.5
        assert score.f1 == pytest.approx(2 / 3)

    def test_false_positive(self):
        score = score_reveal({"a", "x"}, {"a"})
        assert score.precision == 0.5
        assert score.recall == 1.0

    def test_empty_revealed_nothing_to_reveal(self):
        score = score_reveal(set(), set())
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_revealed_nothing_but_truth_exists(self):
        score = score_reveal(set(), {"a"})
        assert score.recall == 0.0
        assert score.f1 == 0.0


class TestMechanismCompleteness:
    def test_full(self):
        assert mechanism_completeness(
            {"u1": {"a", "b"}}, {"u1": {"a", "b"}}
        ) == 1.0

    def test_half(self):
        assert mechanism_completeness(
            {"u1": {"a"}, "u2": set()}, {"u1": {"a"}, "u2": {"b"}}
        ) == 0.5

    def test_user_with_no_truth_ignored(self):
        """The unprofiled author is not a miss for Treads."""
        assert mechanism_completeness(
            {"u1": {"a"}, "u2": set()}, {"u1": {"a"}, "u2": set()}
        ) == 1.0

    def test_spurious_reveals_dont_inflate(self):
        assert mechanism_completeness(
            {"u1": {"x", "y", "z"}}, {"u1": {"a"}}
        ) == 0.0

    def test_empty_truth_is_complete(self):
        assert mechanism_completeness({}, {}) == 1.0


class TestMacroScores:
    def test_averaged_across_users(self):
        scores = macro_scores(
            {"u1": {"a"}, "u2": set()},
            {"u1": {"a"}, "u2": {"b"}},
        )
        assert scores["recall"] == pytest.approx(0.5)
        assert scores["precision"] == pytest.approx(1.0)

    def test_empty(self):
        assert macro_scores({}, {}) == {
            "precision": 1.0, "recall": 1.0, "f1": 1.0
        }
