"""Unit tests for the second-price impression auction."""

import pytest

from repro.platform.ads import Ad, AdCreative
from repro.platform.auction import run_auction, win_probability
from repro.platform.targeting import parse
from repro.workloads.competition import fixed_competition, lognormal_competition


def _ad(ad_id, bid_cpm, account_id=None):
    return Ad(
        ad_id=ad_id, account_id=account_id or f"acct-{ad_id}",
        campaign_id="c", creative=AdCreative("h", "b"),
        targeting=parse("all"), bid_cap_cpm=bid_cpm,
    )


class TestRunAuction:
    def test_highest_bid_wins(self):
        outcome = run_auction([_ad("x", 2.0), _ad("y", 10.0)],
                              competing_bid=0.0)
        assert outcome.winner.ad_id == "y"

    def test_winner_pays_second_price(self):
        outcome = run_auction([_ad("x", 2.0), _ad("y", 10.0)],
                              competing_bid=0.0)
        assert outcome.price == pytest.approx(0.002)

    def test_competing_bid_sets_price(self):
        outcome = run_auction([_ad("y", 10.0)], competing_bid=0.004)
        assert outcome.winner is not None
        assert outcome.price == pytest.approx(0.004)

    def test_competition_outbids(self):
        outcome = run_auction([_ad("x", 2.0)], competing_bid=0.005)
        assert outcome.winner is None
        assert outcome.price == 0.0

    def test_tie_goes_to_competition(self):
        """Equal bid does not beat the competing bid (strict >)."""
        outcome = run_auction([_ad("x", 2.0)], competing_bid=0.002)
        assert outcome.winner is None

    def test_price_never_exceeds_cap(self):
        outcome = run_auction([_ad("x", 2.0), _ad("y", 2.0)],
                              competing_bid=0.0019)
        assert outcome.winner is not None
        assert outcome.price <= outcome.winner.bid_per_impression

    def test_same_account_ads_do_not_self_compete(self):
        """A Tread sweep's sibling ads must not inflate the second price:
        only the best ad per account enters the auction."""
        siblings = [_ad(f"t{i}", 10.0, account_id="provider")
                    for i in range(5)]
        outcome = run_auction(siblings, competing_bid=0.002)
        assert outcome.winner is not None
        assert outcome.price == pytest.approx(0.002)  # market, not $0.01

    def test_deterministic_tie_break_by_id(self):
        outcome = run_auction([_ad("b", 5.0), _ad("a", 5.0)],
                              competing_bid=0.0)
        assert outcome.winner.ad_id == "a"

    def test_floor_price_blocks_low_bids(self):
        outcome = run_auction([_ad("x", 1.0)], competing_bid=0.0,
                              floor_price=0.002)
        assert outcome.winner is None

    def test_floor_price_charged(self):
        outcome = run_auction([_ad("x", 5.0)], competing_bid=0.0,
                              floor_price=0.002)
        assert outcome.price == pytest.approx(0.002)

    def test_empty_eligible_set(self):
        outcome = run_auction([], competing_bid=0.001)
        assert outcome.winner is None

    def test_negative_competition_rejected(self):
        with pytest.raises(ValueError):
            run_auction([_ad("x", 2.0)], competing_bid=-0.1)


class TestWinProbability:
    def test_sure_win_against_fixed_lower(self):
        assert win_probability(10.0, fixed_competition(2.0),
                               trials=100) == 1.0

    def test_sure_loss_against_fixed_higher(self):
        assert win_probability(1.0, fixed_competition(2.0),
                               trials=100) == 0.0

    def test_median_bid_wins_about_half(self):
        """The paper's $2-CPM 'recommended bid' calibration point."""
        rate = win_probability(2.0, lognormal_competition(median_cpm=2.0),
                               trials=20_000)
        assert 0.45 < rate < 0.55

    def test_five_x_bid_nearly_always_wins(self):
        """The validation's 5x elevation ($10 CPM) should essentially
        guarantee delivery."""
        rate = win_probability(10.0, lognormal_competition(median_cpm=2.0),
                               trials=20_000)
        assert rate > 0.98

    def test_invalid_trials_rejected(self):
        with pytest.raises(ValueError):
            win_probability(2.0, fixed_competition(2.0), trials=0)
