"""Tests for Google-style keyword (custom intent/affinity) audiences."""

import pytest

from repro.errors import AudienceError
from repro.platform.ads import AdCreative


class TestCreation:
    def test_create_and_match(self, platform, funded_account):
        user = platform.register_user()
        salsa = platform.catalog.search("salsa")[0]
        user.set_attribute(salsa)
        audience = platform.create_keyword_audience(
            funded_account.account_id, ["salsa"], name="dancers"
        )
        assert platform.audiences.is_member(audience.audience_id,
                                            user.user_id)

    def test_nonmatching_user_excluded(self, platform, funded_account):
        user = platform.register_user()
        audience = platform.create_keyword_audience(
            funded_account.account_id, ["salsa"]
        )
        assert not platform.audiences.is_member(audience.audience_id,
                                                user.user_id)

    def test_multiple_phrases_union(self, platform, funded_account):
        salsa_user = platform.register_user()
        salsa = platform.catalog.search("salsa")[0]
        salsa_user.set_attribute(salsa)
        jazz_user = platform.register_user()
        jazz = platform.catalog.search("jazz")[0]
        jazz_user.set_attribute(jazz)
        audience = platform.create_keyword_audience(
            funded_account.account_id, ["salsa", "jazz"]
        )
        members = platform.audiences.members(audience.audience_id)
        assert {salsa_user.user_id, jazz_user.user_id} <= members

    def test_membership_dynamic(self, platform, funded_account):
        audience = platform.create_keyword_audience(
            funded_account.account_id, ["salsa"]
        )
        assert platform.audiences.members(audience.audience_id) == set()
        late_user = platform.register_user()
        late_user.set_attribute(platform.catalog.search("salsa")[0])
        assert platform.audiences.members(audience.audience_id) == {
            late_user.user_id
        }

    def test_empty_phrases_rejected(self, platform, funded_account):
        with pytest.raises(AudienceError):
            platform.create_keyword_audience(funded_account.account_id,
                                             ["  ", ""])

    def test_phrases_trimmed(self, platform, funded_account):
        audience = platform.create_keyword_audience(
            funded_account.account_id, ["  salsa  "]
        )
        assert audience.phrases == ("salsa",)


class TestTreadsOverKeywordAudiences:
    def test_keyword_audience_tread_end_to_end(self, platform, web,
                                               funded_account, campaign):
        """A Tread can target a keyword audience like any other — the
        reveal becomes 'you matched these keywords'."""
        salsa = platform.catalog.search("salsa")[0]
        users = []
        for _ in range(25):
            user = platform.register_user()
            user.set_attribute(salsa)
            users.append(user)
        outsider = platform.register_user()
        audience = platform.create_keyword_audience(
            funded_account.account_id, ["salsa"]
        )
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "Reference: 1,234,567."),
            f"audience:{audience.audience_id}", bid_cap_cpm=10.0,
        )
        platform.run_until_saturated()
        assert all(len(platform.feed(u.user_id)) == 1 for u in users)
        assert platform.feed(outsider.user_id) == []

    def test_min_size_gate_applies(self, platform, funded_account,
                                   campaign):
        """Keyword audiences are custom audiences: the minimum-size gate
        protects against single-user keyword sniping."""
        from repro.errors import AudienceTooSmallError
        lone = platform.register_user()
        lone.set_attribute(platform.catalog.search("salsa")[0])
        audience = platform.create_keyword_audience(
            funded_account.account_id, ["salsa"]
        )
        with pytest.raises(AudienceTooSmallError):
            platform.submit_ad(
                funded_account.account_id, campaign.campaign_id,
                AdCreative("h", "b"), f"audience:{audience.audience_id}",
            )
