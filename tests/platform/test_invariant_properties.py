"""Property-based invariants over the auction and delivery pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.ads import Ad, AdCreative
from repro.platform.auction import run_auction
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.targeting import parse
from repro.workloads.competition import zero_competition

_bid = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)


def _ads(bids_with_accounts):
    return [
        Ad(ad_id=f"ad-{index}", account_id=account, campaign_id="c",
           creative=AdCreative("h", "b"), targeting=parse("all"),
           bid_cap_cpm=bid)
        for index, (bid, account) in enumerate(bids_with_accounts)
    ]


@given(
    st.lists(
        st.tuples(_bid, st.sampled_from(["a", "b", "c"])),
        min_size=0, max_size=8,
    ),
    st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
)
def test_auction_invariants(bids_with_accounts, competing_bid):
    """For any bid set and competition:

    1. if there is a winner, it holds the (joint-)highest bid;
    2. the price never exceeds the winner's own cap;
    3. the price is at least the competing bid;
    4. losing to competition happens iff no bid strictly beats it.
    """
    ads = _ads(bids_with_accounts)
    outcome = run_auction(ads, competing_bid=competing_bid)
    max_bid = max((ad.bid_per_impression for ad in ads), default=None)
    if outcome.winner is not None:
        assert outcome.winner.bid_per_impression == max_bid
        assert outcome.price <= outcome.winner.bid_per_impression + 1e-15
        assert outcome.price >= competing_bid - 1e-15 or \
            outcome.price == outcome.winner.bid_per_impression
    else:
        assert max_bid is None or max_bid <= competing_bid


@given(
    st.lists(
        st.tuples(_bid, st.sampled_from(["a", "b", "c"])),
        min_size=2, max_size=8,
    ),
)
def test_auction_price_is_market_not_self(bids_with_accounts):
    """With zero competition, the winner pays at most the best bid among
    OTHER accounts (never its own sibling ads' bids)."""
    ads = _ads(bids_with_accounts)
    outcome = run_auction(ads, competing_bid=0.0)
    assert outcome.winner is not None
    others = [
        ad.bid_per_impression for ad in ads
        if ad.account_id != outcome.winner.account_id
    ]
    ceiling = max(others, default=0.0)
    assert outcome.price <= ceiling + 1e-15


@settings(max_examples=25, deadline=None)
@given(
    profile_bits=st.lists(
        st.lists(st.integers(0, 7), max_size=8),
        min_size=1, max_size=5,
    ),
)
def test_deliver_iff_match_property(profile_bits):
    """For any assignment of attributes to users, a saturated sweep
    delivers to each user exactly the ads for their set attributes —
    the paper's core premise as an executable property. Also checks
    billing consistency: invoice total == budget delta."""
    platform = AdPlatform(
        config=PlatformConfig(name="prop"),
        catalog=build_us_catalog(40, 25),
        competing_draw=zero_competition(),
    )
    attrs = platform.catalog.partner_attributes()[:8]
    users = []
    for indices in profile_bits:
        user = platform.register_user()
        for index in set(indices):
            user.set_attribute(attrs[index])
        users.append((user, {attrs[i].attr_id for i in set(indices)}))

    account = platform.create_ad_account("adv", budget=100.0)
    campaign = platform.create_campaign(account.account_id, "c")
    initial_budget = account.budget
    for attr in attrs:
        platform.submit_ad(
            account.account_id, campaign.campaign_id,
            AdCreative("h", f"ref {attr.attr_id}"),
            f"attr:{attr.attr_id} & country:US", bid_cap_cpm=10.0,
        )
    platform.run_until_saturated()

    for user, expected in users:
        received = {
            ad.body.removeprefix("ref ")
            for ad in platform.feed(user.user_id)
        }
        assert received == expected

    invoice = platform.invoice(account.account_id)
    assert invoice.total == pytest.approx(initial_budget - account.budget)
    assert invoice.impressions == sum(len(e) for _, e in users)
