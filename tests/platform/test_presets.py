"""Tests for the Facebook/Google/Twitter-alike presets."""

import pytest

from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.platform.presets import (
    all_major_platforms,
    facebook_like,
    google_like,
    twitter_like,
)


class TestPresetShapes:
    def test_facebook_has_partner_categories(self):
        platform = facebook_like()
        assert len(platform.catalog.partner_attributes()) == 507
        assert platform.config.min_custom_audience_size == 20

    def test_google_has_no_partner_categories_and_strict_review(self):
        platform = google_like()
        assert platform.catalog.partner_attributes() == []
        assert platform.config.policy_strictness == "strict"
        assert platform.config.min_custom_audience_size == 100

    def test_twitter_smaller_catalog(self):
        platform = twitter_like()
        assert len(platform.catalog) == 300
        assert platform.catalog.partner_attributes() == []

    def test_all_major_platforms_distinct_names(self):
        platforms = all_major_platforms(seed=5)
        assert len({p.name for p in platforms}) == 3


class TestTreadsSurviveEveryPreset:
    @pytest.mark.parametrize("factory", [facebook_like, google_like,
                                         twitter_like],
                             ids=["facebook", "google", "twitter"])
    def test_codebook_sweep_end_to_end(self, factory, web):
        """The mechanism must work unchanged on all three archetypes
        (the paper: "a similar mechanism could be used on other
        advertising platforms such as Google and Twitter")."""
        platform = factory()
        provider = TransparencyProvider(platform, web, budget=200.0,
                                        bid_cap_cpm=12.0)
        attrs = [a for a in platform.catalog.platform_attributes()
                 if a.is_binary][:4]
        user = platform.register_user()
        for attr in attrs[:2]:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        report = provider.launch_attribute_sweep(attrs)
        assert report.launch_rate == 1.0  # codebook Treads pass even strict
        provider.run_delivery(max_rounds=200)
        profile = TreadClient(user.user_id, platform,
                              provider.publish_decode_pack()).sync()
        assert profile.set_attributes == {a.attr_id for a in attrs[:2]}
        assert profile.control_received

    def test_google_audience_floor_bites_harder(self, web):
        """The 100-member floor blocks pixel-audience sweeps that the
        Facebook-alike would allow at 20 members."""
        from repro.errors import AudienceTooSmallError

        platform = google_like()
        provider = TransparencyProvider(platform, web, budget=50.0)
        for _ in range(30):  # enough for Facebook, not for Google
            user = platform.register_user()
            provider.optin.via_pixel(platform.browser_for(user.user_id))
        attr = [a for a in platform.catalog.platform_attributes()
                if a.is_binary][0]
        with pytest.raises(AudienceTooSmallError):
            provider.launch_attribute_sweep(
                [attr], audience_term=provider.pixel_audience_term()
            )
