"""Tests for the public ad archive."""

import pytest

from repro.core.provider import TransparencyProvider
from repro.platform.ads import AdCreative


@pytest.fixture
def archived(platform, funded_account, campaign):
    user = platform.register_user()
    attr = platform.catalog.partner_attributes()[0]
    user.set_attribute(attr)
    ad = platform.submit_ad(
        funded_account.account_id, campaign.campaign_id,
        AdCreative("Fresh pizza", "Delivered hot, every time."),
        f"attr:{attr.attr_id} & country:US", bid_cap_cpm=10.0,
    )
    platform.run_until_saturated()
    return ad, user


class TestArchiveContents:
    def test_ran_ads_archived(self, platform, archived):
        ad, _ = archived
        entries = platform.public_ad_archive()
        assert any(e.ad_id == ad.ad_id for e in entries)

    def test_rejected_ads_not_archived(self, platform, funded_account,
                                       campaign):
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "Your net worth is over $2M."), "country:US",
        )
        assert ad.status.value == "rejected"
        assert not any(e.ad_id == ad.ad_id
                       for e in platform.public_ad_archive())

    def test_no_targeting_spec_or_identities_leaked(self, platform,
                                                    archived):
        ad, user = archived
        entry = next(e for e in platform.public_ad_archive()
                     if e.ad_id == ad.ad_id)
        blob = str(entry)
        assert user.user_id not in blob
        assert "attr:" not in blob  # targeting spec is not public

    def test_reach_band_is_coarse(self, platform, archived):
        ad, _ = archived
        entry = next(e for e in platform.public_ad_archive()
                     if e.ad_id == ad.ad_id)
        assert entry.reach_band == "below 1000"

    def test_search(self, platform, archived):
        hits = platform.ad_archive.search("pizza")
        assert len(hits) == 1
        assert platform.ad_archive.search("zebra-nonsense") == []
        assert platform.ad_archive.search("  ") == []

    def test_by_advertiser(self, platform, archived, funded_account):
        assert len(platform.ad_archive.by_advertiser(
            funded_account.account_id)) == 1


class TestOutsideObserverSpotsTreads:
    def test_monolithic_sweep_is_conspicuous(self, platform, web):
        """The archive makes a 26-ad single-account sweep publicly
        visible — the external-detection pressure behind section 4's
        crowdsourcing argument."""
        provider = TransparencyProvider(platform, web, budget=100.0)
        provider.launch_partner_sweep()
        footprints = platform.ad_archive.campaign_footprints()
        top_account, top_count = footprints[0]
        assert top_account == provider.account.account_id
        assert top_count == len(platform.catalog.partner_attributes()) + 1

    def test_codebook_treads_search_innocuous(self, platform, web):
        """Even in the public archive, obfuscated Treads read as bland
        'Transparency Project update' posts — the payload stays hidden."""
        provider = TransparencyProvider(platform, web, budget=100.0)
        provider.launch_partner_sweep()
        hits = platform.ad_archive.search("net worth")
        assert hits == []  # no attribute names appear anywhere
