"""Unit tests for ad inventory: accounts, budgets, campaigns, ads."""

import pytest

from repro.errors import AccountError, BudgetError, CampaignError
from repro.platform.ads import (
    Ad,
    AdAccount,
    AdCreative,
    AdImage,
    AdInventory,
    AdStatus,
    Campaign,
    LandingURL,
    PlatformPage,
)
from repro.platform.targeting import parse


def _inventory():
    inventory = AdInventory()
    inventory.add_account(AdAccount(account_id="acct-1", owner_name="np",
                                    budget=10.0))
    inventory.add_campaign(Campaign(campaign_id="camp-1",
                                    account_id="acct-1", name="c"))
    return inventory


def _ad(ad_id="ad-1", account_id="acct-1", campaign_id="camp-1",
        bid=10.0):
    return Ad(
        ad_id=ad_id,
        account_id=account_id,
        campaign_id=campaign_id,
        creative=AdCreative(headline="h", body="b"),
        targeting=parse("all"),
        bid_cap_cpm=bid,
    )


class TestAdImage:
    def test_blank_dimensions(self):
        image = AdImage.blank(8, 4, shade=100)
        assert len(image) == 32
        assert all(p == 100 for p in image.pixels)

    def test_bad_shade_rejected(self):
        with pytest.raises(ValueError):
            AdImage.blank(shade=300)

    def test_copy_is_independent(self):
        image = AdImage.blank(4, 4)
        clone = image.copy()
        clone.pixels[0] = 0
        assert image.pixels[0] != 0


class TestLandingURL:
    def test_str(self):
        assert str(LandingURL("x.org", "/t/123")) == "https://x.org/t/123"


class TestAccountBudget:
    def test_deposit_and_charge(self):
        account = AdAccount(account_id="a", owner_name="o")
        account.deposit(5.0)
        account.charge(2.0)
        assert account.budget == pytest.approx(3.0)

    def test_nonpositive_deposit_rejected(self):
        with pytest.raises(BudgetError):
            AdAccount(account_id="a", owner_name="o").deposit(0.0)

    def test_overdraft_rejected(self):
        account = AdAccount(account_id="a", owner_name="o", budget=1.0)
        with pytest.raises(BudgetError):
            account.charge(2.0)

    def test_negative_charge_rejected(self):
        account = AdAccount(account_id="a", owner_name="o", budget=1.0)
        with pytest.raises(BudgetError):
            account.charge(-0.5)

    def test_can_afford(self):
        account = AdAccount(account_id="a", owner_name="o", budget=0.01)
        assert account.can_afford(0.01)
        assert not account.can_afford(0.02)


class TestAd:
    def test_bid_per_impression(self):
        assert _ad(bid=2.0).bid_per_impression == pytest.approx(0.002)

    def test_require_active(self):
        ad = _ad()
        with pytest.raises(CampaignError):
            ad.require_active()
        ad.status = AdStatus.ACTIVE
        ad.require_active()


class TestInventory:
    def test_account_lifecycle(self):
        inventory = _inventory()
        assert inventory.account("acct-1").owner_name == "np"
        with pytest.raises(AccountError):
            inventory.account("ghost")
        with pytest.raises(AccountError):
            inventory.add_account(AdAccount(account_id="acct-1",
                                            owner_name="dup"))

    def test_campaign_needs_account(self):
        inventory = AdInventory()
        with pytest.raises(AccountError):
            inventory.add_campaign(Campaign(campaign_id="c",
                                            account_id="ghost", name="x"))

    def test_campaign_registered_on_account(self):
        inventory = _inventory()
        assert inventory.account("acct-1").campaign_ids == ["camp-1"]

    def test_ad_lifecycle(self):
        inventory = _inventory()
        inventory.add_ad(_ad())
        assert inventory.ad("ad-1").ad_id == "ad-1"
        assert inventory.campaign("camp-1").ad_ids == ["ad-1"]
        with pytest.raises(CampaignError):
            inventory.add_ad(_ad())  # duplicate

    def test_ad_account_campaign_mismatch(self):
        inventory = _inventory()
        inventory.add_account(AdAccount(account_id="acct-2",
                                        owner_name="other"))
        with pytest.raises(CampaignError):
            inventory.add_ad(_ad(account_id="acct-2"))

    def test_active_ads_filter(self):
        inventory = _inventory()
        ad = inventory.add_ad(_ad())
        assert inventory.active_ads() == []
        ad.status = AdStatus.ACTIVE
        assert inventory.active_ads() == [ad]

    def test_ads_owned_by(self):
        inventory = _inventory()
        inventory.add_ad(_ad("ad-1"))
        inventory.add_ad(_ad("ad-2"))
        assert len(inventory.ads_owned_by("acct-1")) == 2
        assert inventory.ads_owned_by("ghost") == []

    def test_pages(self):
        inventory = _inventory()
        inventory.add_page(PlatformPage(page_id="p1",
                                        owner_account_id="acct-1",
                                        name="Page"))
        assert inventory.page("p1").name == "Page"
        assert inventory.account("acct-1").page_ids == ["p1"]
        with pytest.raises(AccountError):
            inventory.page("ghost")
