"""Unit and property tests for the targeting language."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TargetingError, TargetingSyntaxError
from repro.platform.attributes import AttributeCatalog, make_binary, make_multi
from repro.platform.targeting import (
    AgeBetween,
    All,
    And,
    AttrIs,
    GenderIs,
    HasAttr,
    InAudience,
    InCountry,
    InZip,
    LikesPage,
    Not,
    Or,
    TargetingSpec,
    parse,
)
from repro.platform.users import UserProfile

CATALOG = AttributeCatalog(attributes=[
    make_binary("b1", "Binary one", ("Cat",)),
    make_binary("b2", "Binary two", ("Cat",)),
    make_multi("m1", "Multi one", ("Cat",), values=("x", "y")),
])


def _user(**kw):
    defaults = dict(user_id="u1", country="US", age=30, gender="female",
                    zip_code="02115")
    defaults.update(kw)
    return UserProfile(**defaults)


class TestPredicates:
    def test_all_matches_everyone(self):
        assert All().matches(_user())

    def test_has_attr(self):
        user = _user()
        user.binary_attrs.add("b1")
        assert HasAttr("b1").matches(user)
        assert not HasAttr("b2").matches(user)

    def test_has_attr_counts_multi_assignment(self):
        user = _user()
        user.multi_attrs["m1"] = "x"
        assert HasAttr("m1").matches(user)

    def test_attr_is(self):
        user = _user()
        user.multi_attrs["m1"] = "x"
        assert AttrIs("m1", "x").matches(user)
        assert not AttrIs("m1", "y").matches(user)

    def test_age_between_inclusive(self):
        assert AgeBetween(30, 35).matches(_user(age=30))
        assert AgeBetween(25, 30).matches(_user(age=30))
        assert not AgeBetween(31, 40).matches(_user(age=30))

    def test_age_range_inverted_rejected(self):
        with pytest.raises(TargetingError):
            AgeBetween(40, 20)

    def test_gender_country_zip(self):
        user = _user()
        assert GenderIs("female").matches(user)
        assert InCountry("US").matches(user)
        assert InZip(frozenset({"02115"})).matches(user)
        assert not InZip(frozenset({"10001"})).matches(user)

    def test_likes_page(self):
        user = _user()
        user.liked_pages.add("page-1")
        assert LikesPage("page-1").matches(user)
        assert not LikesPage("page-2").matches(user)

    def test_in_audience_uses_resolver(self):
        member = InAudience("aud-1")
        assert member.matches(_user(), lambda aud, uid: True)
        assert not member.matches(_user(), lambda aud, uid: False)

    def test_in_audience_without_resolver_raises(self):
        with pytest.raises(TargetingError):
            InAudience("aud-1").matches(_user())


class TestCombinators:
    def test_and(self):
        user = _user()
        user.binary_attrs.add("b1")
        assert And((HasAttr("b1"), AgeBetween(18, 65))).matches(user)
        assert not And((HasAttr("b1"), HasAttr("b2"))).matches(user)

    def test_or(self):
        user = _user()
        user.binary_attrs.add("b1")
        assert Or((HasAttr("b2"), HasAttr("b1"))).matches(user)

    def test_not(self):
        assert Not(HasAttr("b1")).matches(_user())

    def test_single_operand_rejected(self):
        with pytest.raises(TargetingError):
            And((HasAttr("b1"),))
        with pytest.raises(TargetingError):
            Or((HasAttr("b1"),))

    def test_operator_overloads(self):
        user = _user()
        user.binary_attrs.add("b1")
        expr = HasAttr("b1") & ~HasAttr("b2")
        assert expr.matches(user)
        expr2 = HasAttr("b2") | HasAttr("b1")
        assert expr2.matches(user)

    def test_paper_example_boolean_expression(self):
        """'Millennials who live in Chicago, are interested in musicals,
        are currently unemployed, and are not in a relationship'."""
        spec = parse(
            "age:25-40 & zip:60601/60602 & attr:b1 & !attr:b2"
        )
        millennial = _user(age=28, zip_code="60601")
        millennial.binary_attrs.add("b1")
        assert spec.matches(millennial)
        taken = _user(age=28, zip_code="60601")
        taken.binary_attrs.update({"b1", "b2"})
        assert not spec.matches(taken)


class TestParser:
    def test_simple_attr(self):
        spec = parse("attr:b1")
        assert isinstance(spec.expr, HasAttr)

    def test_precedence_and_binds_tighter(self):
        spec = parse("attr:b1 | attr:b2 & age:20-30")
        assert isinstance(spec.expr, Or)
        assert isinstance(spec.expr.operands[1], And)

    def test_parentheses(self):
        spec = parse("(attr:b1 | attr:b2) & age:20-30")
        assert isinstance(spec.expr, And)

    def test_not_parsing(self):
        spec = parse("!attr:b1 & page:p1")
        assert isinstance(spec.expr.operands[0], Not)

    def test_value_predicate(self):
        spec = parse("value:m1=x")
        assert spec.expr == AttrIs("m1", "x")

    def test_value_with_spaces(self):
        spec = parse("value:m1=Some college")
        assert spec.expr == AttrIs("m1", "Some college")

    def test_zip_list(self):
        spec = parse("zip:02115/02116")
        assert spec.expr == InZip(frozenset({"02115", "02116"}))

    def test_all(self):
        assert parse("all").expr == All()

    @pytest.mark.parametrize("bad", [
        "", "   ", "attr:b1 &", "& attr:b1", "(attr:b1", "attr:b1)",
        "age:20", "age:x-y", "age:40-20", "value:m1", "frob:x", "zip:",
        "b1",
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(TargetingSyntaxError):
            parse(bad)


class TestIntrospection:
    def test_referenced_attributes_ordered_unique(self):
        spec = parse("attr:b1 & (value:m1=x | attr:b1) & !attr:b2")
        assert spec.referenced_attributes() == ["b1", "m1", "b2"]

    def test_positively_targeted_excludes_negated(self):
        spec = parse("attr:b1 & !attr:b2")
        assert spec.positively_targeted_attributes() == ["b1"]

    def test_double_negation_is_positive(self):
        spec = parse("!(!attr:b1)")
        assert spec.positively_targeted_attributes() == ["b1"]

    def test_referenced_audiences(self):
        spec = parse("audience:a1 & (audience:a2 | audience:a1)")
        assert spec.referenced_audiences() == ["a1", "a2"]

    def test_validate_ok(self):
        parse("attr:b1 & value:m1=y").validate(CATALOG)

    def test_validate_unknown_attr(self):
        with pytest.raises(Exception):
            parse("attr:ghost").validate(CATALOG)

    def test_validate_value_on_binary(self):
        with pytest.raises(TargetingError):
            parse("value:b1=x").validate(CATALOG)

    def test_validate_bad_value(self):
        with pytest.raises(Exception):
            parse("value:m1=zzz").validate(CATALOG)


# ---------------------------------------------------------------------------
# property tests: to_string/parse round-trip
# ---------------------------------------------------------------------------

_leaf = st.one_of(
    st.builds(HasAttr, st.sampled_from(["b1", "b2", "m1"])),
    st.builds(AttrIs, st.just("m1"), st.sampled_from(["x", "y"])),
    st.builds(
        AgeBetween,
        st.integers(13, 40),
        st.integers(41, 90),
    ),
    st.builds(InCountry, st.sampled_from(["US", "DE"])),
    st.builds(GenderIs, st.sampled_from(["male", "female"])),
    st.builds(InAudience, st.sampled_from(["aud-1", "aud-2"])),
    st.builds(LikesPage, st.sampled_from(["page-1"])),
    st.just(All()),
)

_expr = st.recursive(
    _leaf,
    lambda children: st.one_of(
        st.builds(Not, children),
        st.builds(And, st.tuples(children, children)),
        st.builds(Or, st.tuples(children, children, children)),
    ),
    max_leaves=12,
)


@given(_expr)
def test_to_string_parse_round_trip(expr):
    """Serialising any expression and parsing it back is semantics- and
    syntax-preserving (the re-serialisation is a fixed point)."""
    text = expr.to_string()
    reparsed = parse(text)
    assert reparsed.to_string() == parse(reparsed.to_string()).to_string()
    # semantic equivalence on a probe user
    probe = _user(age=30)
    probe.binary_attrs.add("b1")
    probe.multi_attrs["m1"] = "x"
    probe.liked_pages.add("page-1")
    resolver = lambda aud, uid: aud == "aud-1"
    assert expr.matches(probe, resolver) == reparsed.matches(probe, resolver)


@given(st.text(max_size=60))
def test_parser_never_crashes_on_arbitrary_text(text):
    """Fuzz: any input either parses or raises TargetingSyntaxError —
    never an unrelated exception (the platform parses advertiser input)."""
    try:
        spec = parse(text)
    except TargetingSyntaxError:
        return
    # if it parsed, it must serialize and re-parse
    parse(spec.to_string())


@given(_expr)
def test_not_inverts_matches(expr):
    probe = _user(age=25)
    resolver = lambda aud, uid: False
    assert Not(expr).matches(probe, resolver) != expr.matches(probe, resolver)
