"""Property suite: mask-program eligibility == compiled-matcher eligibility.

The batch sweep's correctness rests on one identity: for any targeting
Expr tree and any columnar population, the lowered
:class:`~repro.platform.targeting.MaskProgram` must produce exactly the
boolean vector the per-user compiled matcher produces row by row —
including every missing-vocabulary edge (attributes, pages, zips,
countries, genders the store has never interned read as all-False).
Hypothesis drives random trees against random populations; the explicit
classes below pin the fallback flag (``lower_spec`` returning ``None``)
and its cache hygiene.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TargetingError
from repro.platform import bitset
from repro.platform.colstore import ColumnarUserStore
from repro.platform.targeting import (
    AgeBetween,
    All,
    And,
    AttrIs,
    GenderIs,
    HasAttr,
    InAudience,
    InCountry,
    InZip,
    LikesPage,
    Not,
    Or,
    compile_spec,
    lower_spec,
)

# A small closed world, plus "ghost" values the store never interns —
# the mask program must read those columns as all-False exactly like
# the scalar matcher does.
BINARY_ATTRS = ["attr-a", "attr-b", "attr-c", "attr-ghost"]
MULTI_ATTR = "attr-multi"
MULTI_VALUES = ["v0", "v1", "v-ghost"]
PAGES = ["page-x", "page-y", "page-ghost"]
AUDIENCES = ["aud-1", "aud-2"]
COUNTRIES = ["US", "DE", "XX"]
GENDERS = ["male", "female", "unknown"]
ZIPS = ["02139", "94110", "60601", "99999"]


def leaf_exprs():
    return st.one_of(
        st.just(All()),
        st.sampled_from(BINARY_ATTRS + [MULTI_ATTR]).map(HasAttr),
        st.tuples(st.just(MULTI_ATTR),
                  st.sampled_from(MULTI_VALUES)).map(lambda t: AttrIs(*t)),
        st.tuples(st.integers(10, 60), st.integers(0, 30)).map(
            lambda t: AgeBetween(t[0], t[0] + t[1])),
        st.sampled_from(GENDERS).map(GenderIs),
        st.sampled_from(COUNTRIES).map(InCountry),
        st.lists(st.sampled_from(ZIPS), min_size=1, max_size=3).map(
            lambda z: InZip(frozenset(z))),
        st.sampled_from(AUDIENCES).map(InAudience),
        st.sampled_from(PAGES).map(LikesPage),
    )


def expr_trees():
    return st.recursive(
        leaf_exprs(),
        lambda children: st.one_of(
            children.map(Not),
            st.lists(children, min_size=2, max_size=3).map(
                lambda ops: And(tuple(ops))),
            st.lists(children, min_size=2, max_size=3).map(
                lambda ops: Or(tuple(ops))),
        ),
        max_leaves=8,
    )


user_strategy = st.fixed_dictionaries({
    "country": st.sampled_from(COUNTRIES[:2]),
    "age": st.integers(13, 80),
    "gender": st.sampled_from(GENDERS),
    "zip_code": st.sampled_from(ZIPS[:3]),
    "binary": st.sets(st.sampled_from(BINARY_ATTRS[:3]), max_size=3),
    "multi": st.sampled_from([None, "v0", "v1"]),
    "pages": st.sets(st.sampled_from(PAGES[:2]), max_size=2),
    "audiences": st.sets(st.sampled_from(AUDIENCES), max_size=2),
})


def build_world(users):
    """A columnar store + audience row sets from drawn user dicts."""
    store = ColumnarUserStore()
    members = {audience_id: set() for audience_id in AUDIENCES}
    for row, spec in enumerate(users):
        view = store.new_user(
            f"u-{row:05d}", country=spec["country"], age=spec["age"],
            gender=spec["gender"], zip_code=spec["zip_code"])
        for attr_id in sorted(spec["binary"]):
            store.columns.set_attr(row, attr_id)
        if spec["multi"] is not None:
            store.columns.set_multi(row, MULTI_ATTR, spec["multi"])
        for page_id in sorted(spec["pages"]):
            store.columns.like(row, page_id)
        for audience_id in spec["audiences"]:
            members[audience_id].add(row)
        assert view.row == row
    bitsets = {
        audience_id: bitset.from_indices(sorted(rows), len(store))
        for audience_id, rows in members.items()
    }
    return store, members, bitsets


class TestMaskMatcherEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(expr=expr_trees(),
           users=st.lists(user_strategy, min_size=1, max_size=96))
    def test_mask_equals_matcher_everywhere(self, expr, users):
        store, members, bitsets = build_world(users)
        n = len(store)
        program = lower_spec(expr)
        assert program is not None, (
            f"base-library tree unexpectedly unlowerable: "
            f"{expr.to_string()}")
        matcher = compile_spec(expr)

        def row_resolver(audience_id, user_id):
            return store.row_of(user_id) in members[audience_id]

        expected = np.array(
            [bool(matcher.fn(view, row_resolver)) for view in store],
            dtype=bool)
        got = program.evaluate(store.columns, 0, n,
                               resolver=bitsets.__getitem__)
        assert np.array_equal(got, expected)

    @settings(max_examples=40, deadline=None)
    @given(expr=expr_trees(),
           users=st.lists(user_strategy, min_size=65, max_size=160))
    def test_split_ranges_agree_with_full_range(self, expr, users):
        """Evaluating 64-aligned sub-ranges concatenates to the full
        evaluation — the block decomposition the sweep engine uses."""
        store, _members, bitsets = build_world(users)
        n = len(store)
        program = lower_spec(expr)
        assert program is not None
        resolver = bitsets.__getitem__
        full = program.evaluate(store.columns, 0, n, resolver=resolver)
        head = program.evaluate(store.columns, 0, 64, resolver=resolver)
        tail = program.evaluate(store.columns, 64, n, resolver=resolver)
        assert np.array_equal(np.concatenate([head, tail]), full)


class OpaquePredicate(HasAttr):
    """An Expr subclass whose runtime semantics the lowerer can't see."""

    def matches(self, user, resolver):  # pragma: no cover - never run
        return not super().matches(user, resolver)


class TestFallbackRouting:
    def test_subclassed_node_is_not_lowered(self):
        assert lower_spec(OpaquePredicate("attr-a")) is None
        assert lower_spec(
            And((HasAttr("attr-b"), OpaquePredicate("attr-a")))) is None
        assert lower_spec(
            Not(Or((All(), OpaquePredicate("attr-a"))))) is None

    def test_fallback_cache_does_not_alias_base_class(self):
        """Subclass and base share to_string(); the cache must not let
        either verdict shadow the other."""
        assert lower_spec(OpaquePredicate("attr-z")) is None
        base = lower_spec(HasAttr("attr-z"))
        assert base is not None
        # And the other way round: the lowered base program must not be
        # served for the opaque subclass.
        assert lower_spec(OpaquePredicate("attr-z")) is None
        # Repeated lookups are stable (both verdicts are cached).
        assert lower_spec(HasAttr("attr-z")) is base

    def test_audience_program_requires_resolver(self):
        program = lower_spec(InAudience("aud-1"))
        assert program is not None
        store, _members, _bitsets = build_world([{
            "country": "US", "age": 30, "gender": "unknown",
            "zip_code": "02139", "binary": set(), "multi": None,
            "pages": set(), "audiences": set(),
        }])
        with pytest.raises(TargetingError, match="resolver"):
            program.evaluate(store.columns, 0, 1)

    def test_unaligned_start_rejected(self):
        program = lower_spec(InAudience("aud-1"))
        assert program is not None
        store, _members, bitsets = build_world([{
            "country": "US", "age": 30, "gender": "unknown",
            "zip_code": "02139", "binary": set(), "multi": None,
            "pages": set(), "audiences": {"aud-1"},
        }] * 9)
        with pytest.raises(ValueError, match="aligned"):
            program.evaluate(store.columns, 3, 9,
                             resolver=bitsets.__getitem__)
