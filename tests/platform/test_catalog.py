"""Tests for the generated US attribute catalog (paper counts)."""

import pytest

from repro.platform.catalog import (
    BROKERS,
    US_PARTNER_ATTRIBUTE_COUNT,
    US_PLATFORM_ATTRIBUTE_COUNT,
    build_country_catalogs,
    build_partner_attributes,
    build_platform_attributes,
    build_us_catalog,
)
from repro.platform.attributes import AttributeKind, AttributeSource


class TestPaperCounts:
    """Section 2.1: 614 platform + 507 partner attributes for the US."""

    def test_platform_count(self):
        catalog = build_us_catalog()
        assert len(catalog.platform_attributes()) == 614

    def test_partner_count(self):
        catalog = build_us_catalog()
        assert len(catalog.partner_attributes()) == 507

    def test_total(self):
        assert len(build_us_catalog()) == 614 + 507

    def test_constants_match(self):
        assert US_PLATFORM_ATTRIBUTE_COUNT == 614
        assert US_PARTNER_ATTRIBUTE_COUNT == 507


class TestPartnerAttributes:
    def test_all_binary(self):
        # the validation runs "each of the 507 binary partner attributes"
        assert all(
            a.kind is AttributeKind.BINARY
            for a in build_partner_attributes()
        )

    def test_all_have_brokers(self):
        attrs = build_partner_attributes()
        assert all(a.broker in BROKERS for a in attrs)

    def test_validation_families_present(self):
        """The categories the paper's author was revealed must exist."""
        catalog = build_us_catalog()
        for keyword in ("net worth", "restaurants", "apparel", "job role",
                        "home type", "likely to purchase"):
            hits = catalog.search(keyword)
            partner_hits = [a for a in hits if a.is_partner]
            assert partner_hits, f"no partner attribute for {keyword!r}"

    def test_net_worth_over_2m_exists(self):
        """Figure 1 targets 'net worth of over $2M'."""
        catalog = build_us_catalog()
        hits = [a for a in catalog.search("net worth")
                if "Over $2M" in a.name]
        assert len(hits) == 1

    def test_ids_stable_across_builds(self):
        first = [a.attr_id for a in build_partner_attributes()]
        second = [a.attr_id for a in build_partner_attributes()]
        assert first == second

    def test_ids_unique(self):
        ids = [a.attr_id for a in build_partner_attributes()]
        assert len(ids) == len(set(ids))

    def test_reduced_count(self):
        assert len(build_partner_attributes(200)) == 200

    def test_small_count_truncates_family_order(self):
        """Small test catalogs keep the head families (net worth first)."""
        attrs = build_partner_attributes(10)
        assert len(attrs) == 10
        assert attrs[0].attr_id.startswith("pc-networth")


class TestPlatformAttributes:
    def test_contains_multi_valued(self):
        attrs = build_platform_attributes()
        multi = [a for a in attrs if a.kind is AttributeKind.MULTI]
        assert {a.attr_id for a in multi} >= {
            "pf-education-level", "pf-relationship-status", "pf-life-stage",
        }

    def test_interest_salsa_present(self):
        """Paper's running example: 'interested in Salsa dancing'."""
        catalog = build_us_catalog()
        assert any("Salsa" in a.name for a in catalog.search("salsa"))

    def test_all_platform_sourced(self):
        assert all(
            a.source is AttributeSource.PLATFORM
            for a in build_platform_attributes()
        )

    def test_ids_unique(self):
        ids = [a.attr_id for a in build_platform_attributes()]
        assert len(ids) == len(set(ids))


class TestCountryCatalogs:
    def test_per_country_partner_counts(self):
        catalog = build_country_catalogs(
            countries=("US", "DE"), partner_counts=(507, 120)
        )
        assert len(catalog.partner_attributes("US")) == 507
        assert len(catalog.partner_attributes("DE")) == 120

    def test_platform_attrs_shared(self):
        catalog = build_country_catalogs(
            countries=("US", "DE"), partner_counts=(507, 120)
        )
        assert len(catalog.platform_attributes("US")) == 614
        assert len(catalog.platform_attributes("DE")) == 614

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            build_country_catalogs(countries=("US",), partner_counts=(1, 2))
