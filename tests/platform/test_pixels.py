"""Unit tests for tracking pixels and the pixel registry."""

import pytest

from repro.errors import AudienceError
from repro.platform.pixels import PixelRegistry
from repro.platform.web import Browser, Website


def _visit(pixels, user_id="u1", path="/optin"):
    site = Website(domain="prov.org", owner="prov")
    site.add_page(path, pixel_ids=pixels)
    return Browser(user_id=user_id).visit(site, path)


class TestIssue:
    def test_issue_and_get(self):
        registry = PixelRegistry()
        pixel = registry.issue("px-1", "acct-1", label="optin")
        assert registry.get("px-1") is pixel

    def test_duplicate_rejected(self):
        registry = PixelRegistry()
        registry.issue("px-1", "acct-1")
        with pytest.raises(AudienceError):
            registry.issue("px-1", "acct-2")

    def test_unknown_get_raises(self):
        with pytest.raises(AudienceError):
            PixelRegistry().get("ghost")

    def test_pixels_owned_by(self):
        registry = PixelRegistry()
        registry.issue("px-1", "acct-1")
        registry.issue("px-2", "acct-1")
        registry.issue("px-3", "acct-2")
        assert len(registry.pixels_owned_by("acct-1")) == 2


class TestRecordVisit:
    def test_fires_own_pixels(self):
        registry = PixelRegistry()
        registry.issue("px-1", "acct-1")
        fired = registry.record_visit(_visit(["px-1"]))
        assert len(fired) == 1
        assert fired[0].user_id == "u1"

    def test_ignores_foreign_pixels(self):
        """A page carrying several platforms' pixels: each platform only
        records its own (the multi-platform opt-in page)."""
        registry = PixelRegistry()
        registry.issue("px-1", "acct-1")
        fired = registry.record_visit(_visit(["px-1", "other-platform-px"]))
        assert [e.pixel_id for e in fired] == ["px-1"]

    def test_visitors_deduplicated(self):
        registry = PixelRegistry()
        registry.issue("px-1", "acct-1")
        registry.record_visit(_visit(["px-1"], user_id="u1"))
        registry.record_visit(_visit(["px-1"], user_id="u1"))
        registry.record_visit(_visit(["px-1"], user_id="u2"))
        assert registry.visitors("px-1") == {"u1", "u2"}

    def test_events_are_copies(self):
        registry = PixelRegistry()
        registry.issue("px-1", "acct-1")
        registry.record_visit(_visit(["px-1"]))
        events = registry.events("px-1")
        events.clear()
        assert len(registry.events("px-1")) == 1

    def test_events_for_unknown_pixel_raise(self):
        with pytest.raises(AudienceError):
            PixelRegistry().events("ghost")
