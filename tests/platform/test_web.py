"""Unit tests for websites, browsers, cookies, and the web directory."""

import pytest

from repro.platform.web import Browser, WebDirectory, Website


def _site():
    site = Website(domain="prov.example.org", owner="prov")
    site.add_page("/optin", content="opt in", pixel_ids=["px-1"])
    return site


class TestWebsite:
    def test_add_and_get_page(self):
        site = _site()
        assert site.get_page("/optin").content == "opt in"

    def test_unknown_page_raises(self):
        with pytest.raises(KeyError):
            _site().get_page("/missing")

    def test_page_replacement(self):
        site = _site()
        site.add_page("/optin", content="new")
        assert site.get_page("/optin").content == "new"
        assert site.get_page("/optin").pixel_ids == []


class TestBrowserCookies:
    def test_cookie_stable_per_domain(self):
        browser = Browser(user_id="u1")
        first = browser.cookie_for("a.com")
        assert browser.cookie_for("a.com") == first

    def test_cookies_differ_across_domains(self):
        browser = Browser(user_id="u1")
        assert browser.cookie_for("a.com") != browser.cookie_for("b.com")

    def test_cookies_differ_across_browsers(self):
        assert Browser("u1").cookie_for("a.com") != \
            Browser("u2").cookie_for("a.com")

    def test_clear_cookies_mints_fresh(self):
        """The paper's landing-page mitigation: clearing cookies makes the
        next visit unlinkable to earlier ones."""
        browser = Browser(user_id="u1")
        before = browser.cookie_for("a.com")
        browser.clear_cookies()
        assert browser.cookie_for("a.com") != before

    def test_disable_cookies(self):
        browser = Browser(user_id="u1")
        browser.disable_cookies()
        assert browser.cookie_for("a.com") is None

    def test_enable_after_disable(self):
        browser = Browser(user_id="u1")
        browser.disable_cookies()
        browser.enable_cookies()
        assert browser.cookie_for("a.com") is not None


class TestVisits:
    def test_visit_returns_pixels(self):
        browser = Browser(user_id="u1")
        visit = browser.visit(_site(), "/optin")
        assert visit.pixel_ids == ["px-1"]
        assert visit.user_id == "u1"

    def test_first_party_log_sees_cookie_not_user(self):
        """Site owners never learn platform identities — only cookies."""
        site = _site()
        browser = Browser(user_id="u1")
        browser.visit(site, "/optin")
        entry = site.access_log[0]
        assert entry.cookie_id == browser.cookie_for(site.domain)
        assert not hasattr(entry, "user_id")

    def test_cookieless_visit_logged_as_none(self):
        site = _site()
        browser = Browser(user_id="u1")
        browser.disable_cookies()
        browser.visit(site, "/optin")
        assert site.access_log[0].cookie_id is None

    def test_visit_seq_monotonic(self):
        site = _site()
        browser = Browser(user_id="u1")
        a = browser.visit(site, "/optin")
        b = browser.visit(site, "/optin")
        assert b.visit_seq > a.visit_seq


class TestWebDirectory:
    def test_create_and_resolve(self):
        web = WebDirectory()
        site = web.create_site("x.org", owner="x")
        assert web.resolve("x.org") is site
        assert "x.org" in web

    def test_duplicate_domain_rejected(self):
        web = WebDirectory()
        web.create_site("x.org", owner="x")
        with pytest.raises(KeyError):
            web.create_site("x.org", owner="y")

    def test_unknown_domain_raises(self):
        with pytest.raises(KeyError):
            WebDirectory().resolve("ghost.org")
