"""Unit tests for the columnar user store (colstore).

The equivalence suites (``test_colstore_equivalence``, the integration
sweep) pin the store against the legacy object path; these tests pin
the columnar-only machinery — dense-id prediction, matrix widening,
packed-block serialization, and the flyweight views.
"""

import json

import pytest

from repro.errors import CatalogError, PIIError
from repro.platform import bitset
from repro.platform.attributes import make_binary, make_multi
from repro.platform.colstore import ColumnarUserStore, UserColumns, UserView
from repro.hashing import hash_pii
from repro.platform.users import UserProfile

BIN = make_binary("b1", "Binary", ("Cat",))
BIN2 = make_binary("b2", "Binary 2", ("Cat",))
MULTI = make_multi("m1", "Multi", ("Cat",), values=("x", "y"))


class TestDenseIds:
    def test_dense_ids_predicted_not_stored(self):
        store = ColumnarUserStore()
        for index in range(5):
            store.new_user(f"fb-user-{index:06d}")
        assert store.stats()["dense_ids"] is True
        assert store.row_of("fb-user-000003") == 3
        assert store.id_of(4) == "fb-user-000004"
        assert store.row_of("fb-user-000099") is None

    def test_zero_pad_respected(self):
        store = ColumnarUserStore()
        store.new_user("u-001")
        # "u-01" is not the canonical spelling of row 1's id.
        assert store.row_of("u-01") is None

    def test_fallback_on_non_dense_id(self):
        store = ColumnarUserStore()
        store.new_user("u-000")
        store.new_user("u-001")
        store.new_user("alice")  # breaks the arithmetic sequence
        assert store.stats()["dense_ids"] is False
        assert store.row_of("u-001") == 1
        assert store.row_of("alice") == 2
        assert [v.user_id for v in store] == ["u-000", "u-001", "alice"]

    def test_duplicate_and_unknown_errors_match_legacy(self):
        store = ColumnarUserStore()
        store.new_user("u1")
        with pytest.raises(CatalogError, match="duplicate user id 'u1'"):
            store.new_user("u1")
        with pytest.raises(CatalogError, match="unknown user id 'nope'"):
            store.get("nope")


class TestMatrixWidening:
    def test_attr_matrix_widens_past_64_codes(self):
        """Regression: interning attr #65 replaces the matrix, and the
        write must land in the widened row, not a stale narrow view."""
        store = UserColumns()
        row = store.append_row("US", 30, "female", "10001")
        for index in range(130):
            store.set_attr(row, f"a{index:03d}")
        assert store.attr_count_of(row) == 130
        assert store.has_attr(row, "a129")
        assert [int(c) for c in store.attr_codes_of(row)] == list(range(130))

    def test_page_matrix_widens_past_64_codes(self):
        store = UserColumns()
        row = store.append_row("US", 30, "female", "10001")
        for index in range(70):
            store.like(row, f"p{index}")
        assert store.has_page(row, "p69")
        assert len(store.page_ids_of(row)) == 70

    def test_row_growth_preserves_data(self):
        store = ColumnarUserStore()
        first = store.new_user("u-0000")
        first.set_attribute(BIN)
        for index in range(1, 3000):  # force several capacity doublings
            store.new_user(f"u-{index:04d}")
        assert store.get("u-0000").has_attribute("b1")
        assert len(store) == 3000


class TestUserViewFacade:
    def test_set_and_clear_attribute(self):
        store = ColumnarUserStore()
        view = store.new_user("u1")
        view.set_attribute(BIN)
        view.set_attribute(MULTI, "x")
        assert view.has_attribute("b1")
        assert view.attribute_value("m1") == "x"
        assert sorted(view.attribute_ids()) == ["b1", "m1"]
        view.clear_attribute("b1")
        view.clear_attribute("m1")
        assert not view.has_attribute("b1")
        assert view.attribute_value("m1") is None

    def test_legacy_error_messages(self):
        store = ColumnarUserStore()
        view = store.new_user("u1")
        with pytest.raises(CatalogError,
                           match="binary attribute 'b1' takes no value"):
            view.set_attribute(BIN, "x")
        with pytest.raises(CatalogError,
                           match="multi attribute 'm1' needs a value"):
            view.set_attribute(MULTI)
        with pytest.raises(CatalogError):
            view.set_attribute(MULTI, "not-a-value")

    def test_views_behave_like_collections(self):
        store = ColumnarUserStore()
        view = store.new_user("u1")
        view.binary_attrs.add("b1")
        view.binary_attrs.add("b2")
        assert "b1" in view.binary_attrs
        assert set(view.binary_attrs) == {"b1", "b2"}
        assert view.binary_attrs & {"b1", "zz"} == {"b1"}
        assert view.binary_attrs - {"b1"} == {"b2"}
        view.liked_pages.add("p1")
        assert len(view.liked_pages) == 1
        view.multi_attrs["m1"] = "x"
        assert view.multi_attrs.get("m1") == "x"
        assert view.multi_attrs.items() == [("m1", "x")]
        assert view.multi_attrs.pop("m1") == "x"
        assert len(view.multi_attrs) == 0

    def test_view_identity(self):
        store = ColumnarUserStore()
        store.new_user("u1")
        assert store.get("u1") == store.get("u1")
        assert len({store.get("u1"), store.get("u1")}) == 1


class TestPII:
    def test_add_rejects_unindexed_pii_kind_up_front(self):
        store = ColumnarUserStore()
        profile = UserProfile(user_id="u1")
        # add_pii itself rejects unknown kinds, so smuggle the hash in
        # the way a hand-built or deserialized profile could.
        profile.pii_hashes["ssn"] = {"deadbeef"}
        with pytest.raises(PIIError,
                           match="carries unindexed PII kind 'ssn'"):
            store.add(profile)
        # Rejected up front: nothing was ingested.
        assert "u1" not in store

    def test_add_indexes_preexisting_pii(self):
        store = ColumnarUserStore()
        profile = UserProfile(user_id="u1")
        profile.add_pii("email", "a@x.com")
        store.add(profile)
        digest = hash_pii("email", "a@x.com")
        assert store.users_matching_pii("email", digest) == {"u1"}

    def test_view_add_pii_hash_is_row_local(self):
        """Legacy quirk preserved: writing through the profile view does
        not index — only store.add / attach_pii do."""
        store = ColumnarUserStore()
        view = store.new_user("u1")
        digest = hash_pii("email", "a@x.com")
        view.add_pii_hash("email", digest)
        assert view.has_pii_hash("email", digest)
        assert store.users_matching_pii("email", digest) == set()
        store.attach_pii("u1", "email", "a@x.com")
        assert store.users_matching_pii("email", digest) == {"u1"}


class TestColumnarQueries:
    def _populated(self):
        store = ColumnarUserStore()
        for index in range(10):
            view = store.new_user(f"u-{index:02d}")
            if index % 2 == 0:
                view.set_attribute(BIN)
            if index % 3 == 0:
                store.like_page(view.user_id, "p1")
        return store

    def test_users_with_attribute(self):
        store = self._populated()
        ids = [v.user_id for v in store.users_with_attribute("b1")]
        assert ids == [f"u-{i:02d}" for i in range(0, 10, 2)]
        assert store.users_with_attribute("unknown") == []

    def test_attribute_and_page_bitsets(self):
        store = self._populated()
        rows = list(bitset.to_indices(store.attribute_bitset("b1")))
        assert rows == [0, 2, 4, 6, 8]
        assert store.rows_to_ids(store.page_bitset("p1")) == {
            "u-00", "u-03", "u-06", "u-09"}

    def test_multi_column_counts_as_attribute(self):
        store = ColumnarUserStore()
        view = store.new_user("u-0")
        view.set_attribute(MULTI, "y")
        assert store.rows_to_ids(store.attribute_bitset("m1")) == {"u-0"}

    def test_mutation_epoch_bumps(self):
        store = ColumnarUserStore()
        view = store.new_user("u1")
        before = store.mutation_epoch
        view.set_attribute(BIN)
        assert store.mutation_epoch > before

    def test_stats_shape(self):
        store = self._populated()
        stats = store.stats()
        assert stats["rows"] == 10
        assert stats["binary_attr_vocab"] == 1
        assert stats["page_vocab"] == 1
        assert stats["column_bytes"] > 0
        assert 0.0 < stats["attr_bitset_density"] <= 1.0


class TestStateRoundTrip:
    def test_json_round_trip(self):
        store = ColumnarUserStore()
        for index in range(80):
            view = store.new_user(f"u-{index:03d}", age=20 + index % 40,
                                  gender="female" if index % 2 else "male",
                                  zip_code=f"{10001 + index % 5:05d}")
            if index % 2:
                view.set_attribute(BIN)
            view.set_attribute(MULTI, "x" if index % 3 else "y")
            if index % 4 == 0:
                store.like_page(view.user_id, f"p{index % 7}")
        store.attach_pii("u-000", "email", "a@x.com")
        payload = json.loads(json.dumps(store.state_dump()))

        other = ColumnarUserStore()
        other.state_load(payload)
        assert len(other) == len(store)
        for view in store:
            twin = other.get(view.user_id)
            assert sorted(twin.attribute_ids()) == sorted(view.attribute_ids())
            assert twin.attribute_value("m1") == view.attribute_value("m1")
            assert set(twin.liked_pages) == set(view.liked_pages)
            assert twin.age == view.age
            assert twin.gender == view.gender
            assert twin.zip_code == view.zip_code
        digest = hash_pii("email", "a@x.com")
        assert other.users_matching_pii("email", digest) == {"u-000"}

    def test_restored_store_stays_writable(self):
        store = ColumnarUserStore()
        store.new_user("u-000").set_attribute(BIN)
        other = ColumnarUserStore()
        other.state_load(json.loads(json.dumps(store.state_dump())))
        other.new_user("u-001").set_attribute(BIN2)
        assert other.get("u-001").has_attribute("b2")
        assert len(other) == 2
