"""Tests for click recording and CTR reporting."""

import pytest

from repro.platform.ads import AdCreative, LandingURL


@pytest.fixture
def delivered(platform, funded_account, campaign):
    user = platform.register_user()
    attr = platform.catalog.partner_attributes()[0]
    user.set_attribute(attr)
    ad = platform.submit_ad(
        funded_account.account_id, campaign.campaign_id,
        AdCreative("h", "b", landing_url=LandingURL("shop.example", "/p")),
        f"attr:{attr.attr_id} & country:US", bid_cap_cpm=10.0,
    )
    platform.run_until_saturated()
    return user, ad


class TestClickAd:
    def test_click_returns_landing_url(self, platform, delivered):
        user, ad = delivered
        url = platform.click_ad(user.user_id, ad.ad_id)
        assert url == "https://shop.example/p"

    def test_click_without_landing_url(self, platform, funded_account,
                                       campaign):
        user = platform.register_user()
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "b"), "country:US", bid_cap_cpm=10.0,
        )
        platform.run_until_saturated()
        assert platform.click_ad(user.user_id, ad.ad_id) is None

    def test_click_on_unreceived_ad_rejected(self, platform, delivered):
        _, ad = delivered
        stranger = platform.register_user()
        with pytest.raises(ValueError):
            platform.click_ad(stranger.user_id, ad.ad_id)


class TestCTRReporting:
    def test_clicks_in_report(self, platform, funded_account, delivered):
        user, ad = delivered
        platform.click_ad(user.user_id, ad.ad_id)
        report = platform.report(funded_account.account_id, ad.ad_id)
        assert report.clicks == 1
        assert report.ctr == pytest.approx(1.0)

    def test_zero_clicks_zero_ctr(self, platform, funded_account,
                                  delivered):
        _, ad = delivered
        report = platform.report(funded_account.account_id, ad.ad_id)
        assert report.clicks == 0
        assert report.ctr == 0.0

    def test_repeat_clicks_counted(self, platform, funded_account,
                                   delivered):
        user, ad = delivered
        platform.click_ad(user.user_id, ad.ad_id)
        platform.click_ad(user.user_id, ad.ad_id)
        report = platform.report(funded_account.account_id, ad.ad_id)
        assert report.clicks == 2

    def test_report_still_identity_free(self, platform, funded_account,
                                        delivered):
        user, ad = delivered
        platform.click_ad(user.user_id, ad.ad_id)
        report = platform.report(funded_account.account_id, ad.ad_id)
        assert user.user_id not in str(report)
