"""Randomized compiled-vs-interpreted equivalence for targeting specs.

The delivery fast path evaluates :class:`CompiledSpec` matchers instead of
interpreting the ``Expr`` tree, so the *entire* deliver-iff-match contract
now rests on the equivalence ``compiled(user) == expr.matches(user)``.
This suite generates ~200 random specs (round-tripped through the compact
syntax parser, exactly as ads submit them), evaluates both forms on random
user profiles — including audience predicates and NOT/exclusion trees —
and requires bit-for-bit agreement. It also checks the soundness of the
anchor analysis the inverted candidate index is built on.
"""

import random

import pytest

from repro.platform.targeting import (
    AgeBetween,
    All,
    And,
    AttrIs,
    CompiledSpec,
    GenderIs,
    HasAttr,
    InAudience,
    InCountry,
    InZip,
    LikesPage,
    Not,
    Or,
    TargetingSpec,
    compile_spec,
    parse,
)
from repro.platform.users import UserProfile

BINARY_ATTRS = [f"pc-test-{i:03d}" for i in range(8)]
MULTI_ATTRS = {f"pf-multi-{i}": [f"val{j}" for j in range(4)] for i in range(3)}
AUDIENCES = [f"aud-{i}" for i in range(4)]
PAGES = [f"page-{i}" for i in range(4)]
COUNTRIES = ["US", "DE", "BR"]
GENDERS = ["male", "female", "unknown"]
ZIPS = ["02115", "94107", "60601", "10001"]


def _resolver(audience_id: str, user_id: str) -> bool:
    """Deterministic fake audience membership (stable across processes)."""
    return (sum(map(ord, audience_id)) + sum(map(ord, user_id))) % 3 == 0


def _random_atom(rng: random.Random):
    kind = rng.randrange(9)
    if kind == 0:
        return HasAttr(rng.choice(BINARY_ATTRS))
    if kind == 1:
        attr_id = rng.choice(list(MULTI_ATTRS))
        return AttrIs(attr_id, rng.choice(MULTI_ATTRS[attr_id]))
    if kind == 2:
        low = rng.randint(13, 60)
        return AgeBetween(low, rng.randint(low, 70))
    if kind == 3:
        return GenderIs(rng.choice(GENDERS))
    if kind == 4:
        return InCountry(rng.choice(COUNTRIES))
    if kind == 5:
        return InZip(frozenset(rng.sample(ZIPS, rng.randint(1, 3))))
    if kind == 6:
        return InAudience(rng.choice(AUDIENCES))
    if kind == 7:
        return LikesPage(rng.choice(PAGES))
    return All()


def _random_expr(rng: random.Random, depth: int):
    if depth <= 0 or rng.random() < 0.35:
        atom = _random_atom(rng)
        # Exercise NOT at the leaves too — the paper's exclusion Treads.
        if rng.random() < 0.25:
            return Not(atom)
        return atom
    roll = rng.random()
    if roll < 0.15:
        return Not(_random_expr(rng, depth - 1))
    operands = tuple(
        _random_expr(rng, depth - 1) for _ in range(rng.randint(2, 3))
    )
    return And(operands) if roll < 0.60 else Or(operands)


def _random_profile(rng: random.Random, i: int) -> UserProfile:
    profile = UserProfile(
        user_id=f"user-{i}",
        country=rng.choice(COUNTRIES),
        age=rng.randint(13, 70),
        gender=rng.choice(GENDERS),
        zip_code=rng.choice(ZIPS),
    )
    profile.binary_attrs = set(
        rng.sample(BINARY_ATTRS, rng.randint(0, len(BINARY_ATTRS)))
    )
    profile.multi_attrs = {
        attr_id: rng.choice(values)
        for attr_id, values in MULTI_ATTRS.items()
        if rng.random() < 0.5
    }
    profile.liked_pages = set(rng.sample(PAGES, rng.randint(0, len(PAGES))))
    return profile


@pytest.fixture(scope="module")
def profiles():
    rng = random.Random(99)
    return [_random_profile(rng, i) for i in range(25)]


class TestCompiledEquivalence:
    def test_randomized_specs_agree_with_interpreter(self, profiles):
        rng = random.Random(7)
        for case in range(200):
            spec = TargetingSpec(expr=_random_expr(rng, depth=3))
            # Round-trip through the parser: the compiled form must match
            # what an ad submitted as text would evaluate.
            reparsed = parse(spec.to_string())
            assert reparsed.to_string() == spec.to_string()
            compiled = compile_spec(reparsed)
            for profile in profiles:
                interpreted = reparsed.matches(profile, _resolver)
                assert compiled.matches(profile, _resolver) == interpreted, (
                    f"case {case}: compiled disagrees with interpreter on "
                    f"{spec.to_string()} for {profile.user_id}"
                )

    def test_required_anchors_are_sound(self, profiles):
        """Whenever the compiled spec matches, the user provably carries
        every required attribute/page and belongs to every required
        audience — the property the delivery candidate index relies on
        to skip ads."""
        rng = random.Random(21)
        for _ in range(200):
            spec = TargetingSpec(expr=_random_expr(rng, depth=3))
            compiled = compile_spec(spec)
            for profile in profiles:
                if not compiled.matches(profile, _resolver):
                    continue
                for attr_id in compiled.required_attributes:
                    assert profile.has_attribute(attr_id)
                for page_id in compiled.required_pages:
                    assert page_id in profile.liked_pages
                for audience_id in compiled.required_audiences:
                    assert _resolver(audience_id, profile.user_id)


class TestCompilerMechanics:
    def test_cache_returns_same_object_for_same_spec(self):
        a = compile_spec("attr:pc-test-000 & country:US")
        b = compile_spec(parse("attr:pc-test-000 & country:US"))
        assert a is b
        assert isinstance(a, CompiledSpec)

    def test_spec_compiled_convenience(self):
        spec = parse("page:page-1 | audience:aud-2")
        assert spec.compiled() is compile_spec(spec)

    def test_anchor_extraction_examples(self):
        sweep = compile_spec("attr:pc-test-001 & page:page-0")
        assert sweep.required_attributes == frozenset({"pc-test-001"})
        assert sweep.required_pages == frozenset({"page-0"})

        exclusion = compile_spec("!attr:pc-test-001 & page:page-0")
        assert exclusion.required_attributes == frozenset()
        assert exclusion.required_pages == frozenset({"page-0"})

        either = compile_spec(
            "(attr:pc-test-001 & page:page-0) | (attr:pc-test-001 & age:18-24)"
        )
        assert either.required_attributes == frozenset({"pc-test-001"})
        assert either.required_pages == frozenset()

    def test_audience_predicate_uses_resolver(self):
        compiled = compile_spec("audience:aud-0")
        calls = []

        def resolver(audience_id, user_id):
            calls.append((audience_id, user_id))
            return True

        user = UserProfile(user_id="u-1")
        assert compiled.matches(user, resolver)
        assert calls == [("aud-0", "u-1")]
