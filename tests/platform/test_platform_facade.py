"""Tests for the AdPlatform facade: submission checks, wiring, brokers."""

import pytest

from repro.errors import (
    AccountError,
    AudienceTooSmallError,
    CatalogError,
    TargetingError,
)
from repro.platform.ads import AdCreative, AdStatus
from repro.platform.pii import record_from_raw


class TestSubmission:
    def test_clean_ad_activated(self, platform, funded_account, campaign):
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "neutral"), "country:US",
        )
        assert ad.status is AdStatus.ACTIVE

    def test_policy_violation_rejected_with_note(self, platform,
                                                 funded_account, campaign):
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "Your net worth is over $2M."), "country:US",
        )
        assert ad.status is AdStatus.REJECTED
        assert ad.review_note

    def test_default_bid_is_platform_default(self, platform, funded_account,
                                             campaign):
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "neutral"), "country:US",
        )
        assert ad.bid_cap_cpm == platform.config.default_cpm

    def test_unknown_attribute_rejected(self, platform, funded_account,
                                        campaign):
        with pytest.raises(CatalogError):
            platform.submit_ad(
                funded_account.account_id, campaign.campaign_id,
                AdCreative("h", "b"), "attr:ghost",
            )

    def test_foreign_country_attribute_rejected(self, platform,
                                                campaign, funded_account):
        # make one attribute Germany-only
        from repro.platform.attributes import make_binary
        platform.catalog.add(make_binary(
            "de-only", "DE only", ("Cat",), countries=("DE",)
        ))
        with pytest.raises(TargetingError):
            platform.submit_ad(
                funded_account.account_id, campaign.campaign_id,
                AdCreative("h", "b"), "attr:de-only",
            )

    def test_foreign_audience_rejected(self, platform, funded_account,
                                       campaign):
        other = platform.create_ad_account("other", budget=1.0)
        page = platform.create_page(other.account_id, "P")
        audience = platform.create_page_audience(other.account_id,
                                                 page.page_id)
        with pytest.raises(AccountError):
            platform.submit_ad(
                funded_account.account_id, campaign.campaign_id,
                AdCreative("h", "b"), f"audience:{audience.audience_id}",
            )

    def test_small_custom_audience_blocks_submission(self, platform,
                                                     funded_account,
                                                     campaign):
        user = platform.register_user()
        platform.users.attach_pii(user.user_id, "email", "a@b.c")
        audience = platform.create_pii_audience(
            funded_account.account_id, [record_from_raw("email", "a@b.c")]
        )
        with pytest.raises(AudienceTooSmallError):
            platform.submit_ad(
                funded_account.account_id, campaign.campaign_id,
                AdCreative("h", "b"), f"audience:{audience.audience_id}",
            )

    def test_foreign_campaign_rejected(self, platform, funded_account):
        other = platform.create_ad_account("other", budget=1.0)
        foreign_campaign = platform.create_campaign(other.account_id, "c")
        with pytest.raises(AccountError):
            platform.submit_ad(
                funded_account.account_id, foreign_campaign.campaign_id,
                AdCreative("h", "b"), "country:US",
            )

    def test_pause_ad(self, platform, funded_account, campaign):
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "neutral"), "country:US",
        )
        platform.pause_ad(funded_account.account_id, ad.ad_id)
        assert ad.status is AdStatus.PAUSED

    def test_pause_foreign_ad_rejected(self, platform, funded_account,
                                       campaign):
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "neutral"), "country:US",
        )
        other = platform.create_ad_account("other", budget=1.0)
        with pytest.raises(AccountError):
            platform.pause_ad(other.account_id, ad.ad_id)


class TestUserSide:
    def test_register_user_ids_unique(self, platform):
        ids = {platform.register_user().user_id for _ in range(5)}
        assert len(ids) == 5

    def test_like_unknown_page_rejected(self, platform):
        user = platform.register_user()
        with pytest.raises(AccountError):
            platform.like_page(user.user_id, "ghost-page")

    def test_browser_for_unknown_user_rejected(self, platform):
        with pytest.raises(CatalogError):
            platform.browser_for("ghost")

    def test_browser_observes_visits(self, platform, funded_account, web):
        pixel = platform.issue_pixel(funded_account.account_id)
        site = web.create_site("x.org", owner="x")
        site.add_page("/p", pixel_ids=[pixel.pixel_id])
        user = platform.register_user()
        browser = platform.browser_for(user.user_id)
        platform.observe_visit(browser.visit(site, "/p"))
        assert platform.pixels.visitors(pixel.pixel_id) == {user.user_id}


class TestBrokersIntegration:
    def test_ingest_brokers_sets_partner_attrs(self, platform):
        user = platform.register_user()
        platform.users.attach_pii(user.user_id, "email", "a@b.c")
        partner = platform.catalog.partner_attributes()[0]
        platform.brokers.broker("Acxiom").add_record(
            "r1", [("email", "a@b.c")], [(partner.attr_id, None)]
        )
        reports = platform.ingest_brokers()
        assert reports[0].records_matched == 1
        assert user.has_attribute(partner.attr_id)

    def test_estimated_reach_requires_ownership(self, platform,
                                                funded_account):
        other = platform.create_ad_account("other", budget=1.0)
        page = platform.create_page(other.account_id, "P")
        audience = platform.create_page_audience(other.account_id,
                                                 page.page_id)
        with pytest.raises(AccountError):
            platform.estimated_reach(funded_account.account_id,
                                     audience.audience_id)
