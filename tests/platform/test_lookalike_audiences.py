"""Tests for lookalike ("people similar to them") audiences."""

import pytest

from repro.errors import AudienceError


@pytest.fixture
def seeded(platform, funded_account):
    """A page-seeded audience of 2 users sharing 4 binary attributes."""
    binaries = [a for a in platform.catalog.platform_attributes()
                if a.is_binary]
    page = platform.create_page(funded_account.account_id, "Seed")
    seeds = []
    for _ in range(2):
        user = platform.register_user()
        for attr in binaries[:4]:
            user.set_attribute(attr)
        platform.like_page(user.user_id, page.page_id)
        seeds.append(user)
    seed_audience = platform.create_page_audience(
        funded_account.account_id, page.page_id
    )
    return binaries, seeds, seed_audience


class TestLookalike:
    def test_similar_user_included(self, platform, funded_account, seeded):
        binaries, seeds, seed_audience = seeded
        similar = platform.register_user()
        for attr in binaries[:3]:
            similar.set_attribute(attr)
        lookalike = platform.create_lookalike_audience(
            funded_account.account_id, seed_audience.audience_id,
            similarity_threshold=3,
        )
        assert platform.audiences.is_member(lookalike.audience_id,
                                            similar.user_id)

    def test_dissimilar_user_excluded(self, platform, funded_account,
                                      seeded):
        binaries, _, seed_audience = seeded
        stranger = platform.register_user()
        stranger.set_attribute(binaries[10])
        lookalike = platform.create_lookalike_audience(
            funded_account.account_id, seed_audience.audience_id,
            similarity_threshold=3,
        )
        assert not platform.audiences.is_member(lookalike.audience_id,
                                                stranger.user_id)

    def test_seed_members_included(self, platform, funded_account, seeded):
        _, seeds, seed_audience = seeded
        lookalike = platform.create_lookalike_audience(
            funded_account.account_id, seed_audience.audience_id,
        )
        members = platform.audiences.members(lookalike.audience_id)
        assert {s.user_id for s in seeds} <= members

    def test_threshold_tightens_membership(self, platform, funded_account,
                                           seeded):
        binaries, _, seed_audience = seeded
        partial = platform.register_user()
        for attr in binaries[:2]:
            partial.set_attribute(attr)
        loose = platform.create_lookalike_audience(
            funded_account.account_id, seed_audience.audience_id,
            similarity_threshold=2,
        )
        tight = platform.create_lookalike_audience(
            funded_account.account_id, seed_audience.audience_id,
            similarity_threshold=4,
        )
        assert platform.audiences.is_member(loose.audience_id,
                                            partial.user_id)
        assert not platform.audiences.is_member(tight.audience_id,
                                                partial.user_id)

    def test_foreign_seed_rejected(self, platform, funded_account, seeded):
        _, _, seed_audience = seeded
        other = platform.create_ad_account("other", budget=1.0)
        with pytest.raises(AudienceError):
            platform.create_lookalike_audience(
                other.account_id, seed_audience.audience_id
            )

    def test_bad_threshold_rejected(self, platform, funded_account, seeded):
        _, _, seed_audience = seeded
        with pytest.raises(AudienceError):
            platform.create_lookalike_audience(
                funded_account.account_id, seed_audience.audience_id,
                similarity_threshold=0,
            )
