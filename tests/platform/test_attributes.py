"""Unit tests for the attribute model and catalog container."""

import pytest

from repro.errors import CatalogError
from repro.platform.attributes import (
    Attribute,
    AttributeCatalog,
    AttributeKind,
    AttributeSource,
    make_binary,
    make_multi,
)


def _binary(attr_id="b1", **kw):
    defaults = dict(name="Binary one", category=("Cat",))
    defaults.update(kw)
    return make_binary(attr_id, **defaults)


def _multi(attr_id="m1", values=("a", "b", "c"), **kw):
    defaults = dict(name="Multi one", category=("Cat",), values=values)
    defaults.update(kw)
    return make_multi(attr_id, **defaults)


class TestAttribute:
    def test_binary_cardinality_is_two(self):
        assert _binary().cardinality == 2

    def test_multi_cardinality(self):
        assert _multi(values=("x", "y", "z", "w")).cardinality == 4

    def test_multi_without_values_rejected(self):
        with pytest.raises(CatalogError):
            Attribute(attr_id="bad", name="n",
                      source=AttributeSource.PLATFORM,
                      kind=AttributeKind.MULTI)

    def test_binary_with_values_rejected(self):
        with pytest.raises(CatalogError):
            Attribute(attr_id="bad", name="n",
                      source=AttributeSource.PLATFORM,
                      kind=AttributeKind.BINARY, values=("a",))

    def test_partner_needs_broker(self):
        with pytest.raises(CatalogError):
            Attribute(attr_id="bad", name="n",
                      source=AttributeSource.PARTNER)

    def test_value_index(self):
        assert _multi().value_index("b") == 1

    def test_value_index_unknown_raises(self):
        with pytest.raises(CatalogError):
            _multi().value_index("nope")

    def test_offered_in(self):
        attr = _binary(countries=("US", "DE"))
        assert attr.offered_in("DE")
        assert not attr.offered_in("IN")

    def test_is_partner(self):
        partner = _binary(attr_id="p", source=AttributeSource.PARTNER,
                          broker="Acxiom")
        assert partner.is_partner
        assert not _binary().is_partner

    def test_hashable(self):
        assert len({_binary(), _binary()}) == 1


class TestAttributeCatalog:
    def test_add_and_get(self):
        catalog = AttributeCatalog()
        catalog.add(_binary())
        assert catalog.get("b1").name == "Binary one"

    def test_duplicate_id_rejected(self):
        catalog = AttributeCatalog(attributes=[_binary()])
        with pytest.raises(CatalogError):
            catalog.add(_binary())

    def test_duplicate_in_constructor_rejected(self):
        with pytest.raises(CatalogError):
            AttributeCatalog(attributes=[_binary(), _binary()])

    def test_unknown_get_raises(self):
        with pytest.raises(CatalogError):
            AttributeCatalog().get("missing")

    def test_contains_and_len(self):
        catalog = AttributeCatalog(attributes=[_binary(), _multi()])
        assert "b1" in catalog
        assert "zzz" not in catalog
        assert len(catalog) == 2

    def test_remove(self):
        catalog = AttributeCatalog(attributes=[_binary()])
        removed = catalog.remove("b1")
        assert removed.attr_id == "b1"
        assert "b1" not in catalog
        assert len(catalog) == 0

    def test_search_matches_name(self):
        catalog = AttributeCatalog(attributes=[
            _binary("s1", name="Interested in Salsa dancing"),
            _binary("s2", name="Net worth: $2M+"),
        ])
        hits = catalog.search("salsa")
        assert [a.attr_id for a in hits] == ["s1"]

    def test_search_matches_category(self):
        catalog = AttributeCatalog(attributes=[
            _binary("c1", category=("Financial", "Net worth")),
        ])
        assert catalog.search("net worth")[0].attr_id == "c1"

    def test_search_respects_country(self):
        catalog = AttributeCatalog(attributes=[
            _binary("c1", name="Thing", countries=("DE",)),
        ])
        assert catalog.search("thing", country="US") == []
        assert len(catalog.search("thing", country="DE")) == 1

    def test_search_empty_keyword(self):
        catalog = AttributeCatalog(attributes=[_binary()])
        assert catalog.search("   ") == []

    def test_partner_and_platform_filters(self):
        partner = _binary("p", source=AttributeSource.PARTNER,
                          broker="Acxiom")
        catalog = AttributeCatalog(attributes=[_binary(), partner])
        assert [a.attr_id for a in catalog.partner_attributes()] == ["p"]
        assert [a.attr_id for a in catalog.platform_attributes()] == ["b1"]

    def test_binary_and_multi_filters(self):
        catalog = AttributeCatalog(attributes=[_binary(), _multi()])
        assert [a.attr_id for a in catalog.binary_attributes()] == ["b1"]
        assert [a.attr_id for a in catalog.multi_attributes()] == ["m1"]

    def test_subset(self):
        catalog = AttributeCatalog(attributes=[_binary(), _multi()])
        sub = catalog.subset(["m1"])
        assert len(sub) == 1
        assert "m1" in sub

    def test_subset_unknown_raises(self):
        with pytest.raises(CatalogError):
            AttributeCatalog().subset(["ghost"])
