"""Tests for special-ad-category (anti-discrimination) targeting review.

Paper section 5 recounts the ProPublica findings: Facebook let housing
advertisers exclude users by race, and covert proxies survived the first
round of fixes. These tests pin the rule set — and its documented blind
spot — onto the simulator.
"""

import pytest

from repro.platform.ads import AdCreative, AdStatus
from repro.platform.policy import (
    SPECIAL_AD_CATEGORIES,
    review_targeting_for_special_category,
)
from repro.platform.targeting import parse


def _submit(platform, account, campaign, targeting, category):
    return platform.submit_ad(
        account.account_id, campaign.campaign_id,
        AdCreative("Apartments available", "Two bedrooms, city center."),
        targeting, bid_cap_cpm=5.0, special_category=category,
    )


class TestSpecialCategoryRules:
    def test_exclusion_targeting_rejected(self, platform, funded_account,
                                          campaign):
        """The ProPublica scenario: a housing ad EXCLUDING an attribute
        group."""
        attr = [a for a in platform.catalog.platform_attributes()
                if a.is_binary][0]
        ad = _submit(platform, funded_account, campaign,
                     f"!attr:{attr.attr_id} & country:US", "housing")
        assert ad.status is AdStatus.REJECTED
        assert "exclusion targeting" in ad.review_note

    @pytest.mark.parametrize("predicate,fragment", [
        ("age:25-40", "age targeting"),
        ("gender:female", "gender targeting"),
        ("zip:02115/02116", "ZIP targeting"),
    ])
    def test_demographic_targeting_rejected(self, platform, funded_account,
                                            campaign, predicate, fragment):
        ad = _submit(platform, funded_account, campaign,
                     f"{predicate} & country:US", "housing")
        assert ad.status is AdStatus.REJECTED
        assert fragment in ad.review_note

    def test_financial_proxy_rejected(self, platform, funded_account,
                                      campaign):
        networth = next(a for a in platform.catalog.partner_attributes()
                        if a.attr_id.startswith("pc-networth"))
        ad = _submit(platform, funded_account, campaign,
                     f"attr:{networth.attr_id}", "employment")
        assert ad.status is AdStatus.REJECTED
        assert "financial-standing" in ad.review_note

    def test_broad_targeting_approved(self, platform, funded_account,
                                      campaign):
        ad = _submit(platform, funded_account, campaign, "country:US",
                     "housing")
        assert ad.status is AdStatus.ACTIVE

    def test_same_targeting_fine_without_category(self, platform,
                                                  funded_account, campaign):
        """Ordinary ads keep the full targeting toolbox."""
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("Concert tickets", "This weekend."),
            "age:25-40 & gender:female & country:US", bid_cap_cpm=5.0,
        )
        assert ad.status is AdStatus.ACTIVE

    def test_unknown_category_rejected(self, platform, funded_account,
                                       campaign):
        with pytest.raises(ValueError):
            _submit(platform, funded_account, campaign, "country:US",
                    "yachts")

    def test_category_constants(self):
        assert SPECIAL_AD_CATEGORIES == ("housing", "employment", "credit")


class TestKnownLimitation:
    def test_covert_proxy_via_interest_passes(self, platform,
                                              funded_account, campaign):
        """[29]'s point, preserved: targeting a culturally-correlated
        interest attribute is NOT caught by the rule set — covert
        discrimination channels survive attribute-level review."""
        interest = [a for a in platform.catalog.platform_attributes()
                    if a.is_binary][0]
        ad = _submit(platform, funded_account, campaign,
                     f"attr:{interest.attr_id} & country:US", "housing")
        assert ad.status is AdStatus.ACTIVE

    def test_review_function_direct(self):
        result = review_targeting_for_special_category(
            parse("!attr:x & age:20-30"), "credit"
        )
        assert not result.approved
        assert result.rule_id == "special-category-credit"
        assert len(result.reasons) == 2
