"""Unit tests for the billing ledger."""

import pytest

from repro.errors import BudgetError
from repro.platform.ads import AdAccount, AdInventory
from repro.platform.billing import BillingLedger


@pytest.fixture
def inventory():
    inv = AdInventory()
    inv.add_account(AdAccount(account_id="acct-1", owner_name="np",
                              budget=1.0))
    return inv


@pytest.fixture
def ledger(inventory):
    return BillingLedger(inventory)


class TestCharging:
    def test_charge_decrements_budget(self, ledger, inventory):
        ledger.charge_impression("ad-1", "acct-1", 0.002, 0)
        assert inventory.account("acct-1").budget == pytest.approx(0.998)

    def test_charge_beyond_budget_rejected(self, ledger):
        with pytest.raises(BudgetError):
            ledger.charge_impression("ad-1", "acct-1", 2.0, 0)

    def test_per_ad_aggregates(self, ledger):
        ledger.charge_impression("ad-1", "acct-1", 0.002, 0)
        ledger.charge_impression("ad-1", "acct-1", 0.003, 1)
        ledger.charge_impression("ad-2", "acct-1", 0.004, 2)
        assert ledger.spend_for_ad("ad-1") == pytest.approx(0.005)
        assert ledger.impressions_for_ad("ad-1") == 2
        assert ledger.impressions_for_ad("ad-2") == 1

    def test_unknown_ad_zero(self, ledger):
        assert ledger.spend_for_ad("ghost") == 0.0
        assert ledger.impressions_for_ad("ghost") == 0

    def test_effective_cpm(self, ledger):
        ledger.charge_impression("ad-1", "acct-1", 0.002, 0)
        ledger.charge_impression("ad-1", "acct-1", 0.004, 1)
        assert ledger.effective_cpm("ad-1") == pytest.approx(3.0)

    def test_effective_cpm_no_impressions(self, ledger):
        assert ledger.effective_cpm("ad-1") == 0.0


class TestInvoice:
    def test_invoice_totals(self, ledger):
        ledger.charge_impression("ad-1", "acct-1", 0.002, 0)
        ledger.charge_impression("ad-2", "acct-1", 0.003, 1)
        invoice = ledger.invoice("acct-1")
        assert invoice.total == pytest.approx(0.005)
        assert invoice.impressions == 2
        assert invoice.by_ad == {
            "ad-1": pytest.approx(0.002), "ad-2": pytest.approx(0.003)
        }

    def test_invoice_isolated_per_account(self, ledger, inventory):
        inventory.add_account(AdAccount(account_id="acct-2",
                                        owner_name="x", budget=1.0))
        ledger.charge_impression("ad-1", "acct-1", 0.002, 0)
        ledger.charge_impression("ad-9", "acct-2", 0.005, 1)
        assert ledger.invoice("acct-2").total == pytest.approx(0.005)
        assert ledger.spend_for_account("acct-1") == pytest.approx(0.002)

    def test_empty_invoice(self, ledger):
        invoice = ledger.invoice("acct-1")
        assert invoice.total == 0.0
        assert invoice.impressions == 0

    def test_all_charges_copy(self, ledger):
        ledger.charge_impression("ad-1", "acct-1", 0.002, 0)
        charges = ledger.all_charges()
        charges.clear()
        assert len(ledger.all_charges()) == 1
