"""Tests for advertiser-facing reporting and its privacy behaviour."""

import pytest

from repro.platform.ads import AdCreative
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.reporting import ReportingConfig, _age_bucket
from repro.platform.catalog import build_us_catalog
from repro.workloads.competition import zero_competition


def _platform(reach_quantum=1, breakdown_min_reach=100):
    return AdPlatform(
        config=PlatformConfig(
            name="rpt",
            reporting=ReportingConfig(
                reach_quantum=reach_quantum,
                breakdown_min_reach=breakdown_min_reach,
            ),
        ),
        catalog=build_us_catalog(platform_count=40, partner_count=25),
        competing_draw=zero_competition(),
    )


def _run_campaign(platform, user_count, attr_index=0, bid=10.0):
    account = platform.create_ad_account("np", budget=100.0)
    campaign = platform.create_campaign(account.account_id, "c")
    attr = platform.catalog.partner_attributes()[attr_index]
    for _ in range(user_count):
        platform.register_user().set_attribute(attr)
    ad = platform.submit_ad(
        account.account_id, campaign.campaign_id,
        AdCreative("h", "neutral"), f"attr:{attr.attr_id} & country:US",
        bid_cap_cpm=bid,
    )
    platform.run_until_saturated()
    return account, ad


class TestReports:
    def test_report_fields(self):
        platform = _platform()
        account, ad = _run_campaign(platform, user_count=5)
        report = platform.report(account.account_id, ad.ad_id)
        assert report.impressions == 5
        assert report.reach == 5
        assert report.spend >= 0.0

    def test_no_user_identities_in_report(self):
        """The property Treads' privacy analysis relies on."""
        platform = _platform()
        account, ad = _run_campaign(platform, user_count=3)
        report = platform.report(account.account_id, ad.ad_id)
        field_names = set(vars(report))
        assert not any("user" in name for name in field_names)

    def test_foreign_account_denied(self):
        platform = _platform()
        account, ad = _run_campaign(platform, user_count=2)
        other = platform.create_ad_account("spy", budget=1.0)
        with pytest.raises(PermissionError):
            platform.report(other.account_id, ad.ad_id)

    def test_reports_for_account(self):
        platform = _platform()
        account, _ = _run_campaign(platform, user_count=2)
        assert len(platform.reports(account.account_id)) == 1


class TestReachQuantization:
    def test_exact_by_default(self):
        platform = _platform(reach_quantum=1)
        account, ad = _run_campaign(platform, user_count=7)
        assert platform.report(account.account_id, ad.ad_id).reach == 7

    def test_quantized_reach(self):
        platform = _platform(reach_quantum=5)
        account, ad = _run_campaign(platform, user_count=7)
        report = platform.report(account.account_id, ad.ad_id)
        assert report.reach == 5  # 7 -> nearest multiple of 5

    def test_impressions_remain_exact(self):
        """Billing-grade numbers are exact even when reach is quantized."""
        platform = _platform(reach_quantum=5)
        account, ad = _run_campaign(platform, user_count=7)
        assert platform.report(account.account_id, ad.ad_id).impressions == 7


class TestDemographicBreakdown:
    def test_suppressed_below_threshold(self):
        platform = _platform(breakdown_min_reach=100)
        account, ad = _run_campaign(platform, user_count=10)
        assert platform.report(account.account_id,
                               ad.ad_id).demographics is None

    def test_present_above_threshold(self):
        platform = _platform(breakdown_min_reach=5)
        account, ad = _run_campaign(platform, user_count=10)
        demographics = platform.report(account.account_id,
                                       ad.ad_id).demographics
        assert demographics is not None
        assert sum(demographics.values()) == 10

    def test_age_buckets(self):
        assert _age_bucket(13) == "13-17"
        assert _age_bucket(30) == "25-34"
        assert _age_bucket(70) == "65+"
