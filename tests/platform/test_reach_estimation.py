"""Tests for pre-launch potential-reach estimation and cost planning."""

import pytest

from repro.core.provider import TransparencyProvider
from repro.errors import AccountError, CatalogError


class TestEstimateSpecReach:
    def test_small_reach_floored(self, platform, funded_account):
        attr = platform.catalog.partner_attributes()[0]
        for _ in range(5):
            platform.register_user().set_attribute(attr)
        estimate = platform.estimate_spec_reach(
            funded_account.account_id, f"attr:{attr.attr_id}"
        )
        assert estimate.is_floor  # 5 < default floor 1000

    def test_large_reach_quantized(self, platform, funded_account):
        attr = platform.catalog.partner_attributes()[0]
        for _ in range(1033):
            platform.register_user().set_attribute(attr)
        estimate = platform.estimate_spec_reach(
            funded_account.account_id, f"attr:{attr.attr_id}"
        )
        assert not estimate.is_floor
        assert estimate.displayed == 1050  # nearest 50

    def test_validates_like_submission(self, platform, funded_account):
        with pytest.raises(CatalogError):
            platform.estimate_spec_reach(funded_account.account_id,
                                         "attr:ghost")

    def test_foreign_audience_rejected(self, platform, funded_account):
        other = platform.create_ad_account("other", budget=1.0)
        page = platform.create_page(other.account_id, "P")
        audience = platform.create_page_audience(other.account_id,
                                                 page.page_id)
        with pytest.raises(AccountError):
            platform.estimate_spec_reach(
                funded_account.account_id,
                f"audience:{audience.audience_id}",
            )

    def test_no_member_list_exposed(self, platform, funded_account):
        estimate = platform.estimate_spec_reach(funded_account.account_id,
                                                "country:US")
        assert not hasattr(estimate, "user_ids")


class TestEstimateSweepCost:
    def test_upper_bounds_actual_spend(self, platform, web):
        provider = TransparencyProvider(platform, web, budget=100.0,
                                        bid_cap_cpm=10.0)
        attrs = platform.catalog.partner_attributes()[:5]
        for _ in range(10):
            user = platform.register_user()
            for attr in attrs[:3]:
                user.set_attribute(attr)
            provider.optin.via_page_like(user.user_id)
        estimate = provider.estimate_sweep_cost(attrs)
        provider.launch_attribute_sweep(attrs)
        provider.run_delivery()
        assert provider.total_spend() <= estimate

    def test_estimate_uses_floored_reach(self, platform, web):
        """Tiny audiences estimate at the reach floor — conservatively."""
        provider = TransparencyProvider(platform, web, budget=100.0,
                                        bid_cap_cpm=10.0)
        attrs = platform.catalog.partner_attributes()[:2]
        user = platform.register_user()
        provider.optin.via_page_like(user.user_id)
        estimate = provider.estimate_sweep_cost(attrs)
        # 3 specs (2 attrs + control) x floor 1000 x $0.01
        assert estimate == pytest.approx(3 * 1000 * 0.01)

    def test_without_control(self, platform, web):
        provider = TransparencyProvider(platform, web, budget=100.0)
        attrs = platform.catalog.partner_attributes()[:2]
        with_control = provider.estimate_sweep_cost(attrs)
        without = provider.estimate_sweep_cost(attrs,
                                               include_control=False)
        assert without < with_control
