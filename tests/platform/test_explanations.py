"""Tests for the platform's (deliberately partial) ad explanations.

These reproduce the incompleteness findings of [1] that motivate the
paper: at most one attribute, never partner data, most-prevalent choice.
"""

import pytest

from repro.platform.ads import AdCreative


def _submit(platform, account, campaign, targeting, bid=10.0):
    return platform.submit_ad(
        account.account_id, campaign.campaign_id,
        AdCreative("h", "neutral"), targeting, bid_cap_cpm=bid,
    )


@pytest.fixture
def setup(platform, funded_account, campaign):
    user = platform.register_user(age=30)
    platform_attrs = platform.catalog.platform_attributes()
    binaries = [a for a in platform_attrs if a.is_binary]
    return user, binaries


class TestAtMostOneAttribute:
    def test_multi_attribute_targeting_reveals_one(self, platform,
                                                   funded_account, campaign,
                                                   setup):
        user, binaries = setup
        for attr in binaries[:3]:
            user.set_attribute(attr)
        ad = _submit(
            platform, funded_account, campaign,
            f"attr:{binaries[0].attr_id} & attr:{binaries[1].attr_id} & "
            f"attr:{binaries[2].attr_id}",
        )
        explanation = platform.explain_ad(user.user_id, ad.ad_id)
        assert explanation.revealed_attribute in {
            a.attr_id for a in binaries[:3]
        }
        mentioned = [a for a in binaries[:3]
                     if a.name in explanation.text]
        assert len(mentioned) == 1

    def test_most_prevalent_attribute_chosen(self, platform, funded_account,
                                             campaign, setup):
        """[1]: the explanation names the *most common* attribute."""
        user, binaries = setup
        rare, common = binaries[0], binaries[1]
        user.set_attribute(rare)
        user.set_attribute(common)
        for _ in range(5):
            platform.register_user().set_attribute(common)
        ad = _submit(platform, funded_account, campaign,
                     f"attr:{rare.attr_id} & attr:{common.attr_id}")
        explanation = platform.explain_ad(user.user_id, ad.ad_id)
        assert explanation.revealed_attribute == common.attr_id


class TestPartnerAttributesNeverRevealed:
    def test_partner_targeting_gives_generic_explanation(self, platform,
                                                         funded_account,
                                                         campaign, setup):
        """The transparency gap Treads exists to fill."""
        user, _ = setup
        partner = platform.catalog.partner_attributes()[0]
        user.set_attribute(partner)
        ad = _submit(platform, funded_account, campaign,
                     f"attr:{partner.attr_id}")
        explanation = platform.explain_ad(user.user_id, ad.ad_id)
        assert explanation.revealed_attribute is None
        assert partner.name not in explanation.text

    def test_mixed_targeting_reveals_only_platform_attr(self, platform,
                                                        funded_account,
                                                        campaign, setup):
        user, binaries = setup
        partner = platform.catalog.partner_attributes()[0]
        user.set_attribute(partner)
        user.set_attribute(binaries[0])
        ad = _submit(
            platform, funded_account, campaign,
            f"attr:{partner.attr_id} & attr:{binaries[0].attr_id}",
        )
        explanation = platform.explain_ad(user.user_id, ad.ad_id)
        assert explanation.revealed_attribute == binaries[0].attr_id


class TestOtherClauses:
    def test_demographics_mentioned_generically(self, platform,
                                                funded_account, campaign,
                                                setup):
        user, _ = setup
        ad = _submit(platform, funded_account, campaign,
                     "age:25-34 & country:US")
        explanation = platform.explain_ad(user.user_id, ad.ad_id)
        assert "between the ages of 25 and 34" in explanation.text
        assert "you live in US" in explanation.text

    def test_customer_list_mentioned_without_details(self, platform,
                                                     funded_account,
                                                     campaign, setup):
        user, _ = setup
        page = platform.create_page(funded_account.account_id, "P")
        platform.like_page(user.user_id, page.page_id)
        ad = _submit(platform, funded_account, campaign,
                     f"page:{page.page_id}")
        explanation = platform.explain_ad(user.user_id, ad.ad_id)
        assert explanation.mentions_customer_list
        # no PII, no page id leak in the text
        assert page.page_id not in explanation.text

    def test_excluded_attributes_never_mentioned(self, platform,
                                                 funded_account, campaign,
                                                 setup):
        user, binaries = setup
        ad = _submit(platform, funded_account, campaign,
                     f"!attr:{binaries[0].attr_id} & country:US")
        explanation = platform.explain_ad(user.user_id, ad.ad_id)
        assert explanation.revealed_attribute is None

    def test_fallback_text(self, platform, funded_account, campaign, setup):
        user, _ = setup
        ad = _submit(platform, funded_account, campaign, "all")
        explanation = platform.explain_ad(user.user_id, ad.ad_id)
        assert "people like you" in explanation.text
