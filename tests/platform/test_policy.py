"""Unit tests for ToS review and the Tread-pattern detector."""

import pytest

from repro.platform.ads import Ad, AdCreative
from repro.platform.attributes import AttributeCatalog, make_binary
from repro.platform.catalog import build_us_catalog
from repro.platform.policy import PolicyEngine, TreadPatternDetector
from repro.platform.targeting import parse


@pytest.fixture(scope="module")
def engine():
    return PolicyEngine(build_us_catalog(platform_count=40,
                                         partner_count=25))


def _creative(body, headline="Sponsored"):
    return AdCreative(headline=headline, body=body)


class TestPersonalAttributesRule:
    def test_figure_1a_explicit_tread_rejected(self, engine):
        """Figure 1a's explicit Tread asserts a personal attribute."""
        result = engine.review(_creative(
            "According to this ad platform, you are: Net worth: Over $2M."
        ))
        assert not result.approved
        assert result.rule_id == "personal-attributes"

    def test_figure_1b_obfuscated_tread_passes(self, engine):
        """Figure 1b's codebook Tread is innocuous text plus a number."""
        result = engine.review(_creative(
            "Transparency Project update. Reference: 2,830,120."
        ))
        assert result.approved

    def test_salsa_example_rejected(self, engine):
        result = engine.review(_creative(
            "You are interested in Salsa dancing according to this ad "
            "platform"
        ))
        assert not result.approved

    def test_second_person_plus_sensitive_term(self, engine):
        result = engine.review(_creative(
            "Your income qualifies you for our gold card."
        ))
        assert not result.approved

    def test_sensitive_term_without_second_person_passes(self, engine):
        result = engine.review(_creative(
            "High income households choose Brand X."
        ))
        assert result.approved

    def test_second_person_without_sensitive_term_passes(self, engine):
        result = engine.review(_creative(
            "We think you'll enjoy this week's update."
        ))
        assert result.approved

    def test_ordinary_ad_passes(self, engine):
        assert engine.review(_creative("Fresh pizza, delivered hot."))

    def test_landing_page_content_not_reviewed(self, engine):
        """Review scans ad text only — the loophole of section 4."""
        from repro.platform.ads import LandingURL
        creative = AdCreative(
            headline="Sponsored",
            body="Tap through for this week's update.",
            landing_url=LandingURL("prov.org", "/t/2830120"),
        )
        assert engine.review(creative).approved

    def test_headline_is_scanned(self, engine):
        result = engine.review(_creative(
            body="Neutral.", headline="Your net worth, revealed"
        ))
        assert not result.approved


class TestStrictness:
    def test_lenient_only_flags_explicit_assertions(self):
        engine = PolicyEngine(AttributeCatalog(), strictness="lenient")
        assert engine.review(_creative("Your income is huge")).approved
        assert not engine.review(_creative(
            "according to this platform you like jazz"
        )).approved

    def test_strict_flags_catalog_names_verbatim(self):
        catalog = AttributeCatalog(attributes=[
            make_binary("b1", "Frequent flyer", ("Travel",)),
        ])
        strict = PolicyEngine(catalog, strictness="strict")
        standard = PolicyEngine(catalog, strictness="standard")
        creative = _creative("Deals for every frequent flyer out there.")
        assert standard.review(creative).approved
        assert not strict.review(creative).approved

    def test_unknown_strictness_rejected(self):
        with pytest.raises(ValueError):
            PolicyEngine(AttributeCatalog(), strictness="maximal")


def _tread_like_ad(ad_id, attr_id, anchor="page:p1"):
    return Ad(
        ad_id=ad_id,
        account_id="acct-1",
        campaign_id="camp-1",
        creative=AdCreative(headline="h", body="b"),
        targeting=parse(f"attr:{attr_id} & {anchor}"),
        bid_cap_cpm=10.0,
    )


class TestTreadPatternDetector:
    def test_scores_single_attribute_ads_at_shared_anchor(self):
        detector = TreadPatternDetector(per_account_threshold=5)
        ads = [_tread_like_ad(f"ad-{i}", f"attr-{i}") for i in range(8)]
        assert detector.score_account(ads) == 8

    def test_multi_attribute_ads_not_counted(self):
        detector = TreadPatternDetector()
        ad = Ad(
            ad_id="ad-1", account_id="a", campaign_id="c",
            creative=AdCreative("h", "b"),
            targeting=parse("attr:x & attr:y & page:p1"),
            bid_cap_cpm=2.0,
        )
        assert detector.score_account([ad]) == 0

    def test_no_anchor_scores_zero(self):
        detector = TreadPatternDetector()
        ad = Ad(
            ad_id="ad-1", account_id="a", campaign_id="c",
            creative=AdCreative("h", "b"),
            targeting=parse("attr:x & country:US"),
            bid_cap_cpm=2.0,
        )
        assert detector.score_account([ad]) == 0

    def test_audit_flags_over_threshold(self):
        detector = TreadPatternDetector(per_account_threshold=5)
        heavy = [_tread_like_ad(f"ad-{i}", f"attr-{i}") for i in range(6)]
        light = [_tread_like_ad(f"ad-x{i}", f"attr-{i}") for i in range(2)]
        flags = detector.audit({"heavy": heavy, "light": light})
        assert [f.account_id for f in flags] == ["heavy"]
        assert flags[0].score == 6

    def test_audience_anchor_also_grouped(self):
        detector = TreadPatternDetector(per_account_threshold=2)
        ads = [
            _tread_like_ad("ad-1", "a1", anchor="audience:aud-1"),
            _tread_like_ad("ad-2", "a2", anchor="audience:aud-1"),
        ]
        assert detector.score_account(ads) == 2

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            TreadPatternDetector(per_account_threshold=0)
