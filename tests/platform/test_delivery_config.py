"""Edge-case tests for delivery-engine configuration knobs."""

import pytest

from repro.platform.ads import AdCreative
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.workloads.competition import fixed_competition, zero_competition


def _platform(**config_kw):
    return AdPlatform(
        config=PlatformConfig(name="cfg", **config_kw),
        catalog=build_us_catalog(40, 25),
        competing_draw=zero_competition(),
    )


def _one_ad_campaign(platform, bid=10.0):
    account = platform.create_ad_account("adv", budget=100.0)
    campaign = platform.create_campaign(account.account_id, "c")
    ad = platform.submit_ad(
        account.account_id, campaign.campaign_id,
        AdCreative("h", "b"), "country:US", bid_cap_cpm=bid,
    )
    return account, ad


class TestFrequencyCap:
    def test_cap_of_three_serves_thrice(self):
        platform = _platform(frequency_cap=3)
        user = platform.register_user()
        _one_ad_campaign(platform)
        platform.run_delivery(slots_per_user=10)
        assert len(platform.feed(user.user_id)) == 3

    def test_cap_zero_rejected(self):
        with pytest.raises(ValueError):
            _platform(frequency_cap=0)


class TestFloorPrice:
    def test_bid_below_floor_never_serves(self):
        platform = AdPlatform(
            config=PlatformConfig(name="floor", floor_price_cpm=5.0),
            catalog=build_us_catalog(40, 25),
            competing_draw=zero_competition(),
        )
        user = platform.register_user()
        _one_ad_campaign(platform, bid=2.0)
        platform.run_delivery(slots_per_user=5)
        assert platform.feed(user.user_id) == []

    def test_floor_is_minimum_charge(self):
        platform = AdPlatform(
            config=PlatformConfig(name="floor2", floor_price_cpm=1.0),
            catalog=build_us_catalog(40, 25),
            competing_draw=zero_competition(),
        )
        platform.register_user()
        account, ad = _one_ad_campaign(platform, bid=10.0)
        platform.run_until_saturated()
        assert platform.ledger.effective_cpm(ad.ad_id) == pytest.approx(1.0)


class TestMinMatchCount:
    def test_negative_rejected(self):
        from repro.platform.delivery import DeliveryEngine
        platform = _platform()
        with pytest.raises(ValueError):
            DeliveryEngine(
                inventory=platform.inventory,
                audiences=platform.audiences,
                ledger=platform.ledger,
                competing_draw=zero_competition(),
                min_match_count=-1,
            )

    def test_threshold_exactly_met_serves(self):
        platform = _platform(min_delivery_match_count=3)
        users = [platform.register_user() for _ in range(3)]
        _one_ad_campaign(platform)
        platform.run_until_saturated()
        assert all(len(platform.feed(u.user_id)) == 1 for u in users)
