"""Unit tests for audiences: creation, membership, gates, reach."""

import pytest

from repro.errors import AudienceError, AudienceTooSmallError
from repro.platform.audiences import (
    AudienceKind,
    AudienceRegistry,
    ReachEstimate,
    round_reach,
)
from repro.platform.pii import record_from_raw
from repro.platform.pixels import PixelRegistry
from repro.platform.users import UserProfile, UserStore
from repro.platform.web import Browser, Website


@pytest.fixture
def users():
    store = UserStore()
    for index in range(30):
        profile = UserProfile(user_id=f"u{index}")
        store.add(profile)
        store.attach_pii(f"u{index}", "email", f"user{index}@x.com")
    return store


@pytest.fixture
def pixels():
    registry = PixelRegistry()
    registry.issue("px-1", "acct-1")
    return registry


@pytest.fixture
def registry(users, pixels):
    return AudienceRegistry(users=users, pixels=pixels,
                            min_custom_audience_size=20)


def _pii_records(count):
    return [record_from_raw("email", f"user{i}@x.com") for i in range(count)]


class TestRoundReach:
    def test_below_floor_reported_as_floor(self):
        estimate = round_reach(7, floor=1000)
        assert estimate.is_floor
        assert estimate.displayed == 1000
        assert str(estimate) == "below 1000"

    def test_above_floor_quantized(self):
        estimate = round_reach(1234, floor=1000, quantum=50)
        assert not estimate.is_floor
        assert estimate.displayed == 1250

    def test_exact_quantum_unchanged(self):
        assert round_reach(1500, floor=1000, quantum=50).displayed == 1500


class TestPIIAudience:
    def test_matching(self, registry):
        audience = registry.create_pii_audience(
            "aud-1", "acct-1", _pii_records(25))
        assert len(registry.members("aud-1")) == 25

    def test_nonmatching_hashes_silently_dropped(self, registry):
        records = _pii_records(5) + [
            record_from_raw("email", "stranger@nowhere.com")
        ]
        registry.create_pii_audience("aud-1", "acct-1", records)
        assert len(registry.members("aud-1")) == 5

    def test_membership_frozen_at_creation(self, registry, users):
        registry.create_pii_audience("aud-1", "acct-1", _pii_records(5))
        users.add(UserProfile(user_id="u-new"))
        users.attach_pii("u-new", "email", "user0@x.com")
        # new user shares user0's email, but the audience is frozen
        assert "u-new" not in registry.members("aud-1")

    def test_runnable_gate_blocks_small(self, registry):
        """The minimum-size gate: why the paper's 2-author validation used
        page likes instead of a custom audience."""
        registry.create_pii_audience("aud-1", "acct-1", _pii_records(5))
        with pytest.raises(AudienceTooSmallError):
            registry.check_runnable("aud-1")

    def test_runnable_gate_passes_large(self, registry):
        registry.create_pii_audience("aud-1", "acct-1", _pii_records(25))
        registry.check_runnable("aud-1")


class TestPixelAudience:
    def _fire(self, pixels, user_id):
        site = Website(domain="prov.org", owner="prov")
        site.add_page("/optin", pixel_ids=["px-1"])
        pixels.record_visit(Browser(user_id).visit(site, "/optin"))

    def test_membership_is_dynamic(self, registry, pixels):
        registry.create_pixel_audience("aud-1", "acct-1", "px-1")
        assert registry.members("aud-1") == set()
        self._fire(pixels, "u1")
        assert registry.members("aud-1") == {"u1"}

    def test_foreign_pixel_rejected(self, registry):
        with pytest.raises(AudienceError):
            registry.create_pixel_audience("aud-1", "acct-2", "px-1")


class TestPageAudience:
    def test_membership_from_likes(self, registry, users):
        registry.create_page_audience("aud-1", "acct-1", "page-1")
        users.get("u3").liked_pages.add("page-1")
        assert registry.members("aud-1") == {"u3"}

    def test_exempt_from_min_size_gate(self, registry, users):
        """Page ("connections") targeting has no minimum — the asymmetry
        the validation exploited."""
        registry.create_page_audience("aud-1", "acct-1", "page-1")
        users.get("u3").liked_pages.add("page-1")
        registry.check_runnable("aud-1")  # must not raise


class TestRegistry:
    def test_duplicate_id_rejected(self, registry):
        registry.create_page_audience("aud-1", "acct-1", "page-1")
        with pytest.raises(AudienceError):
            registry.create_page_audience("aud-1", "acct-1", "page-2")

    def test_unknown_audience_raises(self, registry):
        with pytest.raises(AudienceError):
            registry.members("ghost")

    def test_is_member_resolver(self, registry, users):
        registry.create_page_audience("aud-1", "acct-1", "page-1")
        users.get("u5").liked_pages.add("page-1")
        assert registry.is_member("aud-1", "u5")
        assert not registry.is_member("aud-1", "u6")

    def test_estimated_reach_small_is_floored(self, registry):
        registry.create_pii_audience("aud-1", "acct-1", _pii_records(25))
        estimate = registry.estimated_reach("aud-1")
        assert estimate.is_floor  # 25 < default floor of 1000

    def test_audiences_owned_by(self, registry):
        registry.create_page_audience("aud-1", "acct-1", "p")
        registry.create_page_audience("aud-2", "acct-2", "p")
        owned = registry.audiences_owned_by("acct-1")
        assert [a.audience_id for a in owned] == ["aud-1"]


class TestColumnarBitsetCache:
    """The materialized-mask cache behind reach probes and batch sweeps:
    one bitset per audience per world state, invalidated by any
    ``mutation_epoch`` / pixel ``mutation_seq`` bump."""

    @pytest.fixture
    def columnar_world(self):
        from repro.platform.colstore import ColumnarUserStore

        store = ColumnarUserStore()
        for index in range(40):
            store.new_user(f"cu{index}")
            if index % 4 == 0:
                store.like_page(f"cu{index}", "page-1")
        pixels = PixelRegistry()
        pixels.issue("px-1", "acct-1")
        registry = AudienceRegistry(users=store, pixels=pixels,
                                    min_custom_audience_size=5)
        registry.create_page_audience("aud-page", "acct-1", "page-1")
        registry.create_pixel_audience("aud-px", "acct-1", "px-1")
        return store, pixels, registry

    def test_repeated_probe_reuses_the_same_bitset(self, columnar_world):
        _store, _pixels, registry = columnar_world
        first = registry.member_bitset_cached("aud-page")
        assert registry.member_bitset_cached("aud-page") is first
        # The count cache rides the same mask.
        assert registry.membership_count("aud-page") == 10
        assert registry.member_bitset_cached("aud-page") is first
        assert not registry.estimated_reach("aud-page").is_floor or True
        assert registry.member_bitset_cached("aud-page") is first

    def test_user_mutation_epoch_invalidates(self, columnar_world):
        store, _pixels, registry = columnar_world
        before = registry.member_bitset_cached("aud-page")
        assert registry.membership_count("aud-page") == 10
        store.like_page("cu1", "page-1")  # bumps mutation_epoch
        after = registry.member_bitset_cached("aud-page")
        assert after is not before
        assert registry.membership_count("aud-page") == 11
        # Stable again until the next mutation.
        assert registry.member_bitset_cached("aud-page") is after

    def test_unrelated_mutations_still_invalidate(self, columnar_world):
        """The key is world-level, deliberately coarse: any epoch bump
        rebuilds, never serving a stale mask."""
        store, _pixels, registry = columnar_world
        before = registry.member_bitset_cached("aud-page")
        store.new_user("cu-new")  # no page like; count unchanged
        after = registry.member_bitset_cached("aud-page")
        assert after is not before
        assert registry.membership_count("aud-page") == 10

    def test_pixel_fire_invalidates(self, columnar_world):
        from repro.platform.web import Visit

        _store, pixels, registry = columnar_world
        before = registry.member_bitset_cached("aud-px")
        assert registry.membership_count("aud-px") == 0
        fired = pixels.record_visit(Visit(
            user_id="cu3", domain="shop.example", path="/",
            cookie_id=None, pixel_ids=["px-1"], visit_seq=1))
        assert fired
        after = registry.member_bitset_cached("aud-px")
        assert after is not before
        assert registry.membership_count("aud-px") == 1

    def test_legacy_store_count_cache_invalidates_too(self, users, pixels):
        """The legacy object store has no bitsets, but its count cache
        keys on the same epoch — store-API mutations invalidate it."""
        registry = AudienceRegistry(users=users, pixels=pixels,
                                    min_custom_audience_size=5)
        registry.create_page_audience("aud-1", "acct-1", "page-1")
        users.like_page("u3", "page-1")
        assert registry.membership_count("aud-1") == 1
        users.like_page("u4", "page-1")
        assert registry.membership_count("aud-1") == 2
