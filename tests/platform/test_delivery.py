"""Tests for the delivery engine via the platform facade.

These are the deliver-iff-match contract tests — the property the entire
Treads mechanism rests on.
"""

import pytest

from repro.platform.ads import AdCreative


def _activate_sweep(platform, account, campaign, attr_ids, bid=10.0):
    ads = []
    for attr_id in attr_ids:
        ads.append(platform.submit_ad(
            account.account_id, campaign.campaign_id,
            AdCreative("h", f"ref {attr_id}"),
            f"attr:{attr_id} & country:US", bid_cap_cpm=bid,
        ))
    return ads


class TestDeliverIffMatch:
    def test_matching_user_receives_ad(self, platform, funded_account,
                                       campaign):
        user = platform.register_user()
        attr = platform.catalog.partner_attributes()[0]
        user.set_attribute(attr)
        _activate_sweep(platform, funded_account, campaign, [attr.attr_id])
        platform.run_until_saturated()
        assert len(platform.feed(user.user_id)) == 1

    def test_nonmatching_user_never_receives_ad(self, platform,
                                                funded_account, campaign):
        user = platform.register_user()
        attr = platform.catalog.partner_attributes()[0]
        _activate_sweep(platform, funded_account, campaign, [attr.attr_id])
        platform.run_until_saturated()
        assert platform.feed(user.user_id) == []

    def test_each_user_gets_exactly_their_attributes(self, platform,
                                                     funded_account,
                                                     campaign):
        partner = platform.catalog.partner_attributes()
        user_a = platform.register_user()
        user_b = platform.register_user()
        for attr in partner[:5]:
            user_a.set_attribute(attr)
        for attr in partner[3:8]:
            user_b.set_attribute(attr)
        ads = _activate_sweep(platform, funded_account, campaign,
                              [a.attr_id for a in partner[:8]])
        platform.run_until_saturated()
        by_body_a = {ad.body for ad in platform.feed(user_a.user_id)}
        by_body_b = {ad.body for ad in platform.feed(user_b.user_id)}
        assert by_body_a == {f"ref {a.attr_id}" for a in partner[:5]}
        assert by_body_b == {f"ref {a.attr_id}" for a in partner[3:8]}

    def test_frequency_cap_one_impression_per_user(self, platform,
                                                   funded_account, campaign):
        user = platform.register_user()
        attr = platform.catalog.partner_attributes()[0]
        user.set_attribute(attr)
        _activate_sweep(platform, funded_account, campaign, [attr.attr_id])
        platform.run_delivery(slots_per_user=10)
        assert len(platform.feed(user.user_id)) == 1

    def test_rejected_ad_never_delivers(self, platform, funded_account,
                                        campaign):
        user = platform.register_user()
        attr = platform.catalog.partner_attributes()[0]
        user.set_attribute(attr)
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "According to this ad platform, you are: rich."),
            f"attr:{attr.attr_id} & country:US", bid_cap_cpm=10.0,
        )
        assert ad.status.value == "rejected"
        platform.run_until_saturated()
        assert platform.feed(user.user_id) == []


class TestBudgets:
    def test_broke_account_stops_delivering(self, platform, campaign,
                                            funded_account):
        funded_account.budget = 0.0
        user = platform.register_user()
        attr = platform.catalog.partner_attributes()[0]
        user.set_attribute(attr)
        _activate_sweep(platform, funded_account, campaign, [attr.attr_id])
        platform.run_until_saturated()
        assert platform.feed(user.user_id) == []

    def test_budget_decremented_by_spend(self, platform, funded_account,
                                         campaign):
        user = platform.register_user()
        attr = platform.catalog.partner_attributes()[0]
        user.set_attribute(attr)
        before = funded_account.budget
        _activate_sweep(platform, funded_account, campaign, [attr.attr_id])
        platform.run_until_saturated()
        spend = platform.invoice(funded_account.account_id).total
        assert funded_account.budget == pytest.approx(before - spend)


class TestStatsAndViews:
    def test_unique_reach(self, platform, funded_account, campaign):
        users = [platform.register_user() for _ in range(3)]
        attr = platform.catalog.partner_attributes()[0]
        for user in users:
            user.set_attribute(attr)
        ads = _activate_sweep(platform, funded_account, campaign,
                              [attr.attr_id])
        platform.run_until_saturated()
        assert platform.delivery.unique_reach(ads[0].ad_id) == {
            u.user_id for u in users
        }

    def test_run_sessions_counts_slots(self, platform, funded_account,
                                       campaign):
        platform.register_user()
        platform.register_user()
        stats = platform.run_delivery(slots_per_user=3)
        assert stats.slots == 6

    def test_impression_sequence_monotone(self, platform, funded_account,
                                          campaign):
        users = [platform.register_user() for _ in range(4)]
        attr = platform.catalog.partner_attributes()[0]
        for user in users:
            user.set_attribute(attr)
        _activate_sweep(platform, funded_account, campaign, [attr.attr_id])
        platform.run_until_saturated()
        seqs = [imp.seq for imp in platform.delivery.impressions()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_feed_is_copy(self, platform, funded_account, campaign):
        user = platform.register_user()
        feed = platform.feed(user.user_id)
        feed.append("junk")
        assert platform.feed(user.user_id) == []


class TestSharedCreativeImages:
    """Delivered feeds share one frozen image buffer per creative instead
    of deep-copying the pixels on every impression."""

    def _image_ad(self, platform, account, campaign, attr_id):
        from repro.platform.ads import AdImage
        return platform.submit_ad(
            account.account_id, campaign.campaign_id,
            AdCreative("h", "img ad", image=AdImage.blank(16, 16)),
            f"attr:{attr_id} & country:US", bid_cap_cpm=10.0,
        )

    def test_feed_images_share_one_frozen_buffer(self, platform,
                                                 funded_account, campaign):
        attr = platform.catalog.partner_attributes()[0]
        users = [platform.register_user() for _ in range(2)]
        for user in users:
            user.set_attribute(attr)
        ad = self._image_ad(platform, funded_account, campaign, attr.attr_id)
        platform.run_until_saturated()
        images = [platform.feed(u.user_id)[0].image for u in users]
        assert images[0] is images[1]
        # Read-only view: bytes, not the advertiser's mutable bytearray.
        assert isinstance(images[0].pixels, bytes)
        assert images[0].pixels == bytes(ad.creative.image.pixels)

    def test_frozen_view_revalidates_on_pixel_change(self):
        from repro.platform.ads import AdImage
        image = AdImage.blank(4, 4, shade=10)
        first = image.frozen()
        assert image.frozen() is first
        image.pixels[0] = 99
        second = image.frozen()
        assert second is not first
        assert second.pixels[0] == 99

    def test_delivered_feed_still_decodes_stego_payloads(self, platform,
                                                         web):
        from repro.core.client import TreadClient
        from repro.core.provider import TransparencyProvider
        from repro.core.treads import Encoding, Placement

        provider = TransparencyProvider(
            platform, web, budget=200.0,
            encoding=Encoding.STEGANOGRAPHIC,
            placement=Placement.IN_AD_IMAGE,
        )
        attrs = platform.catalog.partner_attributes()[:3]
        users = []
        for _ in range(2):
            user = platform.register_user()
            for attr in attrs:
                user.set_attribute(attr)
            provider.optin.via_page_like(user.user_id)
            users.append(user)
        provider.launch_attribute_sweep(attrs)
        provider.run_delivery()
        pack = provider.publish_decode_pack()
        for user in users:
            profile = TreadClient(user.user_id, platform, pack).sync()
            assert profile.set_attributes == {a.attr_id for a in attrs}
        # Both recipients decoded from the very same frozen buffers.
        feeds = [platform.feed(u.user_id) for u in users]
        shared = {
            item.ad_id: item.image for item in feeds[0] if item.image
        }
        assert shared
        for item in feeds[1]:
            if item.ad_id in shared:
                assert item.image is shared[item.ad_id]
