"""Tests for the delivery engine via the platform facade.

These are the deliver-iff-match contract tests — the property the entire
Treads mechanism rests on.
"""

import pytest

from repro.platform.ads import AdCreative


def _activate_sweep(platform, account, campaign, attr_ids, bid=10.0):
    ads = []
    for attr_id in attr_ids:
        ads.append(platform.submit_ad(
            account.account_id, campaign.campaign_id,
            AdCreative("h", f"ref {attr_id}"),
            f"attr:{attr_id} & country:US", bid_cap_cpm=bid,
        ))
    return ads


class TestDeliverIffMatch:
    def test_matching_user_receives_ad(self, platform, funded_account,
                                       campaign):
        user = platform.register_user()
        attr = platform.catalog.partner_attributes()[0]
        user.set_attribute(attr)
        _activate_sweep(platform, funded_account, campaign, [attr.attr_id])
        platform.run_until_saturated()
        assert len(platform.feed(user.user_id)) == 1

    def test_nonmatching_user_never_receives_ad(self, platform,
                                                funded_account, campaign):
        user = platform.register_user()
        attr = platform.catalog.partner_attributes()[0]
        _activate_sweep(platform, funded_account, campaign, [attr.attr_id])
        platform.run_until_saturated()
        assert platform.feed(user.user_id) == []

    def test_each_user_gets_exactly_their_attributes(self, platform,
                                                     funded_account,
                                                     campaign):
        partner = platform.catalog.partner_attributes()
        user_a = platform.register_user()
        user_b = platform.register_user()
        for attr in partner[:5]:
            user_a.set_attribute(attr)
        for attr in partner[3:8]:
            user_b.set_attribute(attr)
        ads = _activate_sweep(platform, funded_account, campaign,
                              [a.attr_id for a in partner[:8]])
        platform.run_until_saturated()
        by_body_a = {ad.body for ad in platform.feed(user_a.user_id)}
        by_body_b = {ad.body for ad in platform.feed(user_b.user_id)}
        assert by_body_a == {f"ref {a.attr_id}" for a in partner[:5]}
        assert by_body_b == {f"ref {a.attr_id}" for a in partner[3:8]}

    def test_frequency_cap_one_impression_per_user(self, platform,
                                                   funded_account, campaign):
        user = platform.register_user()
        attr = platform.catalog.partner_attributes()[0]
        user.set_attribute(attr)
        _activate_sweep(platform, funded_account, campaign, [attr.attr_id])
        platform.run_delivery(slots_per_user=10)
        assert len(platform.feed(user.user_id)) == 1

    def test_rejected_ad_never_delivers(self, platform, funded_account,
                                        campaign):
        user = platform.register_user()
        attr = platform.catalog.partner_attributes()[0]
        user.set_attribute(attr)
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "According to this ad platform, you are: rich."),
            f"attr:{attr.attr_id} & country:US", bid_cap_cpm=10.0,
        )
        assert ad.status.value == "rejected"
        platform.run_until_saturated()
        assert platform.feed(user.user_id) == []


class TestBudgets:
    def test_broke_account_stops_delivering(self, platform, campaign,
                                            funded_account):
        funded_account.budget = 0.0
        user = platform.register_user()
        attr = platform.catalog.partner_attributes()[0]
        user.set_attribute(attr)
        _activate_sweep(platform, funded_account, campaign, [attr.attr_id])
        platform.run_until_saturated()
        assert platform.feed(user.user_id) == []

    def test_budget_decremented_by_spend(self, platform, funded_account,
                                         campaign):
        user = platform.register_user()
        attr = platform.catalog.partner_attributes()[0]
        user.set_attribute(attr)
        before = funded_account.budget
        _activate_sweep(platform, funded_account, campaign, [attr.attr_id])
        platform.run_until_saturated()
        spend = platform.invoice(funded_account.account_id).total
        assert funded_account.budget == pytest.approx(before - spend)


class TestStatsAndViews:
    def test_unique_reach(self, platform, funded_account, campaign):
        users = [platform.register_user() for _ in range(3)]
        attr = platform.catalog.partner_attributes()[0]
        for user in users:
            user.set_attribute(attr)
        ads = _activate_sweep(platform, funded_account, campaign,
                              [attr.attr_id])
        platform.run_until_saturated()
        assert platform.delivery.unique_reach(ads[0].ad_id) == {
            u.user_id for u in users
        }

    def test_run_sessions_counts_slots(self, platform, funded_account,
                                       campaign):
        platform.register_user()
        platform.register_user()
        stats = platform.run_delivery(slots_per_user=3)
        assert stats.slots == 6

    def test_impression_sequence_monotone(self, platform, funded_account,
                                          campaign):
        users = [platform.register_user() for _ in range(4)]
        attr = platform.catalog.partner_attributes()[0]
        for user in users:
            user.set_attribute(attr)
        _activate_sweep(platform, funded_account, campaign, [attr.attr_id])
        platform.run_until_saturated()
        seqs = [imp.seq for imp in platform.delivery.impressions()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_feed_is_copy(self, platform, funded_account, campaign):
        user = platform.register_user()
        feed = platform.feed(user.user_id)
        feed.append("junk")
        assert platform.feed(user.user_id) == []
