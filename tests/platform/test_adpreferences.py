"""Tests for the ad-preferences page's documented incompleteness."""

import pytest

from repro.platform.pii import record_from_raw


class TestShownAttributes:
    def test_platform_attributes_shown(self, platform):
        user = platform.register_user()
        attr = [a for a in platform.catalog.platform_attributes()
                if a.is_binary][0]
        user.set_attribute(attr)
        view = platform.ad_preferences_for(user.user_id)
        assert attr.attr_id in view.shown_attribute_ids

    def test_partner_attributes_hidden(self, platform):
        """[1]: Facebook's page reveals no data-broker information."""
        user = platform.register_user()
        partner = platform.catalog.partner_attributes()[0]
        user.set_attribute(partner)
        view = platform.ad_preferences_for(user.user_id)
        assert partner.attr_id not in view.shown_attribute_ids

    def test_hidden_partner_ground_truth_helper(self, platform):
        user = platform.register_user()
        partner = platform.catalog.partner_attributes()[0]
        user.set_attribute(partner)
        hidden = platform.ad_preferences.hidden_partner_attributes(user)
        assert hidden == [partner.attr_id]

    def test_multi_attributes_shown(self, platform):
        user = platform.register_user()
        multi = platform.catalog.multi_attributes()[0]
        user.set_attribute(multi, multi.values[0])
        view = platform.ad_preferences_for(user.user_id)
        assert multi.attr_id in view.shown_attribute_ids

    def test_attribute_removed_from_catalog_not_shown(self, platform):
        user = platform.register_user()
        attr = [a for a in platform.catalog.platform_attributes()
                if a.is_binary][0]
        user.set_attribute(attr)
        platform.catalog.remove(attr.attr_id)
        view = platform.ad_preferences_for(user.user_id)
        assert attr.attr_id not in view.shown_attribute_ids


class TestAdvertiserList:
    def test_advertiser_with_custom_audience_listed(self, platform):
        user = platform.register_user()
        platform.users.attach_pii(user.user_id, "email", "a@b.c")
        account = platform.create_ad_account("adv", budget=1.0)
        platform.create_pii_audience(
            account.account_id, [record_from_raw("email", "a@b.c")]
        )
        view = platform.ad_preferences_for(user.user_id)
        assert account.account_id in view.advertisers_with_custom_audiences

    def test_uninvolved_advertiser_not_listed(self, platform):
        user = platform.register_user()
        account = platform.create_ad_account("adv", budget=1.0)
        view = platform.ad_preferences_for(user.user_id)
        assert account.account_id not in view.advertisers_with_custom_audiences

    def test_which_pii_never_disclosed(self, platform):
        """Platforms list advertisers but never which PII they used."""
        user = platform.register_user()
        platform.users.attach_pii(user.user_id, "email", "a@b.c")
        account = platform.create_ad_account("adv", budget=1.0)
        platform.create_pii_audience(
            account.account_id, [record_from_raw("email", "a@b.c")]
        )
        view = platform.ad_preferences_for(user.user_id)
        field_names = set(vars(view))
        assert "pii" not in " ".join(field_names).lower()
