"""Unit tests for user profiles and the user store."""

import pytest

from repro.errors import CatalogError, PIIError
from repro.hashing import hash_pii
from repro.platform.attributes import make_binary, make_multi
from repro.platform.users import UserProfile, UserStore

BIN = make_binary("b1", "Binary", ("Cat",))
MULTI = make_multi("m1", "Multi", ("Cat",), values=("x", "y"))


class TestUserProfile:
    def test_set_binary_attribute(self):
        user = UserProfile(user_id="u1")
        user.set_attribute(BIN)
        assert user.has_attribute("b1")

    def test_binary_with_value_rejected(self):
        user = UserProfile(user_id="u1")
        with pytest.raises(CatalogError):
            user.set_attribute(BIN, "x")

    def test_set_multi_attribute(self):
        user = UserProfile(user_id="u1")
        user.set_attribute(MULTI, "y")
        assert user.attribute_value("m1") == "y"
        assert user.has_attribute("m1")

    def test_multi_without_value_rejected(self):
        user = UserProfile(user_id="u1")
        with pytest.raises(CatalogError):
            user.set_attribute(MULTI)

    def test_multi_with_bad_value_rejected(self):
        user = UserProfile(user_id="u1")
        with pytest.raises(CatalogError):
            user.set_attribute(MULTI, "zzz")

    def test_absent_attribute(self):
        user = UserProfile(user_id="u1")
        assert not user.has_attribute("b1")
        assert user.attribute_value("m1") is None

    def test_clear_attribute(self):
        user = UserProfile(user_id="u1")
        user.set_attribute(BIN)
        user.set_attribute(MULTI, "x")
        user.clear_attribute("b1")
        user.clear_attribute("m1")
        assert not user.has_attribute("b1")
        assert not user.has_attribute("m1")

    def test_add_pii_hashes_internally(self):
        user = UserProfile(user_id="u1")
        user.add_pii("email", "A@b.com")
        digest = hash_pii("email", "a@b.com")
        assert user.has_pii_hash("email", digest)

    def test_unknown_pii_kind_rejected(self):
        user = UserProfile(user_id="u1")
        with pytest.raises(PIIError):
            user.add_pii_hash("ssn", "0" * 64)


class TestUserStore:
    def test_add_and_get(self):
        store = UserStore()
        store.add(UserProfile(user_id="u1"))
        assert store.get("u1").user_id == "u1"
        assert "u1" in store
        assert len(store) == 1

    def test_duplicate_rejected(self):
        store = UserStore()
        store.add(UserProfile(user_id="u1"))
        with pytest.raises(CatalogError):
            store.add(UserProfile(user_id="u1"))

    def test_unknown_get_raises(self):
        with pytest.raises(CatalogError):
            UserStore().get("ghost")

    def test_pii_index_via_attach(self):
        store = UserStore()
        store.add(UserProfile(user_id="u1"))
        digest = store.attach_pii("u1", "phone", "617-555-0100")
        assert store.users_matching_pii("phone", digest) == {"u1"}

    def test_pii_index_unknown_hash_empty(self):
        store = UserStore()
        assert store.users_matching_pii("email", "0" * 64) == set()

    def test_shared_pii_matches_both_users(self):
        """A household landline can map to two accounts."""
        store = UserStore()
        store.add(UserProfile(user_id="u1"))
        store.add(UserProfile(user_id="u2"))
        store.attach_pii("u1", "phone", "617-555-0100")
        digest = store.attach_pii("u2", "phone", "617-555-0100")
        assert store.users_matching_pii("phone", digest) == {"u1", "u2"}

    def test_preexisting_pii_indexed_on_add(self):
        profile = UserProfile(user_id="u1")
        profile.add_pii("email", "x@y.z")
        store = UserStore()
        store.add(profile)
        digest = hash_pii("email", "x@y.z")
        assert store.users_matching_pii("email", digest) == {"u1"}

    def test_users_with_attribute(self):
        store = UserStore()
        u1 = store.add(UserProfile(user_id="u1"))
        store.add(UserProfile(user_id="u2"))
        u1.set_attribute(BIN)
        assert [p.user_id for p in store.users_with_attribute("b1")] == ["u1"]

    def test_iteration_and_user_ids(self):
        store = UserStore()
        store.add(UserProfile(user_id="u1"))
        store.add(UserProfile(user_id="u2"))
        assert store.user_ids() == ["u1", "u2"]
        assert [p.user_id for p in store] == ["u1", "u2"]
