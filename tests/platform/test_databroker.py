"""Unit tests for brokers, ingest matching, and the shutdown switch."""

import pytest

from repro.errors import CatalogError
from repro.platform.attributes import AttributeCatalog, make_binary
from repro.platform.attributes import AttributeSource
from repro.platform.databroker import (
    BrokerNetwork,
    DataBroker,
    ingest_broker_feed,
    shutdown_partner_categories,
)
from repro.platform.users import UserProfile, UserStore


def _catalog():
    return AttributeCatalog(attributes=[
        make_binary("pc-networth-006", "Net worth: $1M - $2M",
                    ("Financial",), source=AttributeSource.PARTNER,
                    broker="Acxiom"),
        make_binary("pc-travel-000", "Frequent flyer", ("Travel",),
                    source=AttributeSource.PARTNER, broker="Epsilon"),
        make_binary("pf-interest-000", "Interested in: Jazz",
                    ("Interests",)),
    ])


def _store_with_user(email="a@b.com"):
    store = UserStore()
    store.add(UserProfile(user_id="u1"))
    store.attach_pii("u1", "email", email)
    return store


class TestIngest:
    def test_matching_record_sets_attributes(self):
        store = _store_with_user()
        broker = DataBroker(name="Acxiom")
        broker.add_record(
            "r1", raw_pii=[("email", "a@b.com")],
            attributes=[("pc-networth-006", None)],
        )
        report = ingest_broker_feed(broker, store, _catalog())
        assert report.records_matched == 1
        assert report.attributes_set == 1
        assert store.get("u1").has_attribute("pc-networth-006")

    def test_unmatched_record_reported(self):
        store = _store_with_user()
        broker = DataBroker(name="Acxiom")
        broker.add_record(
            "r1", raw_pii=[("email", "stranger@nowhere.com")],
            attributes=[("pc-networth-006", None)],
        )
        report = ingest_broker_feed(broker, store, _catalog())
        assert report.records_matched == 0
        assert report.unmatched_record_ids == ["r1"]
        assert not store.get("u1").has_attribute("pc-networth-006")

    def test_any_pii_matches(self):
        """Brokers match greedily on any of the record's PII values."""
        store = _store_with_user()
        store.attach_pii("u1", "phone", "6175550100")
        broker = DataBroker(name="Acxiom")
        broker.add_record(
            "r1",
            raw_pii=[("email", "other@x.com"), ("phone", "617-555-0100")],
            attributes=[("pc-travel-000", None)],
        )
        report = ingest_broker_feed(broker, store, _catalog())
        assert report.records_matched == 1

    def test_broker_cannot_set_platform_attribute(self):
        store = _store_with_user()
        broker = DataBroker(name="Acxiom")
        broker.add_record(
            "r1", raw_pii=[("email", "a@b.com")],
            attributes=[("pf-interest-000", None)],
        )
        with pytest.raises(CatalogError):
            ingest_broker_feed(broker, store, _catalog())

    def test_match_rate(self):
        store = _store_with_user()
        broker = DataBroker(name="Acxiom")
        broker.add_record("r1", [("email", "a@b.com")],
                          [("pc-travel-000", None)])
        broker.add_record("r2", [("email", "nobody@x.com")],
                          [("pc-travel-000", None)])
        report = ingest_broker_feed(broker, store, _catalog())
        assert report.match_rate == 0.5

    def test_empty_broker_zero_rate(self):
        report = ingest_broker_feed(
            DataBroker(name="Empty"), UserStore(), _catalog()
        )
        assert report.match_rate == 0.0


class TestBrokerNetwork:
    def test_broker_get_or_create(self):
        network = BrokerNetwork()
        assert network.broker("Acxiom") is network.broker("Acxiom")
        assert len(network.brokers()) == 1

    def test_ingest_all(self):
        store = _store_with_user()
        network = BrokerNetwork()
        network.broker("Acxiom").add_record(
            "r1", [("email", "a@b.com")], [("pc-networth-006", None)])
        network.broker("Epsilon").add_record(
            "r2", [("email", "a@b.com")], [("pc-travel-000", None)])
        reports = network.ingest_all(store, _catalog())
        assert len(reports) == 2
        assert store.get("u1").has_attribute("pc-travel-000")


class TestShutdown:
    """Paper footnote 2: partner categories shut down in 2018."""

    def test_removes_partner_attrs_from_catalog(self):
        catalog = _catalog()
        removed = shutdown_partner_categories(
            catalog, UserStore(), BrokerNetwork()
        )
        assert sorted(removed) == ["pc-networth-006", "pc-travel-000"]
        assert len(catalog.partner_attributes()) == 0
        assert "pf-interest-000" in catalog  # platform attrs survive

    def test_profiles_retained_by_default(self):
        """"It is unclear whether Facebook continues to internally retain
        attributes sourced from data brokers" — default: retained."""
        catalog = _catalog()
        store = _store_with_user()
        store.get("u1").set_attribute(catalog.get("pc-networth-006"))
        shutdown_partner_categories(catalog, store, BrokerNetwork())
        assert store.get("u1").has_attribute("pc-networth-006")

    def test_scrub_profiles_option(self):
        catalog = _catalog()
        store = _store_with_user()
        store.get("u1").set_attribute(catalog.get("pc-networth-006"))
        shutdown_partner_categories(
            catalog, store, BrokerNetwork(), scrub_profiles=True
        )
        assert not store.get("u1").has_attribute("pc-networth-006")

    def test_network_flag_flipped(self):
        network = BrokerNetwork()
        shutdown_partner_categories(_catalog(), UserStore(), network)
        assert not network.partner_categories_active
