"""The parallel batch sweep: row partitioning, certificates, merging.

Worker-count equality is tested unconditionally — ``fork`` works on a
single visible core; only the *performance* claims (made in the scale
benchmarks, not here) need real parallel hardware.
"""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.platform.parsweep import (
    certify_budgets,
    parallel_sweep,
    partition_rows,
    visible_cores,
)
from repro.store.store import NullStore
from repro.workloads.competition import (
    fixed_competition,
    lognormal_competition,
)

from tests.platform.test_sweep_delivery import engine_state, make_world


def parallel_world(**kwargs):
    kwargs.setdefault("compact", True)
    kwargs.setdefault("store", NullStore())
    return make_world(**kwargs)


class TestPartitionRows:
    def test_covers_rows_exactly_once(self):
        for nrows in (1, 63, 64, 65, 500, 1_000_003):
            for workers in (1, 2, 3, 4, 7, 16):
                ranges = partition_rows(nrows, workers)
                assert len(ranges) <= workers
                assert ranges[0][0] == 0
                assert ranges[-1][1] == nrows
                for (a_start, a_stop), (b_start, b_stop) in zip(
                        ranges, ranges[1:]):
                    assert a_stop == b_start
                    assert a_start < a_stop

    def test_interior_boundaries_are_word_aligned(self):
        for nrows in (500, 1000, 1_000_003):
            for workers in (2, 3, 4, 7):
                for start, stop in partition_rows(nrows, workers)[:-1]:
                    assert start % 64 == 0
                    assert stop % 64 == 0

    def test_edge_cases(self):
        assert partition_rows(0, 4) == []
        assert partition_rows(10, 1) == [(0, 10)]
        # More workers than words of rows: one range, never empty ones.
        assert partition_rows(10, 16) == [(0, 10)]
        with pytest.raises(ValueError, match="positive"):
            partition_rows(100, 0)

    def test_visible_cores_positive(self):
        assert visible_cores() >= 1


class TestCertificates:
    def test_random_draw_is_rejected(self):
        platform, _ads = parallel_world(draw=lognormal_competition(seed=3))
        with pytest.raises(StoreError, match="constant"):
            certify_budgets(platform.delivery, len(platform.users))

    def test_tight_budget_is_rejected(self):
        platform, _ads = parallel_world(budget=0.05,
                                        draw=fixed_competition(5.0))
        with pytest.raises(StoreError, match="certify"):
            certify_budgets(platform.delivery, len(platform.users))

    def test_solvent_world_certifies(self):
        platform, _ads = parallel_world(budget=100.0,
                                        draw=fixed_competition(5.0))
        certify_budgets(platform.delivery, len(platform.users))

    def test_zero_competition_certifies_any_positive_budget(self):
        # The Treads economics: one account, zero competition, zero
        # floor — the price cap is $0, so any budget certifies.
        platform, _ads = parallel_world(budget=0.01)
        certify_budgets(platform.delivery, len(platform.users))


class TestPreconditions:
    def test_needs_compact_engine(self):
        platform, _ads = make_world(compact=False, store=NullStore())
        with pytest.raises(StoreError, match="compact"):
            parallel_sweep(platform.delivery, workers=2)

    def test_needs_record_discarding_store(self):
        platform, _ads = make_world(compact=True)  # MemoryStore journal
        with pytest.raises(StoreError, match="discarding"):
            parallel_sweep(platform.delivery, workers=2)

    def test_uncertifiable_budget_fails_before_forking(self):
        platform, _ads = parallel_world(budget=0.05, users=200,
                                        draw=fixed_competition(5.0))
        with pytest.raises(StoreError, match="certify"):
            parallel_sweep(platform.delivery, workers=2)


class TestWorkerEquality:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_matches_single_process(self, workers):
        parallel, ads_parallel = parallel_world(users=500)
        serial, ads_serial = parallel_world(users=500)
        stats_parallel = parallel_sweep(parallel.delivery, workers=workers)
        stats_serial = serial.delivery.sweep_slots()
        assert stats_parallel == stats_serial
        assert engine_state(parallel, ads_parallel) == \
            engine_state(serial, ads_serial)

    def test_parallel_matches_scalar_with_prices(self):
        """Priced sweeps: counts/reach identical; spend folds per-range
        price sums, so it matches scalar billing only to float tolerance
        (the zero-price Treads economics are exactly identical)."""
        parallel, ads_parallel = parallel_world(
            users=300, accounts=2, draw=fixed_competition(1.0))
        scalar, ads_scalar = parallel_world(
            users=300, accounts=2, draw=fixed_competition(1.0))
        parallel_sweep(parallel.delivery, workers=3)
        scalar.run_until_saturated()
        for ad_parallel, ad_scalar in zip(ads_parallel, ads_scalar):
            assert parallel.delivery.impression_count_for_ad(
                ad_parallel.ad_id) == \
                scalar.delivery.impression_count_for_ad(ad_scalar.ad_id)
            assert parallel.delivery.reach_count(ad_parallel.ad_id) == \
                scalar.delivery.reach_count(ad_scalar.ad_id)
            assert parallel.ledger.spend_for_ad(ad_parallel.ad_id) == \
                pytest.approx(scalar.ledger.spend_for_ad(ad_scalar.ad_id))

    def test_platform_run_sweep_routes_workers(self):
        parallel, ads_parallel = parallel_world(users=300)
        serial, ads_serial = parallel_world(users=300)
        parallel.run_sweep(workers=2)
        serial.run_sweep()
        assert engine_state(parallel, ads_parallel) == \
            engine_state(serial, ads_serial)

    def test_one_range_degenerates_to_inprocess_sweep(self):
        platform, _ads = parallel_world(users=60)
        stats = parallel_sweep(platform.delivery, workers=4)
        assert stats.filled_by_tracked_ads > 0
        # A second pass over saturated inventory delivers nothing.
        assert parallel_sweep(platform.delivery,
                              workers=4).filled_by_tracked_ads == 0
