"""Unit tests for hashed-PII upload validation."""

import pytest

from repro.errors import PIIError
from repro.hashing import hash_pii
from repro.platform.pii import (
    PIIRecord,
    record_from_raw,
    records_from_raw,
    validate_upload,
)


class TestPIIRecord:
    def test_accepts_hashed(self):
        record = PIIRecord(kind="email", digest=hash_pii("email", "a@b.c"))
        assert record.kind == "email"

    def test_rejects_raw_value(self):
        """The property the whole PII flow depends on: platforms (and the
        provider) only ever accept hashes."""
        with pytest.raises(PIIError):
            PIIRecord(kind="email", digest="alice@example.com")

    def test_rejects_unknown_kind(self):
        with pytest.raises(PIIError):
            PIIRecord(kind="ssn", digest="0" * 64)

    def test_record_from_raw_hashes(self):
        record = record_from_raw("phone", "(617) 555-0100")
        assert record.digest == hash_pii("phone", "6175550100")

    def test_records_from_raw_batch(self):
        records = records_from_raw("email", ["a@b.c", "d@e.f"])
        assert len(records) == 2
        assert records[0].digest != records[1].digest


class TestValidateUpload:
    def test_deduplicates_preserving_order(self):
        a = record_from_raw("email", "a@b.c")
        b = record_from_raw("email", "d@e.f")
        assert validate_upload([a, b, a]) == [a, b]

    def test_empty_upload_rejected(self):
        with pytest.raises(PIIError):
            validate_upload([])

    def test_mixed_kinds_allowed(self):
        records = [record_from_raw("email", "a@b.c"),
                   record_from_raw("phone", "6175550100")]
        assert validate_upload(records) == records
