"""The batch sweep engine: vectorized delivery == scalar delivery.

The integration equivalence suite pins the full 2,000-user partner
sweep; these tests pin the engine-level machinery — precondition
errors, block decomposition, partial row ranges, per-spec matcher
fallback routing, multi-account runner-up pricing, and the sweep's
observability counters.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.platform.ads import AdCreative
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.targeting import HasAttr, lower_spec
from repro.workloads.competition import fixed_competition, zero_competition


def make_world(compact=False, users=130, n_ads=6, draw=None,
               budget=100.0, accounts=1, store=None):
    """A columnar delivery world with ``accounts`` competing advertisers."""
    platform = AdPlatform(
        config=PlatformConfig(name="sweng", columnar_users=True,
                              compact_delivery=compact),
        catalog=build_us_catalog(40, 25),
        competing_draw=draw if draw is not None else zero_competition(),
        store=store,
    )
    attrs = platform.catalog.partner_attributes()[:n_ads]
    ads = []
    for a in range(accounts):
        account = platform.create_ad_account(f"adv-{a}", budget=budget)
        campaign = platform.create_campaign(account.account_id, "camp")
        for i, attr in enumerate(attrs):
            ads.append(platform.submit_ad(
                account.account_id, campaign.campaign_id,
                AdCreative("h", f"ref {a}/{attr.attr_id}"),
                f"attr:{attr.attr_id} & country:US",
                bid_cap_cpm=10.0 - a,  # distinct bids across accounts
            ))
    for i in range(users):
        user = platform.register_user(age=20 + i % 50)
        user.set_attribute(attrs[i % len(attrs)])
        if i % 3 == 0:
            user.set_attribute(attrs[(i + 1) % len(attrs)])
    return platform, ads


def engine_state(platform, ads):
    """Canonical observable delivery state for equality comparisons."""
    engine = platform.delivery
    state = {
        "impressions": engine.impression_count(),
        "by_ad": {ad.ad_id: engine.impression_count_for_ad(ad.ad_id)
                  for ad in ads},
        "reach": {ad.ad_id: engine.reach_count(ad.ad_id) for ad in ads},
        "spend": {ad.ad_id: platform.ledger.spend_for_ad(ad.ad_id)
                  for ad in ads},
        "budgets": {ad.account_id: platform.inventory.account(
            ad.account_id).budget for ad in ads},
    }
    return json.dumps(state, sort_keys=True)


class TestPreconditions:
    def test_needs_columnar_store(self):
        platform = AdPlatform(
            config=PlatformConfig(name="legacy"),
            catalog=build_us_catalog(40, 25),
            competing_draw=zero_competition(),
        )
        with pytest.raises(StoreError, match="columnar"):
            platform.delivery.sweep_slots()
        with pytest.raises(StoreError, match="columnar"):
            platform.run_sweep()

    def test_needs_unit_frequency_cap(self):
        platform, _ads = make_world()
        platform.delivery.frequency_cap = 3
        with pytest.raises(ValueError, match="frequency cap"):
            platform.delivery.sweep_slots()

    def test_block_rows_must_be_word_multiple(self):
        platform, _ads = make_world(users=10)
        with pytest.raises(ValueError, match="block_rows"):
            platform.delivery.sweep_slots(block_rows=100)

    def test_range_validation(self):
        platform, _ads = make_world(users=70)
        with pytest.raises(ValueError, match="boundary"):
            platform.delivery.sweep_slots((10, 70))
        with pytest.raises(ValueError, match="outside"):
            platform.delivery.sweep_slots((0, 1000))


class TestBlockDecomposition:
    def test_tiny_blocks_match_one_big_block(self):
        platform_a, ads_a = make_world(users=200)
        platform_b, ads_b = make_world(users=200)
        stats_a = platform_a.delivery.sweep_slots(block_rows=64)
        stats_b = platform_b.delivery.sweep_slots()
        assert stats_a == stats_b
        assert engine_state(platform_a, ads_a) == \
            engine_state(platform_b, ads_b)

    def test_partial_ranges_compose_to_full_sweep(self):
        platform_a, ads_a = make_world(users=150)
        platform_b, ads_b = make_world(users=150)
        platform_a.delivery.sweep_slots((0, 64))
        platform_a.delivery.sweep_slots((64, 150))
        platform_b.delivery.sweep_slots()
        assert engine_state(platform_a, ads_a) == \
            engine_state(platform_b, ads_b)

    def test_empty_range_is_a_noop(self):
        platform, _ads = make_world(users=70)
        stats = platform.delivery.sweep_slots((64, 64))
        assert stats.slots == 0


class TestScalarEquality:
    @pytest.mark.parametrize("compact", [False, True])
    @pytest.mark.parametrize("accounts", [1, 2])
    def test_sweep_equals_scalar_loop(self, compact, accounts):
        platform_a, ads_a = make_world(compact=compact, accounts=accounts)
        platform_b, ads_b = make_world(compact=compact, accounts=accounts)
        stats_sweep = platform_a.run_sweep()
        stats_scalar = platform_b.run_until_saturated()
        assert stats_sweep == stats_scalar
        assert engine_state(platform_a, ads_a) == \
            engine_state(platform_b, ads_b)

    def test_multi_account_second_price_matches(self):
        """Two accounts bidding on the same users: the sweep's runner-up
        column must reproduce the scalar auction's clearing prices."""
        platform_a, ads_a = make_world(accounts=2,
                                       draw=fixed_competition(1.0))
        platform_b, ads_b = make_world(accounts=2,
                                       draw=fixed_competition(1.0))
        platform_a.run_sweep()
        platform_b.run_until_saturated()
        assert engine_state(platform_a, ads_a) == \
            engine_state(platform_b, ads_b)
        # Winner pays the runner-up's bid, not its own: spend exists and
        # reflects second-price, 9 CPM (the losing account's bid).
        winner_spend = sum(platform_a.ledger.spend_for_ad(ad.ad_id)
                           for ad in ads_a
                           if ad.bid_cap_cpm == 10.0)
        winner_count = sum(
            platform_a.delivery.impression_count_for_ad(ad.ad_id)
            for ad in ads_a if ad.bid_cap_cpm == 10.0)
        assert winner_count > 0
        assert winner_spend == pytest.approx(winner_count * 9.0 / 1000.0)

    def test_second_sweep_delivers_nothing(self):
        platform, _ads = make_world()
        first = platform.run_sweep()
        assert first.filled_by_tracked_ads > 0
        second = platform.run_sweep()
        assert second.filled_by_tracked_ads == 0


class OpaquePredicate(HasAttr):
    """Compiles with base semantics but defeats the exact-type lowerer."""


class TestFallbackRouting:
    def _world_with_opaque_spec(self):
        platform, ads = make_world(users=96, n_ads=3)
        account_id = ads[0].account_id
        campaign_id = ads[0].campaign_id
        attr = platform.catalog.partner_attributes()[10]
        for view in platform.users:
            if view.row % 5 == 0:
                view.set_attribute(attr)
        from repro.platform.targeting import TargetingSpec
        opaque = platform.submit_ad(
            account_id, campaign_id, AdCreative("h", "opaque"),
            TargetingSpec(expr=OpaquePredicate(attr.attr_id)),
            bid_cap_cpm=10.0)
        assert opaque.status.value == "active"
        return platform, ads + [opaque]

    def test_unlowerable_spec_falls_back_to_matcher(self):
        # Counters bind to the registry active at engine construction,
        # so the swept world is built inside the registry context.
        with use_registry(MetricsRegistry("sweeptest")) as reg:
            platform_a, ads_a = self._world_with_opaque_spec()
            opaque = ads_a[-1]
            assert lower_spec(opaque.targeting) is None
            platform_a.run_sweep()
            assert reg.counter(
                "delivery.sweep_fallback_specs").value >= 1
            assert reg.counter("delivery.sweep_rounds").value >= 1
        platform_b, ads_b = self._world_with_opaque_spec()
        platform_b.run_until_saturated()
        assert engine_state(platform_a, ads_a) == \
            engine_state(platform_b, ads_b)
        assert platform_a.delivery.impression_count_for_ad(
            ads_a[-1].ad_id) > 0


class TestBudgetFallback:
    def test_budget_flip_round_replays_scalar(self):
        """A budget too small to fund a full round forces the certificate
        down the scalar-replay path; outcomes must still match."""
        with use_registry(MetricsRegistry("sweeptest")) as reg:
            platform_a, ads_a = make_world(budget=0.05,
                                           draw=fixed_competition(5.0))
            platform_a.run_sweep()
            assert reg.counter(
                "delivery.sweep_budget_fallback_rounds").value >= 1
        platform_b, ads_b = make_world(budget=0.05,
                                       draw=fixed_competition(5.0))
        platform_b.run_until_saturated()
        assert engine_state(platform_a, ads_a) == \
            engine_state(platform_b, ads_b)
