"""Property suite: the columnar store is observationally equivalent to
the legacy object store.

Hypothesis drives identical random operation sequences into a
``UserStore`` of ``UserProfile`` objects and a ``ColumnarUserStore`` of
packed numpy columns, then asserts every observable the platform layers
read — per-user attribute probes, store-level inverted queries, PII
matching, and audience membership of every kind — answers identically.
This is the license for every layer above to dispatch on store type
without re-proving its own behavior.

The property classes simply don't exist when hypothesis is absent
(some CI environments install only the runtime deps); the deterministic
``TestDeterministicEquivalence`` runs everywhere so plain ``pytest``
still exercises the seam.
"""

from repro.hashing import hash_pii
from repro.platform.attributes import (
    AttributeCatalog,
    make_binary,
    make_multi,
)
from repro.platform.audiences import AudienceRegistry
from repro.platform.colstore import ColumnarUserStore
from repro.platform.pii import record_from_raw
from repro.platform.pixels import PixelRegistry
from repro.platform.users import UserProfile, UserStore

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI without hypothesis
    HAVE_HYPOTHESIS = False

USER_IDS = tuple(f"u-{index:03d}" for index in range(6))
BIN_NAMES = ("Salsa", "Jazz", "Soccer", "Chess", "Gardening")
BINS = tuple(make_binary(f"b{i}", name, ("Interest",))
             for i, name in enumerate(BIN_NAMES))
MULTIS = (
    make_multi("m0", "Tier", ("Demo",), values=("low", "mid", "high")),
    make_multi("m1", "Band", ("Demo",), values=("x", "y")),
)
PAGES = ("p0", "p1")
PII_VALUES = ("a@x.com", "b@x.com", "c@x.com")
ALL_ATTR_IDS = tuple(a.attr_id for a in BINS + MULTIS)


def _op_strategy():
    user = st.sampled_from(USER_IDS)
    return st.lists(
        st.one_of(
            st.tuples(st.just("set_bin"), user, st.sampled_from(BINS)),
            st.tuples(st.just("clear"), user,
                      st.sampled_from(ALL_ATTR_IDS)),
            st.tuples(st.just("set_multi"), user, st.sampled_from(MULTIS),
                      st.sampled_from(("low", "mid", "high", "x", "y"))),
            st.tuples(st.just("like"), user, st.sampled_from(PAGES)),
            st.tuples(st.just("unlike"), user, st.sampled_from(PAGES)),
            st.tuples(st.just("pii"), user, st.sampled_from(PII_VALUES)),
        ),
        max_size=40,
    )




def _build_stores(ops):
    """Apply one op sequence to both stores; returns (legacy, columnar)."""
    legacy = UserStore()
    columnar = ColumnarUserStore()
    for index, user_id in enumerate(USER_IDS):
        legacy.add(UserProfile(user_id=user_id, age=20 + index,
                               gender="female" if index % 2 else "male",
                               zip_code=f"{10001 + index:05d}"))
        columnar.new_user(user_id, age=20 + index,
                          gender="female" if index % 2 else "male",
                          zip_code=f"{10001 + index:05d}")
    for op in ops:
        for store in (legacy, columnar):
            user = store.get(op[1])
            if op[0] == "set_bin":
                user.set_attribute(op[2])
            elif op[0] == "clear":
                user.clear_attribute(op[2])
            elif op[0] == "set_multi":
                attribute, value = op[2], op[3]
                if value in attribute.values:
                    user.set_attribute(attribute, value)
            elif op[0] == "like":
                store.like_page(op[1], op[2])
            elif op[0] == "unlike":
                user.liked_pages.discard(op[2])
            elif op[0] == "pii":
                store.attach_pii(op[1], "email", op[2])
    return legacy, columnar


def _assert_observationally_equal(legacy, columnar):
    assert legacy.user_ids() == columnar.user_ids()
    for user_id in USER_IDS:
        profile = legacy.get(user_id)
        view = columnar.get(user_id)
        assert sorted(profile.attribute_ids()) == sorted(view.attribute_ids())
        for attr_id in ALL_ATTR_IDS:
            assert profile.has_attribute(attr_id) == \
                view.has_attribute(attr_id), (user_id, attr_id)
            assert profile.attribute_value(attr_id) == \
                view.attribute_value(attr_id), (user_id, attr_id)
        assert set(profile.liked_pages) == set(view.liked_pages)
        assert (profile.age, profile.gender, profile.zip_code) == \
            (view.age, view.gender, view.zip_code)
    for attr_id in ALL_ATTR_IDS:
        assert [p.user_id for p in legacy.users_with_attribute(attr_id)] \
            == [v.user_id for v in columnar.users_with_attribute(attr_id)]
    for value in PII_VALUES:
        digest = hash_pii("email", value)
        assert legacy.users_matching_pii("email", digest) == \
            columnar.users_matching_pii("email", digest)


def _audience_memberships(store):
    """Members of one audience of each kind, built over ``store``."""
    catalog = AttributeCatalog(attributes=list(BINS + MULTIS))
    registry = AudienceRegistry(
        users=store, pixels=PixelRegistry(), catalog=catalog,
        min_custom_audience_size=1)
    registry.create_page_audience("aud-page", "acct", PAGES[0])
    registry.create_keyword_audience("aud-kw", "acct",
                                     [BIN_NAMES[0], BIN_NAMES[1]])
    registry.create_pii_audience(
        "aud-pii", "acct",
        [record_from_raw("email", v) for v in PII_VALUES])
    registry.create_lookalike_audience("aud-look", "acct", "aud-pii",
                                       similarity_threshold=2)
    out = {}
    for audience_id in ("aud-page", "aud-kw", "aud-pii", "aud-look"):
        out[audience_id] = sorted(registry.members(audience_id))
        for user_id in USER_IDS:
            key = (audience_id, user_id)
            out[key] = registry.is_member(audience_id, user_id)
        out[audience_id, "reach"] = str(
            registry.estimated_reach(audience_id))
    return out


if HAVE_HYPOTHESIS:
    class TestPropertyEquivalence:
        @settings(max_examples=80, deadline=None)
        @given(ops=_op_strategy())
        def test_random_ops_observationally_equal(self, ops):
            legacy, columnar = _build_stores(ops)
            _assert_observationally_equal(legacy, columnar)

        @settings(max_examples=40, deadline=None)
        @given(ops=_op_strategy())
        def test_audience_membership_equal(self, ops):
            legacy, columnar = _build_stores(ops)
            assert _audience_memberships(legacy) == \
                _audience_memberships(columnar)


class TestDeterministicEquivalence:
    """No-hypothesis fallback pinning the same seam on a fixed script."""

    OPS = [
        ("set_bin", "u-000", BINS[0]),
        ("set_bin", "u-000", BINS[1]),
        ("set_bin", "u-001", BINS[0]),
        ("set_multi", "u-002", MULTIS[0], "mid"),
        ("set_multi", "u-002", MULTIS[0], "high"),  # overwrite
        ("like", "u-003", PAGES[0]),
        ("like", "u-000", PAGES[0]),
        ("unlike", "u-003", PAGES[0]),
        ("pii", "u-004", PII_VALUES[0]),
        ("pii", "u-005", PII_VALUES[0]),  # shared digest, two users
        ("clear", "u-000", "b1"),
        ("clear", "u-002", "m0"),
    ]

    def test_fixed_script(self):
        legacy, columnar = _build_stores(self.OPS)
        _assert_observationally_equal(legacy, columnar)
        assert _audience_memberships(legacy) == \
            _audience_memberships(columnar)
