"""Unit tests for the packed-uint64 bitset helpers.

These pin the encoding the whole columnar stack leans on: bit ``i``
lives in word ``i >> 6`` at position ``i & 63`` (little-endian within
the word), and every helper round-trips through that layout.
"""

import numpy as np
import pytest

from repro.platform import bitset


class TestBitLayout:
    def test_words_for_rounds_up(self):
        assert bitset.words_for(0) == 1
        assert bitset.words_for(1) == 1
        assert bitset.words_for(64) == 1
        assert bitset.words_for(65) == 2
        assert bitset.words_for(129) == 3

    def test_set_test_clear_round_trip(self):
        bits = bitset.make_bitset(200)
        for index in (0, 1, 63, 64, 65, 127, 128, 199):
            assert not bitset.test_bit(bits, index)
            bitset.set_bit(bits, index)
            assert bitset.test_bit(bits, index)
        assert bitset.popcount(bits) == 8
        bitset.clear_bit(bits, 64)
        assert not bitset.test_bit(bits, 64)
        assert bitset.popcount(bits) == 7

    def test_test_bit_past_width_is_false(self):
        bits = bitset.make_bitset(64)
        assert not bitset.test_bit(bits, 1000)

    def test_ensure_width_preserves_bits(self):
        bits = bitset.make_bitset(10)
        bitset.set_bit(bits, 3)
        wide = bitset.ensure_width(bits, 1000)
        assert wide.shape[0] == bitset.words_for(1000)
        assert bitset.test_bit(wide, 3)
        assert bitset.popcount(wide) == 1
        # Already wide enough: same array back.
        assert bitset.ensure_width(wide, 5) is wide


class TestIndicesRoundTrip:
    def test_from_to_indices(self):
        indices = [0, 5, 63, 64, 200, 511]
        bits = bitset.from_indices(indices, 512)
        assert list(bitset.to_indices(bits)) == indices
        assert bitset.popcount(bits) == len(indices)

    def test_empty(self):
        bits = bitset.from_indices([], 100)
        assert bitset.popcount(bits) == 0
        assert list(bitset.to_indices(bits)) == []

    def test_random_round_trip(self):
        rng = np.random.default_rng(7)
        indices = sorted(
            int(i) for i in rng.choice(4096, size=300, replace=False))
        bits = bitset.from_indices(indices, 4096)
        assert list(bitset.to_indices(bits)) == indices
        assert list(bitset.iter_indices(bits)) == indices


class TestSetAlgebra:
    def test_union_zero_extends(self):
        a = bitset.from_indices([1], 64)
        b = bitset.from_indices([100], 128)
        u = bitset.union(a, b)
        assert sorted(bitset.iter_indices(u)) == [1, 100]

    def test_intersect_common_width(self):
        a = bitset.from_indices([1, 70], 128)
        b = bitset.from_indices([1], 64)
        assert list(bitset.to_indices(bitset.intersect(a, b))) == [1]
        assert bitset.intersect_count(a, b) == 1

    def test_union_all(self):
        rows = [bitset.from_indices([i], 256) for i in (0, 64, 128)]
        merged = bitset.union_all(rows, 256)
        assert list(bitset.to_indices(merged)) == [0, 64, 128]

    def test_row_popcounts(self):
        matrix = np.zeros((3, 2), dtype=np.uint64)
        bitset.set_bit(matrix[0], 0)
        bitset.set_bit(matrix[0], 100)
        bitset.set_bit(matrix[2], 64)
        assert list(bitset.row_popcounts(matrix)) == [2, 0, 1]


class TestSerialization:
    def test_bitset_b64_round_trip(self):
        bits = bitset.from_indices([3, 64, 500], 512)
        again = bitset.bitset_from_b64(bitset.bitset_to_b64(bits))
        assert np.array_equal(bits, again)

    def test_matrix_b64_round_trip(self):
        matrix = np.zeros((4, 3), dtype=np.uint64)
        bitset.set_bit(matrix[1], 65)
        bitset.set_bit(matrix[3], 0)
        data = bitset.matrix_to_b64(matrix)
        again = bitset.matrix_from_b64(data, 4, 3)
        assert np.array_equal(matrix, again)


class TestColumnExtraction:
    @pytest.mark.parametrize("bit", [0, 1, 63, 64, 150])
    def test_column_matches_per_row_probe(self, bit):
        rng = np.random.default_rng(bit + 1)
        nrows = 70
        matrix = rng.integers(0, 2**63, size=(80, 3), dtype=np.uint64)
        column = bitset.column_bitset(matrix, nrows, bit)
        expected = [row for row in range(nrows)
                    if bitset.test_bit(matrix[row], bit)]
        assert list(bitset.to_indices(column)) == expected

    def test_empty_matrix(self):
        matrix = np.zeros((0, 1), dtype=np.uint64)
        assert bitset.popcount(bitset.column_bitset(matrix, 0, 5)) == 0
