"""Shared fixtures.

Most tests want a *deterministic* platform: zero ambient competition (so
every eligible ad wins its auction) and a reduced catalog (so sweeps are
fast). The full 614+507 catalog is exercised where counts matter (catalog
tests, validation-scenario integration tests).
"""

from __future__ import annotations

import pytest

from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.workloads.competition import zero_competition


@pytest.fixture
def small_catalog():
    """A reduced catalog: 40 platform (incl. 4 multi) + 25 partner attrs."""
    return build_us_catalog(platform_count=40, partner_count=25)


@pytest.fixture
def platform(small_catalog):
    """Deterministic platform: zero competition, small catalog."""
    return AdPlatform(
        config=PlatformConfig(name="fbsim"),
        catalog=small_catalog,
        competing_draw=zero_competition(),
    )


@pytest.fixture
def web():
    return WebDirectory()


@pytest.fixture
def full_platform():
    """Full-catalog deterministic platform for count-sensitive tests."""
    return AdPlatform(
        config=PlatformConfig(name="fbfull"),
        competing_draw=zero_competition(),
    )


@pytest.fixture
def funded_account(platform):
    return platform.create_ad_account("advertiser", budget=100.0)


@pytest.fixture
def campaign(platform, funded_account):
    return platform.create_campaign(funded_account.account_id, "camp")
