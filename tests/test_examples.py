"""Smoke tests: every shipped example must run clean, end to end.

Each example carries its own internal assertions (they verify their
reveals against ground truth), so a zero exit status is a meaningful
check, not just "it didn't crash".
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.stem
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
