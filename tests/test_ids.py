"""Unit tests for deterministic id generation."""

from repro.ids import IdFactory


class TestIdFactory:
    def test_sequence_per_kind(self):
        ids = IdFactory()
        assert ids.next("user") == "user-000000"
        assert ids.next("user") == "user-000001"

    def test_kinds_independent(self):
        ids = IdFactory()
        ids.next("user")
        assert ids.next("ad") == "ad-000000"

    def test_prefix(self):
        ids = IdFactory(prefix="fb")
        assert ids.next("user") == "fb-user-000000"

    def test_two_factories_independent(self):
        a, b = IdFactory(prefix="a"), IdFactory(prefix="b")
        a.next("user")
        assert b.next("user") == "b-user-000000"

    def test_peek_count_does_not_consume(self):
        ids = IdFactory()
        ids.next("user")
        ids.next("user")
        assert ids.peek_count("user") == 2
        assert ids.next("user") == "user-000002"

    def test_peek_on_fresh_kind(self):
        ids = IdFactory()
        assert ids.peek_count("pixel") == 0
        assert ids.next("pixel") == "pixel-000000"
