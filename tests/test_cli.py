"""Tests for the command-line interface."""

import json
import logging

import pytest

from repro import __version__
from repro.cli import main
from repro.obs.tracing import load_jsonl_spans


class TestCatalog:
    def test_stats(self, capsys):
        assert main(["catalog", "stats"]) == 0
        out = capsys.readouterr().out
        assert "614" in out
        assert "507" in out
        assert "Acxiom" in out

    def test_search_hits(self, capsys):
        assert main(["catalog", "search", "net worth"]) == 0
        out = capsys.readouterr().out
        assert "Net worth" in out
        assert "partner" in out

    def test_search_miss_exit_code(self, capsys):
        assert main(["catalog", "search", "zzzznope"]) == 1

    def test_search_limit(self, capsys):
        main(["catalog", "search", "segment", "--limit", "2"])
        out = capsys.readouterr().out
        assert "more (raise --limit)" in out


class TestDemoAndValidate:
    def test_demo_succeeds(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Treads revealed 3" in out
        assert "partner data hidden" in out

    def test_validate_succeeds(self, capsys):
        assert main(["validate", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "508" in out
        assert "yes" in out

    def test_validate_custom_bid(self, capsys):
        assert main(["validate", "--seed", "7", "--bid-cpm", "20"]) == 0


class TestCostAndScale:
    def test_cost_table_paper_numbers(self, capsys):
        assert main(["cost", "--cpm", "2.0", "--attributes", "50"]) == 0
        out = capsys.readouterr().out
        assert "$0.0020" in out
        assert "$0.1000" in out

    def test_scale_table(self, capsys):
        assert main(["scale", "--m", "97"]) == 0
        out = capsys.readouterr().out
        assert "97" in out
        assert "7" in out

    def test_attack_command(self, capsys):
        assert main(["attack"]) == 0
        out = capsys.readouterr().out
        assert "billed impressions: 1" in out
        assert "billed impressions: 0" in out
        assert "below 1000" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestStats:
    def test_demo_scenario_table(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        # Scenario stdout is swallowed; only the metrics table prints.
        assert "Treads revealed" not in out
        for line in out.splitlines():
            cells = [c.strip() for c in line.split("|")]
            if cells[0] in ("delivery.slots_served",
                            "delivery.match_cache_hits"):
                assert int(cells[2]) > 0, line
            if cells[0] == "auction.contenders":
                assert "n=0" not in cells[2], line

    def test_prometheus_format(self, capsys):
        assert main(["stats", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE delivery_slots_served counter" in out
        assert '_bucket{le="+Inf"}' in out

    def test_jsonl_format_is_strict_json(self, capsys):
        assert main(["stats", "--format", "jsonl"]) == 0
        records = [json.loads(line) for line
                   in capsys.readouterr().out.splitlines()]
        names = {r["name"] for r in records}
        assert "delivery.slots_served" in names
        assert all("kind" in r for r in records)

    def test_validate_scenario(self, capsys):
        assert main(["stats", "--scenario", "validate"]) == 0
        out = capsys.readouterr().out
        assert "provider.treads_launched" in out


class TestTraceOut:
    def test_demo_writes_valid_span_jsonl(self, tmp_path, capsys):
        trace_file = tmp_path / "spans.jsonl"
        assert main(["demo", "--trace-out", str(trace_file)]) == 0
        spans = load_jsonl_spans(trace_file.read_text())
        names = {s.name for s in spans}
        assert "serve_slot" in names
        assert "delivery.run_until_saturated" in names
        parents = {s.span_id: s for s in spans}
        for span in spans:
            if span.name == "serve_slot":
                assert parents[span.parent_id].name.startswith("delivery.")

    def test_stats_accepts_trace_out(self, tmp_path, capsys):
        trace_file = tmp_path / "spans.jsonl"
        assert main(["stats", "--trace-out", str(trace_file)]) == 0
        assert load_jsonl_spans(trace_file.read_text())


class TestVerbosityAndVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_default_run_emits_nothing_on_stderr(self, capsys):
        assert main(["demo"]) == 0
        assert capsys.readouterr().err == ""

    def test_verbose_logs_to_stderr(self, capsys):
        logger = logging.getLogger("repro")
        before_level = logger.level
        try:
            assert main(["-v", "demo"]) == 0
            err = capsys.readouterr().err
            assert "INFO repro." in err
        finally:
            logger.setLevel(before_level)
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_cli_handler", False):
                    logger.removeHandler(handler)

    def test_verbose_handler_not_duplicated(self, capsys):
        logger = logging.getLogger("repro")
        before_level = logger.level
        try:
            main(["-v", "demo"])
            main(["-v", "demo"])
            cli_handlers = [h for h in logger.handlers
                            if getattr(h, "_repro_cli_handler", False)]
            assert len(cli_handlers) == 1
        finally:
            logger.setLevel(before_level)
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_cli_handler", False):
                    logger.removeHandler(handler)


class TestPopulate:
    def test_columnar_stats_table(self, capsys):
        assert main(["populate", "--users", "120", "--columnar",
                     "--stats", "--chunk-size", "50"]) == 0
        out = capsys.readouterr().out
        assert "columnar" in out
        assert "120" in out
        assert "column bytes" in out
        assert "dense ids" in out

    def test_legacy_store_points_at_columnar_for_stats(self, capsys):
        assert main(["populate", "--users", "30", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "legacy" in out
        assert "rerun with" in out

    def test_rejects_nonpositive_users(self, capsys):
        assert main(["populate", "--users", "0"]) == 2
        assert "--users must be >= 1" in capsys.readouterr().err
