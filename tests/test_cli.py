"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCatalog:
    def test_stats(self, capsys):
        assert main(["catalog", "stats"]) == 0
        out = capsys.readouterr().out
        assert "614" in out
        assert "507" in out
        assert "Acxiom" in out

    def test_search_hits(self, capsys):
        assert main(["catalog", "search", "net worth"]) == 0
        out = capsys.readouterr().out
        assert "Net worth" in out
        assert "partner" in out

    def test_search_miss_exit_code(self, capsys):
        assert main(["catalog", "search", "zzzznope"]) == 1

    def test_search_limit(self, capsys):
        main(["catalog", "search", "segment", "--limit", "2"])
        out = capsys.readouterr().out
        assert "more (raise --limit)" in out


class TestDemoAndValidate:
    def test_demo_succeeds(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Treads revealed 3" in out
        assert "partner data hidden" in out

    def test_validate_succeeds(self, capsys):
        assert main(["validate", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "508" in out
        assert "yes" in out

    def test_validate_custom_bid(self, capsys):
        assert main(["validate", "--seed", "7", "--bid-cpm", "20"]) == 0


class TestCostAndScale:
    def test_cost_table_paper_numbers(self, capsys):
        assert main(["cost", "--cpm", "2.0", "--attributes", "50"]) == 0
        out = capsys.readouterr().out
        assert "$0.0020" in out
        assert "$0.1000" in out

    def test_scale_table(self, capsys):
        assert main(["scale", "--m", "97"]) == 0
        out = capsys.readouterr().out
        assert "97" in out
        assert "7" in out

    def test_attack_command(self, capsys):
        assert main(["attack"]) == 0
        out = capsys.readouterr().out
        assert "billed impressions: 1" in out
        assert "billed impressions: 0" in out
        assert "below 1000" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
