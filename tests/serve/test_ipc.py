"""The IPC layer on its own: framing codec, bridging claims, workers.

The equivalence and recovery suites prove the process backend
end-to-end; these tests pin the pieces — the length-prefixed codec's
edge cases, the journal-consistent ``claim_through`` bridge, worker
lifecycle (spawn, serve, checkpoint, clean shutdown), the seed
snapshot written on a seeded spawn, and the metrics merge-back.
"""

from __future__ import annotations

import os
import socket
import threading

import pytest

from repro.obs import metrics as _metrics
from repro.serve import (
    AdRequest,
    Framer,
    KeyedCompetition,
    RuntimeConfig,
    ServingRuntime,
    WorkerLost,
)
from repro.serve.sharding import shard_snapshot_path
from repro.store.records import SlotClaimed
from repro.store.snapshot import Snapshot


@pytest.fixture
def framer_pair():
    left_sock, right_sock = socket.socketpair()
    left, right = Framer(left_sock), Framer(right_sock)
    yield left, right
    left.close()
    right.close()


class TestFramer:
    def test_round_trip(self, framer_pair):
        left, right = framer_pair
        message = ("serve", [("u1", 0, 2), ("u2", 4, 1)])
        left.send(message)
        assert right.recv() == message

    def test_many_messages_in_order(self, framer_pair):
        left, right = framer_pair
        for i in range(200):
            left.send({"seq": i})
        for i in range(200):
            assert right.recv() == {"seq": i}

    def test_large_payload(self, framer_pair):
        left, right = framer_pair
        payload = ["x" * 1024] * 4096  # ~4 MiB, spans many recv chunks
        done = threading.Event()
        received = []

        def reader():
            received.append(right.recv())
            done.set()

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        left.send(payload)
        assert done.wait(timeout=30)
        assert received[0] == payload

    def test_byte_accounting_includes_headers(self, framer_pair):
        left, right = framer_pair
        left.send("ping")
        right.recv()
        assert left.bytes_sent > 4
        assert right.bytes_received == left.bytes_sent

    def test_closed_peer_raises_worker_lost(self, framer_pair):
        left, right = framer_pair
        right.close()
        with pytest.raises(WorkerLost):
            left.recv()

    def test_oversize_frame_rejected_at_send(self, framer_pair):
        left, _ = framer_pair
        from repro.serve import ipc

        huge = b"x" * (ipc.MAX_FRAME_BYTES + 1)
        with pytest.raises(ValueError, match="frame"):
            left.send(huge)

    def test_corrupt_length_prefix_rejected(self):
        left_sock, right_sock = socket.socketpair()
        try:
            left_sock.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(WorkerLost, match="corrupt"):
                Framer(right_sock).recv()
        finally:
            left_sock.close()
            right_sock.close()


class TestClaimThrough:
    def test_bridges_gap_and_journals_delta(self, make_world):
        from repro.serve import ShardRouter

        router = ShardRouter(make_world(users=5), num_shards=1)
        shard = router.shards[0]
        user_id = router.platform.users.user_ids()[0]
        shard.claim_slots(user_id, 2)  # seq now 2
        # parent shed a 3-slot request: the worker sees the next request
        # at base_seq 5 and must bridge 2 -> 7
        shard.claim_through(user_id, 7)
        assert shard.slot_seq[user_id] == 7
        claimed = [record for record in shard.store.records()
                   if isinstance(record, SlotClaimed)
                   and record.user_id == user_id]
        assert sum(record.slots for record in claimed) == 7

    def test_noop_when_target_not_ahead(self, make_world):
        from repro.serve import ShardRouter

        router = ShardRouter(make_world(users=5), num_shards=1)
        shard = router.shards[0]
        user_id = router.platform.users.user_ids()[0]
        shard.claim_slots(user_id, 4)
        before = len(shard.store.records())
        shard.claim_through(user_id, 3)
        assert shard.slot_seq[user_id] == 4
        assert len(shard.store.records()) == before


class TestWorkerLifecycle:
    def _runtime(self, platform, tmp_path=None, shards=2):
        return ServingRuntime(
            platform,
            RuntimeConfig(
                num_shards=shards, backend="process",
                journal_dir=None if tmp_path is None else str(tmp_path),
            ),
            competition=KeyedCompetition(seed=13),
        )

    def test_ipc_metrics_metered(self, make_world):
        registry = _metrics.MetricsRegistry("ipc-meter")
        with _metrics.use_registry(registry):
            platform = make_world(users=10)
            runtime = self._runtime(platform)
            with runtime:
                results = runtime.serve_and_wait([
                    AdRequest(uid, slots=1)
                    for uid in platform.users.user_ids()
                ])
            assert all(result.ok for result in results)
        assert registry.counter("serve.ipc_batches").value > 0
        assert registry.counter("serve.ipc_bytes").value > 0
        assert registry.counter("serve.workers_lost").value == 0

    def test_worker_metrics_merge_back(self, make_world):
        """Delivery happened only in the workers, yet after stop the
        parent registry carries the fleet-wide delivery counters."""
        registry = _metrics.MetricsRegistry("merge-back")
        with _metrics.use_registry(registry):
            platform = make_world(users=10)
            runtime = self._runtime(platform)
            with runtime:
                results = runtime.serve_and_wait([
                    AdRequest(uid, slots=2)
                    for uid in platform.users.user_ids()
                ])
            assert all(result.ok for result in results)
            served = sum(1 for result in results if result.ok)
        slots = registry.counter("delivery.slots_served").value
        assert slots == 2 * served
        service = registry.get("serve.service_time_s")
        assert service is not None and service.count == served

    def test_seeded_respawn_writes_seed_snapshot(self, make_world,
                                                 tmp_path):
        platform = make_world(users=10)
        runtime = self._runtime(platform, tmp_path, shards=1)
        with runtime:
            assert runtime.serve_and_wait(
                [AdRequest(uid, slots=1)
                 for uid in platform.users.user_ids()])
        snapshot_file = shard_snapshot_path(str(tmp_path), 0, 1)
        assert not os.path.exists(snapshot_file)
        # second start: shadows are dirty, workers get seeded and must
        # pin the seed on disk so recovery starts past it
        with runtime:
            assert runtime.serve_and_wait(
                [AdRequest(uid, slots=1)
                 for uid in platform.users.user_ids()])
        seed_snapshot = Snapshot.load(snapshot_file)
        assert seed_snapshot.label == "seed"
        assert seed_snapshot.journal_seq > 0

    def test_process_backend_rejects_prebuilt_router(self, make_world):
        from repro.serve import ShardRouter

        platform = make_world(users=5)
        router = ShardRouter(platform, num_shards=2)
        with pytest.raises(ValueError, match="shadow router"):
            ServingRuntime(
                platform,
                RuntimeConfig(num_shards=2, backend="process"),
                router=router,
            )

    def test_process_backend_requires_single_worker(self):
        with pytest.raises(ValueError, match="workers_per_shard"):
            RuntimeConfig(backend="process", workers_per_shard=2)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            RuntimeConfig(backend="greenlet")

    def test_stopped_journaled_checkpoint_refuses(self, make_world,
                                                  tmp_path):
        runtime = self._runtime(make_world(users=5), tmp_path, shards=1)
        with pytest.raises(RuntimeError, match="start the runtime"):
            runtime.checkpoint("too-early")
