"""The request/response types: validation, envelope semantics, tally."""

from __future__ import annotations

import pytest

from repro.serve import (
    AdRequest,
    AdResponse,
    ServeResult,
    ServeStatus,
    ServeTally,
)


class TestAdRequest:
    def test_defaults(self):
        request = AdRequest(user_id="u1")
        assert request.slots == 1
        assert request.context_page is None
        assert request.deadline_s is None

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError, match="at least one slot"):
            AdRequest(user_id="u1", slots=0)

    def test_rejects_negative_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            AdRequest(user_id="u1", deadline_s=-0.1)

    def test_zero_deadline_is_legal(self):
        # Deadline 0 means "already stale unless served instantly" —
        # the overload tests rely on it.
        assert AdRequest(user_id="u1", deadline_s=0.0).deadline_s == 0.0

    def test_frozen(self):
        request = AdRequest(user_id="u1")
        with pytest.raises(AttributeError):
            request.slots = 5


class TestAdResponse:
    def test_filled_slots_counts_ads(self):
        response = AdResponse(user_id="u1", ad_ids=("a", "b"),
                              lost_to_competition=1)
        assert response.filled_slots == 2

    def test_empty_response(self):
        assert AdResponse(user_id="u1").filled_slots == 0


class TestServeResult:
    def test_latency_decomposes(self):
        result = ServeResult(
            request=AdRequest(user_id="u1"),
            status=ServeStatus.SERVED,
            shard_index=0,
            queued_s=0.002,
            service_s=0.003,
        )
        assert result.latency_s == pytest.approx(0.005)

    def test_ok_only_for_served(self):
        request = AdRequest(user_id="u1")
        assert ServeResult(request, ServeStatus.SERVED, 0).ok
        for status in (ServeStatus.SHED, ServeStatus.TIMEOUT,
                       ServeStatus.ERROR):
            assert not ServeResult(request, status, 0).ok


class TestServeTally:
    def test_counts_by_status_and_impressions(self):
        tally = ServeTally()
        request = AdRequest(user_id="u1")
        tally.add(ServeResult(
            request, ServeStatus.SERVED, 0,
            response=AdResponse(user_id="u1", ad_ids=("a", "b")),
        ))
        tally.add(ServeResult(request, ServeStatus.SHED, 0))
        tally.add(ServeResult(request, ServeStatus.TIMEOUT, 0))
        tally.add(ServeResult(request, ServeStatus.ERROR, 0,
                              error="boom"))
        assert tally.submitted == 4
        assert (tally.served, tally.shed, tally.timeout,
                tally.errors) == (1, 1, 1, 1)
        assert tally.impressions == 2
