"""ServingRuntime: admission control, batching, lifecycle, metrics."""

from __future__ import annotations

import time

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.serve import (
    AdRequest,
    KeyedCompetition,
    RuntimeConfig,
    ServeStatus,
    ServingRuntime,
)


class TestRuntimeConfig:
    @pytest.mark.parametrize("kwargs", [
        {"num_shards": 0},
        {"workers_per_shard": 0},
        {"queue_capacity": 0},
        {"max_batch": 0},
    ])
    def test_rejects_nonpositive_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RuntimeConfig(**kwargs)


class TestLifecycle:
    def test_context_manager_starts_and_stops(self, make_world):
        platform = make_world(users=10)
        runtime = ServingRuntime(platform, RuntimeConfig(num_shards=2))
        assert not runtime.running
        with runtime:
            assert runtime.running
            result = runtime.submit(
                AdRequest(platform.users.user_ids()[0])
            ).result(timeout=10)
            assert result.status is ServeStatus.SERVED
        assert not runtime.running

    def test_submit_requires_started(self, make_world):
        runtime = ServingRuntime(make_world(users=5),
                                 RuntimeConfig(num_shards=1))
        with pytest.raises(RuntimeError, match="not started"):
            runtime.submit(AdRequest("u"))

    def test_double_start_rejected(self, make_world):
        runtime = ServingRuntime(make_world(users=5),
                                 RuntimeConfig(num_shards=1))
        with runtime:
            with pytest.raises(RuntimeError, match="already started"):
                runtime.start()

    def test_stop_drains_queued_work(self, make_world):
        platform = make_world(users=20)
        runtime = ServingRuntime(
            platform, RuntimeConfig(num_shards=2, queue_capacity=1024)
        )
        runtime.start()
        futures = [runtime.submit(AdRequest(uid))
                   for uid in platform.users.user_ids() * 5]
        runtime.stop()  # drain=True default
        assert all(future.done() for future in futures)


class TestServedResults:
    def test_every_result_has_the_envelope(self, make_world):
        platform = make_world(users=20)
        runtime = ServingRuntime(
            platform,
            RuntimeConfig(num_shards=2, queue_capacity=1024),
            competition=KeyedCompetition(seed=7),
        )
        requests = [AdRequest(uid, slots=2)
                    for uid in sorted(platform.users.user_ids())]
        with runtime:
            results = runtime.serve_and_wait(requests)
        assert len(results) == len(requests)
        for request, result in zip(requests, results):
            assert result.status is ServeStatus.SERVED
            assert result.request is request
            assert result.shard_index \
                == runtime.router.shard_index(request.user_id)
            assert result.response is not None
            response = result.response
            assert (response.filled_slots
                    + response.lost_to_competition
                    + response.unfilled) == request.slots
            assert result.latency_s >= 0
            assert result.batch_size >= 1

    def test_served_ads_land_in_the_feed(self, make_world):
        platform = make_world(users=10)
        runtime = ServingRuntime(
            platform, RuntimeConfig(num_shards=2),
            competition=KeyedCompetition(seed=7, median_cpm=0.0),
        )
        with runtime:
            results = runtime.serve_and_wait(
                [AdRequest(uid, slots=3)
                 for uid in platform.users.user_ids()]
            )
        for result in results:
            feed = [d.ad_id
                    for d in runtime.router.feed(result.request.user_id)]
            assert list(result.response.ad_ids) == feed

    def test_unknown_user_is_an_error_result(self, make_world):
        platform = make_world(users=5)
        runtime = ServingRuntime(platform, RuntimeConfig(num_shards=1))
        with runtime:
            result = runtime.submit(
                AdRequest("no-such-user")).result(timeout=10)
        assert result.status is ServeStatus.ERROR
        assert "no-such-user" in result.error
        assert not result.ok


class TestAdmissionControl:
    def test_queue_overflow_sheds_before_any_work(self, make_world):
        platform = make_world(users=30)
        runtime = ServingRuntime(
            platform, RuntimeConfig(num_shards=1, queue_capacity=8)
        )
        runtime.start(spawn_workers=False)
        futures = [runtime.submit(AdRequest(uid))
                   for uid in platform.users.user_ids()]
        shed = [f.result(timeout=1) for f in futures if f.done()]
        assert len(shed) == len(futures) - 8
        assert all(r.status is ServeStatus.SHED for r in shed)
        # Shed results cost nothing: no queue wait, no service time.
        assert all(r.latency_s == 0.0 and r.batch_size == 0
                   for r in shed)
        runtime.spawn_workers()
        rest = [f.result(timeout=10) for f in futures]
        assert sum(1 for r in rest
                   if r.status is ServeStatus.SERVED) == 8
        runtime.stop()
        assert runtime.router.total_impressions() <= 8

    def test_expired_deadline_times_out_unserved(self, make_world):
        platform = make_world(users=10)
        runtime = ServingRuntime(
            platform, RuntimeConfig(num_shards=1, queue_capacity=256)
        )
        runtime.start(spawn_workers=False)
        futures = [runtime.submit(AdRequest(uid, deadline_s=0.0))
                   for uid in platform.users.user_ids()]
        time.sleep(0.01)
        runtime.spawn_workers()
        results = [f.result(timeout=10) for f in futures]
        runtime.stop()
        assert all(r.status is ServeStatus.TIMEOUT for r in results)
        assert runtime.router.total_impressions() == 0

    def test_default_deadline_applies_when_request_has_none(
            self, make_world):
        platform = make_world(users=10)
        runtime = ServingRuntime(
            platform,
            RuntimeConfig(num_shards=1, default_deadline_s=0.0),
        )
        runtime.start(spawn_workers=False)
        futures = [runtime.submit(AdRequest(uid))
                   for uid in platform.users.user_ids()]
        time.sleep(0.01)
        runtime.spawn_workers()
        results = [f.result(timeout=10) for f in futures]
        runtime.stop()
        assert all(r.status is ServeStatus.TIMEOUT for r in results)


class TestBatching:
    def test_backlog_is_coalesced_into_batches(self, make_world):
        platform = make_world(users=30)
        runtime = ServingRuntime(
            platform,
            RuntimeConfig(num_shards=1, queue_capacity=1024,
                          max_batch=16),
        )
        runtime.start(spawn_workers=False)
        futures = [runtime.submit(AdRequest(uid))
                   for uid in platform.users.user_ids()]
        runtime.spawn_workers()
        results = [f.result(timeout=10) for f in futures]
        runtime.stop()
        # A pre-spawned backlog must be served in multi-request batches
        # bounded by max_batch.
        assert max(r.batch_size for r in results) > 1
        assert max(r.batch_size for r in results) <= 16

    def test_multi_worker_still_serves_everything(self, make_world):
        platform = make_world(users=30)
        runtime = ServingRuntime(
            platform,
            RuntimeConfig(num_shards=2, workers_per_shard=3,
                          queue_capacity=1024),
            competition=KeyedCompetition(seed=7),
        )
        requests = [AdRequest(uid, slots=2)
                    for uid in platform.users.user_ids() * 3]
        with runtime:
            results = runtime.serve_and_wait(requests)
        assert all(r.status is ServeStatus.SERVED for r in results)
        # Invariants hold even without the single-worker determinism
        # contract: frequency cap 1 means no feed repeats an ad.
        for uid in platform.users.user_ids():
            delivered = [d.ad_id for d in runtime.router.feed(uid)]
            assert len(delivered) == len(set(delivered))


class TestMetrics:
    def test_counters_match_the_tally(self, make_world):
        platform = make_world(users=20)
        registry = MetricsRegistry("serve-test")
        with use_registry(registry):
            runtime = ServingRuntime(
                platform,
                RuntimeConfig(num_shards=1, queue_capacity=8),
            )
            runtime.start(spawn_workers=False)
            futures = [runtime.submit(AdRequest(uid))
                       for uid in platform.users.user_ids()]
            runtime.spawn_workers()
            [f.result(timeout=10) for f in futures]
            runtime.stop()
        assert registry.value("serve.requests_submitted") == 20
        assert registry.value("serve.requests_served") == 8
        assert registry.value("serve.requests_shed") == 12
        assert registry.value("serve.requests_timeout") == 0
        assert registry.value("serve.requests_errored") == 0
        assert registry.value("serve.queue_depth") == 0
        assert registry.value("serve.request_latency_s") == 20
        batch = registry.get("serve.batch_size")
        assert batch is not None and batch.count >= 1

    def test_error_reason_breakdown(self, make_world):
        # An ERROR result increments the aggregate serve.errors plus a
        # dynamic per-exception-type counter named after the reason.
        platform = make_world(users=5)
        registry = MetricsRegistry("serve-errors-test")
        with use_registry(registry):
            runtime = ServingRuntime(
                platform, RuntimeConfig(num_shards=1))
            with runtime:
                result = runtime.submit(
                    AdRequest("no-such-user")).result(timeout=10)
        assert result.status is ServeStatus.ERROR
        assert registry.value("serve.requests_errored") == 1
        assert registry.value("serve.errors") == 1
        assert registry.value("serve.errors.CatalogError") == 1

    def test_error_reason_breakdown_process_backend(self, make_world):
        # Same contract across the IPC boundary: the worker's error
        # string carries the exception type, the parent labels it.
        platform = make_world(users=5)
        registry = MetricsRegistry("serve-errors-remote-test")
        with use_registry(registry):
            runtime = ServingRuntime(
                platform,
                RuntimeConfig(num_shards=1, backend="process"))
            with runtime:
                result = runtime.submit(
                    AdRequest("no-such-user")).result(timeout=30)
        assert result.status is ServeStatus.ERROR
        assert registry.value("serve.errors") == 1
        assert registry.value("serve.errors.CatalogError") == 1

    def test_rebalance_requires_stopped_runtime(self, make_world):
        platform = make_world(users=10)
        runtime = ServingRuntime(platform, RuntimeConfig(num_shards=2))
        with runtime:
            with pytest.raises(RuntimeError, match="stop"):
                runtime.rebalance(4)
        runtime.rebalance(4)
        assert runtime.router.num_shards == 4


class TestShutdownDrain:
    """Admitted-but-unserved requests are classified, never dropped.

    If admission ran without (or faster than) workers, stopping the
    runtime must resolve every queued future as TIMEOUT — the admission
    invariant ``served + shed + timeout + errored == submitted`` has to
    hold across shutdown, not just steady state.
    """

    def test_stop_without_workers_times_out_queued_requests(
            self, make_world):
        platform = make_world(users=10)
        registry = MetricsRegistry("serve-drain")
        with use_registry(registry):
            runtime = ServingRuntime(
                platform, RuntimeConfig(num_shards=2, queue_capacity=64)
            )
            runtime.start(spawn_workers=False)
            futures = [runtime.submit(AdRequest(uid))
                       for uid in platform.users.user_ids()]
            runtime.stop()
        assert all(f.done() for f in futures)
        results = [f.result(timeout=0) for f in futures]
        assert {r.status for r in results} == {ServeStatus.TIMEOUT}
        assert all(r.response is None for r in results)
        assert all(r.queued_s >= 0.0 for r in results)
        assert registry.value("serve.requests_submitted") == 10
        assert registry.value("serve.requests_timeout") == 10
        assert registry.value("serve.requests_served") == 0
        assert registry.value("serve.queue_depth") == 0

    def test_drained_shutdown_preserves_the_admission_invariant(
            self, make_world):
        platform = make_world(users=12)
        registry = MetricsRegistry("serve-drain-mixed")
        with use_registry(registry):
            runtime = ServingRuntime(
                platform, RuntimeConfig(num_shards=1, queue_capacity=4)
            )
            runtime.start(spawn_workers=False)
            futures = [runtime.submit(AdRequest(uid))
                       for uid in platform.users.user_ids()]
            runtime.stop()  # 4 admitted -> TIMEOUT, 8 shed at admission
        statuses = [f.result(timeout=0).status for f in futures]
        assert statuses.count(ServeStatus.TIMEOUT) == 4
        assert statuses.count(ServeStatus.SHED) == 8
        submitted = registry.value("serve.requests_submitted")
        assert submitted == 12
        assert (registry.value("serve.requests_served")
                + registry.value("serve.requests_shed")
                + registry.value("serve.requests_timeout")
                + registry.value("serve.requests_errored")) == submitted

    def test_stop_is_idempotent_after_flush(self, make_world):
        platform = make_world(users=5)
        runtime = ServingRuntime(platform, RuntimeConfig(num_shards=1))
        runtime.start(spawn_workers=False)
        future = runtime.submit(AdRequest(platform.users.user_ids()[0]))
        runtime.stop()
        runtime.stop()  # second stop: no-op, no double-resolution
        assert future.result(timeout=0).status is ServeStatus.TIMEOUT
