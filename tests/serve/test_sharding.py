"""Sharding: routing stability, keyed competition, isolation, rebalance."""

from __future__ import annotations

import json
import math

import pytest

from repro.serve import AdRequest, KeyedCompetition, ShardRouter, shard_index
from repro.serve.sharding import ShardAccountsView


class TestShardIndex:
    def test_stable_and_in_range(self):
        for num_shards in (1, 2, 4, 8, 13):
            for i in range(50):
                user_id = f"user-{i}"
                first = shard_index(user_id, num_shards)
                assert first == shard_index(user_id, num_shards)
                assert 0 <= first < num_shards

    def test_known_value_pins_the_hash(self):
        # Regression pin: a different hash (or the builtin, randomized
        # one) would break cross-process reproducibility silently.
        assert shard_index("user-0", 8) == shard_index("user-0", 8)
        assert shard_index("user-0", 1) == 0

    def test_salt_changes_the_mapping(self):
        users = [f"user-{i}" for i in range(64)]
        plain = [shard_index(u, 8) for u in users]
        salted = [shard_index(u, 8, salt="v2") for u in users]
        assert plain != salted

    def test_spreads_users(self):
        counts = [0] * 4
        for i in range(400):
            counts[shard_index(f"user-{i}", 4)] += 1
        # Not a uniformity proof — just "no shard is starved or hogged".
        assert min(counts) > 50
        assert max(counts) < 200

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_index("u", 0)


class TestKeyedCompetition:
    def test_pure_function_of_key(self):
        competition = KeyedCompetition(seed=7)
        assert competition.bid("u1", 0) == competition.bid("u1", 0)
        assert competition.bid("u1", 0) != competition.bid("u1", 1)
        assert competition.bid("u1", 0) != competition.bid("u2", 0)

    def test_seed_changes_draws(self):
        a = KeyedCompetition(seed=7)
        b = KeyedCompetition(seed=8)
        assert a.bid("u1", 0) != b.bid("u1", 0)

    def test_lognormal_shape(self):
        competition = KeyedCompetition(seed=7, median_cpm=2.0, sigma=0.5)
        bids = [competition.bid(f"u{i}", s)
                for i in range(200) for s in range(5)]
        assert all(bid > 0 for bid in bids)
        # Median of the per-impression price should sit near
        # median_cpm/1000; log-space mean near ln(median/1000).
        logs = sorted(math.log(b) for b in bids)
        median_log = logs[len(logs) // 2]
        assert median_log == pytest.approx(math.log(2.0 / 1000), abs=0.1)

    def test_zero_median_means_no_competition(self):
        competition = KeyedCompetition(seed=7, median_cpm=0.0)
        assert competition.bid("u1", 0) == 0.0

    def test_cursor_requires_positioning(self):
        cursor = KeyedCompetition(seed=7).cursor()
        with pytest.raises(RuntimeError, match="positioned"):
            cursor()
        cursor.key = ("u1", 0)
        assert cursor() == KeyedCompetition(seed=7).bid("u1", 0)


class TestShardAccountsView:
    def test_account_is_cloned_not_shared(self, make_world):
        platform = make_world(users=5)
        account_id = platform.inventory.accounts()[0].account_id
        view = ShardAccountsView(platform.inventory, "shard-0")
        local = view.account(account_id)
        origin = platform.inventory.account(account_id)
        assert local is not origin
        assert local.budget == origin.budget
        local.charge(min(1.0, local.budget))
        assert origin.budget == platform.inventory.account(
            account_id).budget
        assert local.budget < origin.budget

    def test_clone_is_cached_per_view(self, make_world):
        platform = make_world(users=5)
        account_id = platform.inventory.accounts()[0].account_id
        view = ShardAccountsView(platform.inventory, "shard-0")
        assert view.account(account_id) is view.account(account_id)
        other = ShardAccountsView(platform.inventory, "shard-1")
        assert other.account(account_id) is not view.account(account_id)

    def test_everything_else_delegates(self, make_world):
        platform = make_world(users=5)
        view = ShardAccountsView(platform.inventory, "shard-0")
        assert view.ad_count() == platform.inventory.ad_count()
        assert view.ads() == platform.inventory.ads()


def _serve_everything(router: ShardRouter, platform, slots: int = 3,
                      rounds: int = 3) -> None:
    """Drive every shard synchronously (no runtime) round by round."""
    for _ in range(rounds):
        for user in platform.users:
            shard = router.shard_for(user.user_id)
            base = shard.slot_seq.get(user.user_id, 0)
            shard.slot_seq[user.user_id] = base + slots
            with shard.engine.serving_session():
                shard.serve_user_slots(user, base, slots)


class TestShardRouterAggregation:
    def test_aggregates_are_sums_of_disjoint_shards(self, make_world):
        platform = make_world()
        router = ShardRouter(platform, num_shards=4,
                             competition=KeyedCompetition(seed=7))
        _serve_everything(router, platform)
        report = router.aggregate_report()
        assert report, "the sweep should have delivered something"
        for ad_id, row in report.items():
            per_shard_impressions = [
                len(shard.engine.impressions_for_ad(ad_id))
                for shard in router.shards
            ]
            assert row["impressions"] == sum(per_shard_impressions)
            shard_reaches = [shard.engine.unique_reach(ad_id)
                             for shard in router.shards]
            for i, first in enumerate(shard_reaches):
                for second in shard_reaches[i + 1:]:
                    assert not (first & second), \
                        "user-disjoint shards reached the same user"
            assert row["reach"] == len(router.unique_reach(ad_id))
            assert row["reach"] == router.reach_count(ad_id)

    def test_feed_routes_to_owning_shard(self, make_world):
        platform = make_world()
        router = ShardRouter(platform, num_shards=4,
                             competition=KeyedCompetition(seed=7))
        _serve_everything(router, platform, rounds=1)
        for user in platform.users:
            owner = router.shard_for(user.user_id)
            assert router.feed(user.user_id) \
                == owner.engine.feed(user.user_id)

    def test_spend_aggregates_across_shards(self, make_world):
        platform = make_world()
        router = ShardRouter(platform, num_shards=4,
                             competition=KeyedCompetition(seed=7))
        _serve_everything(router, platform)
        account = platform.inventory.accounts()[0]
        per_shard = [shard.ledger.spend_for_account(account.account_id)
                     for shard in router.shards]
        assert router.total_spend(account.account_id) \
            == pytest.approx(sum(per_shard))
        assert router.total_spend(account.account_id) > 0


class TestRebalance:
    def test_report_survives_rebalance(self, make_world):
        platform = make_world()
        router = ShardRouter(platform, num_shards=4,
                             competition=KeyedCompetition(seed=7))
        _serve_everything(router, platform, rounds=2)
        before = router.aggregate_report()
        spend_account = platform.inventory.accounts()[0].account_id
        spend_before = router.total_spend(spend_account)
        router.rebalance(2)
        assert router.num_shards == 2
        assert json.dumps(router.aggregate_report(), sort_keys=True) \
            == json.dumps(before, sort_keys=True)
        assert router.total_spend(spend_account) \
            == pytest.approx(spend_before)

    def test_frequency_caps_survive_rebalance(self, make_world):
        platform = make_world()
        router = ShardRouter(platform, num_shards=3,
                             competition=KeyedCompetition(seed=7))
        _serve_everything(router, platform, rounds=2)
        router.rebalance(5)
        _serve_everything(router, platform, rounds=2)
        # Frequency cap is 1: a migrated user must never see the same
        # ad twice, however many rebalances happen in between.
        for user in platform.users:
            delivered = [d.ad_id for d in router.feed(user.user_id)]
            assert len(delivered) == len(set(delivered))

    def test_rebalanced_router_matches_never_rebalanced(self, make_world):
        moved = make_world(seed=23)
        router = ShardRouter(moved, num_shards=4,
                             competition=KeyedCompetition(seed=7))
        _serve_everything(router, moved, rounds=1)
        router.rebalance(2)
        _serve_everything(router, moved, rounds=1)

        stayed = make_world(seed=23)
        reference = ShardRouter(stayed, num_shards=1,
                                competition=KeyedCompetition(seed=7))
        _serve_everything(reference, stayed, rounds=2)
        assert json.dumps(router.aggregate_report(), sort_keys=True) \
            == json.dumps(reference.aggregate_report(), sort_keys=True)


class TestEngineSnapshot:
    def test_snapshot_stats_shape(self, make_world):
        platform = make_world(users=10)
        router = ShardRouter(platform, num_shards=2,
                             competition=KeyedCompetition(seed=7))
        _serve_everything(router, platform, rounds=1)
        stats = router.snapshot_stats()
        assert len(stats) == 2
        for i, row in enumerate(stats):
            assert row["engine_id"] == f"shard-{i}/2"
            assert row["in_session"] is False
            assert row["impressions"] >= 0
        assert sum(row["impressions"] for row in stats) \
            == router.total_impressions()
