"""CLI: ``repro serve`` and ``repro loadgen``."""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs.tracing import load_jsonl_spans

FAST = ["--users", "40", "--duration", "0.3", "--rps", "150"]


class TestServeCommand:
    def test_serve_runs_and_reports(self, capsys):
        assert main(["serve", "--shards", "2", *FAST,
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "repro serve" in out
        assert "2 x 1" in out
        assert "latency p50 / p95 / p99" in out
        assert "shard-0/2" in out
        assert "shard-1/2" in out

    def test_serve_trace_out(self, capsys, tmp_path):
        trace_file = tmp_path / "spans.jsonl"
        assert main(["serve", "--shards", "1", *FAST,
                     "--trace-out", str(trace_file)]) == 0
        spans = load_jsonl_spans(trace_file.read_text())
        names = {span.name for span in spans}
        assert "loadgen.run" in names
        assert "serve.batch" in names


class TestLoadgenCommand:
    def test_loadgen_runs_and_reports(self, capsys):
        assert main(["loadgen", "--shards", "2", *FAST,
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "repro loadgen" in out
        assert "target / achieved rps" in out
        assert "p99 (ms)" in out

    def test_loadgen_seed_is_reproducible(self, capsys, tmp_path):
        """Same seed, same world, same offered count and tally."""
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        assert main(["loadgen", *FAST, "--seed", "5",
                     "--histogram-out", str(out_a)]) == 0
        assert main(["loadgen", *FAST, "--seed", "5",
                     "--histogram-out", str(out_b)]) == 0
        a = json.loads(out_a.read_text())
        b = json.loads(out_b.read_text())
        assert a["offered"] == b["offered"]
        assert a["tally"]["impressions"] == b["tally"]["impressions"]
        capsys.readouterr()

    def test_loadgen_histogram_out(self, capsys, tmp_path):
        out_file = tmp_path / "latency.json"
        assert main(["loadgen", *FAST,
                     "--histogram-out", str(out_file)]) == 0
        record = json.loads(out_file.read_text())
        assert record["offered"] > 0
        assert record["tally"]["errors"] == 0
        assert record["latency_histogram"]["count"] \
            == record["offered"]
        err = capsys.readouterr().err
        assert "wrote latency histogram" in err

    def test_loadgen_deadline_and_queue_flags_parse(self, capsys):
        assert main(["loadgen", *FAST, "--deadline-ms", "50",
                     "--queue-capacity", "64", "--workers", "2",
                     "--slots", "2"]) == 0


class TestSloGate:
    def test_generous_slo_passes(self, capsys):
        assert main(["loadgen", *FAST, "--slo",
                     "p99=30s,availability=1%"]) == 0
        out = capsys.readouterr().out
        assert "slo: p99 <= 30s" in out
        assert "[ok]" in out

    def test_impossible_slo_exits_one(self, capsys):
        assert main(["loadgen", *FAST, "--slo", "p99=1us"]) == 1
        captured = capsys.readouterr()
        assert "[VIOLATED]" in captured.out
        assert "slo violated" in captured.err

    def test_malformed_slo_exits_two_before_running(self, capsys):
        import pytest
        with pytest.raises(SystemExit) as excinfo:
            main(["loadgen", *FAST, "--slo", "nonsense"])
        assert excinfo.value.code == 2
        assert "invalid --slo spec" in capsys.readouterr().err

    def test_slo_lands_in_histogram_out(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        assert main(["loadgen", *FAST, "--slo", "availability=1%",
                     "--histogram-out", str(out_file)]) == 0
        record = json.loads(out_file.read_text())
        assert record["slo"]["ok"] is True
        assert record["slo"]["objectives"][0]["kind"] == "availability"
        capsys.readouterr()


class TestMetricsOut:
    def test_prometheus_snapshots_written(self, capsys, tmp_path):
        metrics_file = tmp_path / "metrics.prom"
        assert main(["loadgen", *FAST,
                     "--metrics-out", str(metrics_file)]) == 0
        text = metrics_file.read_text()
        assert "# TYPE serve_requests_served counter" in text
        assert "serve_requests_served " in text
        assert "serve_telemetry_polls" in text
        served = int(next(
            line.split()[-1] for line in text.splitlines()
            if line.startswith("serve_requests_served ")))
        assert served > 0
        assert "wrote metrics snapshot" in capsys.readouterr().err

    def test_no_leftover_tmp_file(self, capsys, tmp_path):
        metrics_file = tmp_path / "metrics.prom"
        assert main(["loadgen", *FAST,
                     "--metrics-out", str(metrics_file)]) == 0
        assert not (tmp_path / "metrics.prom.tmp").exists()
        capsys.readouterr()


class TestChromeTrace:
    def test_chrome_trace_is_valid_and_linked(self, capsys, tmp_path):
        trace_file = tmp_path / "trace.json"
        assert main(["loadgen", *FAST, "--shards", "2",
                     "--trace-out", str(trace_file),
                     "--trace-format", "chrome"]) == 0
        events = json.loads(trace_file.read_text())
        assert events, "empty chrome trace"
        assert all(event["ph"] == "X" for event in events)
        span_ids = {event["args"]["span_id"] for event in events}
        for event in events:
            parent = event["args"].get("parent_id")
            assert parent is None or parent in span_ids
        names = {event["name"] for event in events}
        assert {"serve.request", "serve.queue_wait",
                "serve.engine", "loadgen.run"} <= names
        capsys.readouterr()

    def test_jsonl_remains_the_default(self, capsys, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        assert main(["loadgen", *FAST,
                     "--trace-out", str(trace_file)]) == 0
        spans = load_jsonl_spans(trace_file.read_text())
        assert {span.name for span in spans} >= {"serve.request",
                                                 "loadgen.run"}
        capsys.readouterr()


class TestTopCommand:
    def test_top_renders_frames_and_summary(self, capsys):
        assert main(["top", "--shards", "2", "--users", "40",
                     "--duration", "0.8", "--rps", "200",
                     "--interval", "0.2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        # Non-tty: frames print sequentially, then the final table.
        assert "repro top —" in out
        assert "shard" in out and "queue" in out and "p99ms" in out
        assert "final:" in out
        assert "telemetry samples" in out

    def test_top_counters_advance_across_frames(self, capsys):
        assert main(["top", "--shards", "2", "--users", "40",
                     "--duration", "1.0", "--rps", "300",
                     "--interval", "0.2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        totals = [int(line.split("total:")[1].split()[0])
                  for line in out.splitlines() if "total:" in line]
        assert len(totals) >= 2
        assert totals == sorted(totals)
        assert totals[-1] > totals[0] > 0, (
            f"live counters never advanced: {totals}")

    def test_top_applies_slo_gate(self, capsys):
        assert main(["top", "--shards", "1", "--users", "40",
                     "--duration", "0.5", "--rps", "150",
                     "--interval", "0.2", "--slo", "p99=1us"]) == 1
        assert "[VIOLATED]" in capsys.readouterr().out

    def test_top_process_backend(self, capsys):
        assert main(["top", "--backend", "process", "--shards", "2",
                     "--users", "40", "--duration", "0.8",
                     "--rps", "200", "--interval", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "repro top —" in out
        assert "final:" in out
