"""CLI: ``repro serve`` and ``repro loadgen``."""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs.tracing import load_jsonl_spans

FAST = ["--users", "40", "--duration", "0.3", "--rps", "150"]


class TestServeCommand:
    def test_serve_runs_and_reports(self, capsys):
        assert main(["serve", "--shards", "2", *FAST,
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "repro serve" in out
        assert "2 x 1" in out
        assert "latency p50 / p95 / p99" in out
        assert "shard-0/2" in out
        assert "shard-1/2" in out

    def test_serve_trace_out(self, capsys, tmp_path):
        trace_file = tmp_path / "spans.jsonl"
        assert main(["serve", "--shards", "1", *FAST,
                     "--trace-out", str(trace_file)]) == 0
        spans = load_jsonl_spans(trace_file.read_text())
        names = {span.name for span in spans}
        assert "loadgen.run" in names
        assert "serve.batch" in names


class TestLoadgenCommand:
    def test_loadgen_runs_and_reports(self, capsys):
        assert main(["loadgen", "--shards", "2", *FAST,
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "repro loadgen" in out
        assert "target / achieved rps" in out
        assert "p99 (ms)" in out

    def test_loadgen_seed_is_reproducible(self, capsys, tmp_path):
        """Same seed, same world, same offered count and tally."""
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        assert main(["loadgen", *FAST, "--seed", "5",
                     "--histogram-out", str(out_a)]) == 0
        assert main(["loadgen", *FAST, "--seed", "5",
                     "--histogram-out", str(out_b)]) == 0
        a = json.loads(out_a.read_text())
        b = json.loads(out_b.read_text())
        assert a["offered"] == b["offered"]
        assert a["tally"]["impressions"] == b["tally"]["impressions"]
        capsys.readouterr()

    def test_loadgen_histogram_out(self, capsys, tmp_path):
        out_file = tmp_path / "latency.json"
        assert main(["loadgen", *FAST,
                     "--histogram-out", str(out_file)]) == 0
        record = json.loads(out_file.read_text())
        assert record["offered"] > 0
        assert record["tally"]["errors"] == 0
        assert record["latency_histogram"]["count"] \
            == record["offered"]
        err = capsys.readouterr().err
        assert "wrote latency histogram" in err

    def test_loadgen_deadline_and_queue_flags_parse(self, capsys):
        assert main(["loadgen", *FAST, "--deadline-ms", "50",
                     "--queue-capacity", "64", "--workers", "2",
                     "--slots", "2"]) == 0
