"""The tentpole guarantee: sharding does not change delivery.

Three layers of equivalence, each against a stronger reference:

1. Shard-count invariance — identical worlds served through 1, 4, and
   8 shards produce byte-identical aggregate reports (JSON-serialized,
   sorted keys), with real keyed lognormal competition in play.
2. Single-engine agreement — with competition turned off on both
   paths, the sharded runtime reproduces exactly what the platform's
   own synchronous ``run_delivery`` does: same per-ad impressions,
   same reach sets, same per-user feeds.
3. Replay determinism — the same world and request sequence served
   twice through the runtime gives the same report (the
   workers-per-shard=1 contract).

Every layer runs on both backends: the process backend moves each
shard's engine into a subprocess behind the IPC codec, and these tests
are the proof that the wire does not change delivery — thread and
process runs of the same world are byte-identical too.
"""

from __future__ import annotations

import json

import pytest

from repro.serve import (
    AdRequest,
    KeyedCompetition,
    RuntimeConfig,
    ServingRuntime,
)

SEED = 23
ROUNDS = 3
SLOTS = 2


def _request_sequence(platform):
    """A fixed, shard-agnostic request order: rounds over sorted users."""
    return [
        AdRequest(user_id=user_id, slots=SLOTS)
        for _ in range(ROUNDS)
        for user_id in sorted(platform.users.user_ids())
    ]


def _serve_through(platform, num_shards, median_cpm=2.0,
                   backend="thread"):
    runtime = ServingRuntime(
        platform,
        RuntimeConfig(num_shards=num_shards, queue_capacity=4096,
                      backend=backend),
        competition=KeyedCompetition(seed=7, median_cpm=median_cpm),
    )
    with runtime:
        results = runtime.serve_and_wait(_request_sequence(platform))
    assert all(result.ok for result in results)
    return runtime


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestShardCountInvariance:
    def test_1_4_8_shards_byte_identical(self, make_world, backend):
        reports = {}
        for num_shards in (1, 4, 8):
            runtime = _serve_through(make_world(seed=SEED), num_shards,
                                     backend=backend)
            reports[num_shards] = json.dumps(
                runtime.router.aggregate_report(), sort_keys=True
            )
        assert reports[1] == reports[4]
        assert reports[1] == reports[8]
        assert json.loads(reports[1]), \
            "vacuous equivalence: nothing was delivered"

    def test_feeds_identical_across_shard_counts(self, make_world,
                                                 backend):
        runtimes = {
            num_shards: _serve_through(make_world(seed=SEED), num_shards,
                                       backend=backend)
            for num_shards in (1, 4)
        }
        user_ids = sorted(
            runtimes[1].platform.users.user_ids()
        )
        for user_id in user_ids:
            feeds = {
                n: [d.ad_id for d in rt.router.feed(user_id)]
                for n, rt in runtimes.items()
            }
            assert feeds[1] == feeds[4]

    def test_replay_same_world_same_report(self, make_world, backend):
        first = _serve_through(make_world(seed=SEED), 4, backend=backend)
        second = _serve_through(make_world(seed=SEED), 4,
                                backend=backend)
        assert json.dumps(first.router.aggregate_report(),
                          sort_keys=True) \
            == json.dumps(second.router.aggregate_report(),
                          sort_keys=True)


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestSingleEngineAgreement:
    """No competition on either path -> sharded == synchronous engine."""

    @pytest.fixture
    def pair(self, make_world, backend):
        served = make_world(seed=SEED)
        runtime = _serve_through(served, 4, median_cpm=0.0,
                                 backend=backend)
        reference = make_world(seed=SEED)
        for _ in range(ROUNDS):
            reference.run_delivery(slots_per_user=SLOTS)
        return runtime, reference

    def test_per_ad_impressions_and_reach_agree(self, pair):
        runtime, reference = pair
        engine = reference.delivery
        ad_ids = {imp.ad_id for imp in engine.impressions()}
        assert ad_ids, "reference run delivered nothing"
        assert ad_ids == set(runtime.router.aggregate_report())
        for ad_id in ad_ids:
            assert runtime.router.impressions_for_ad(ad_id) \
                == len(engine.impressions_for_ad(ad_id))
            assert runtime.router.unique_reach(ad_id) \
                == engine.unique_reach(ad_id)

    def test_per_user_feeds_agree(self, pair):
        runtime, reference = pair
        for user_id in reference.users.user_ids():
            assert sorted(d.ad_id for d in runtime.router.feed(user_id)) \
                == sorted(d.ad_id
                          for d in reference.delivery.feed(user_id))

    def test_total_impressions_agree(self, pair):
        runtime, reference = pair
        assert runtime.router.total_impressions() \
            == len(reference.delivery.impressions())


class TestBackendAgreement:
    """Thread and process backends serve the same world identically."""

    def test_thread_process_byte_identical(self, make_world):
        reports = {
            backend: json.dumps(
                _serve_through(make_world(seed=SEED), 4,
                               backend=backend)
                .router.aggregate_report(),
                sort_keys=True,
            )
            for backend in ("thread", "process")
        }
        assert reports["thread"] == reports["process"]
        assert json.loads(reports["thread"]), \
            "vacuous equivalence: nothing was delivered"
