"""Fixtures for the serving-runtime suite.

Every test here wants the same kind of world: a seeded persona-mix
population with a full Tread sweep launched, so the candidate index has
real ads and the audience registry real members. ``make_world`` is a
factory (not a prebuilt fixture) because the equivalence tests need
*several* identically-seeded worlds — one per shard count — that must
not share any mutable state.
"""

from __future__ import annotations

import pytest

from repro.core.provider import TransparencyProvider
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.workloads.competition import zero_competition
from repro.workloads.personas import (
    AVERAGE_CONSUMER,
    ESTABLISHED_PROFESSIONAL,
    RECENT_ARRIVAL_GRAD_STUDENT,
)
from repro.workloads.population import PopulationBuilder


@pytest.fixture
def make_world():
    """Factory: identically-seeded platforms with a launched sweep.

    The platform's own delivery engine gets zero ambient competition
    (deterministic single-engine reference); the serving runtime's
    shards bring their own :class:`KeyedCompetition`, so tests choose
    per-path competition explicitly.
    """

    def build(seed: int = 11, users: int = 40,
              budget: float = 5000.0,
              columnar: bool = False) -> AdPlatform:
        platform = AdPlatform(
            config=PlatformConfig(name="serve-test",
                                  columnar_users=columnar),
            catalog=build_us_catalog(platform_count=40, partner_count=25),
            competing_draw=zero_competition(),
        )
        web = WebDirectory()
        builder = PopulationBuilder(platform, seed=seed)
        builder.spawn_mix(
            [ESTABLISHED_PROFESSIONAL, AVERAGE_CONSUMER,
             RECENT_ARRIVAL_GRAD_STUDENT],
            users,
        )
        builder.finalize()
        provider = TransparencyProvider(platform, web, budget=budget,
                                        bid_cap_cpm=10.0)
        for user_id in platform.users.user_ids():
            provider.optin.via_page_like(user_id)
        provider.launch_partner_sweep()
        return platform

    return build
