"""Load generator: deterministic schedules, honest reports, overload."""

from __future__ import annotations

import pytest

from repro.serve import (
    LoadConfig,
    LoadGenerator,
    RuntimeConfig,
    ServingRuntime,
)


class TestLoadConfig:
    @pytest.mark.parametrize("kwargs", [
        {"rps": 0}, {"rps": -5}, {"duration_s": 0}, {"slots": 0},
    ])
    def test_rejects_nonpositive_knobs(self, kwargs):
        with pytest.raises(ValueError):
            LoadConfig(**kwargs)


class TestSchedule:
    def _generator(self, make_world, **config_kw):
        platform = make_world(users=20)
        runtime = ServingRuntime(platform, RuntimeConfig(num_shards=2))
        return LoadGenerator(
            runtime, platform.users.user_ids(),
            LoadConfig(**config_kw),
        )

    def test_same_seed_same_schedule(self, make_world):
        generator = self._generator(
            make_world, rps=300, duration_s=1.0, seed=5)
        assert generator.schedule() == generator.schedule()

    def test_different_seed_different_schedule(self, make_world):
        a = self._generator(make_world, rps=300, duration_s=1.0, seed=5)
        b = self._generator(make_world, rps=300, duration_s=1.0, seed=6)
        assert a.schedule() != b.schedule()

    def test_schedule_is_clock_free_and_sorted(self, make_world):
        generator = self._generator(
            make_world, rps=500, duration_s=0.5, seed=5)
        plan = generator.schedule()
        assert plan, "a 500rps half-second plan cannot be empty"
        offsets = [offset for offset, _ in plan]
        assert offsets == sorted(offsets)
        assert all(0 <= offset < 0.5 for offset in offsets)
        user_ids = {request.user_id for _, request in plan}
        assert user_ids <= set(generator.user_ids)

    def test_max_requests_caps_the_plan(self, make_world):
        generator = self._generator(
            make_world, rps=1000, duration_s=1.0, seed=5,
            max_requests=17)
        assert len(generator.schedule()) == 17

    def test_requests_carry_config(self, make_world):
        generator = self._generator(
            make_world, rps=200, duration_s=0.2, seed=5,
            slots=3, deadline_s=0.5)
        for _, request in generator.schedule():
            assert request.slots == 3
            assert request.deadline_s == 0.5

    def test_needs_users(self, make_world):
        platform = make_world(users=5)
        runtime = ServingRuntime(platform, RuntimeConfig(num_shards=1))
        with pytest.raises(ValueError, match="at least one user"):
            LoadGenerator(runtime, [])


class TestRun:
    def test_uncontended_run_serves_everything(self, make_world):
        platform = make_world(users=30)
        runtime = ServingRuntime(
            platform,
            RuntimeConfig(num_shards=2, queue_capacity=2048),
        )
        generator = LoadGenerator(
            runtime, platform.users.user_ids(),
            LoadConfig(rps=400, duration_s=0.5, seed=9),
        )
        with runtime:
            report = generator.run()
        assert report.offered > 0
        assert report.tally.served == report.offered
        assert report.tally.shed == 0
        assert report.tally.errors == 0
        assert report.wall_s > 0
        assert report.achieved_rps > 0
        assert report.latency.count == report.offered

    def test_percentiles_are_monotone(self, make_world):
        platform = make_world(users=20)
        runtime = ServingRuntime(platform, RuntimeConfig(num_shards=2))
        generator = LoadGenerator(
            runtime, platform.users.user_ids(),
            LoadConfig(rps=300, duration_s=0.3, seed=9),
        )
        with runtime:
            report = generator.run()
        quantiles = report.percentiles()
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert 0 <= quantiles["p50"] <= quantiles["p95"] \
            <= quantiles["p99"]

    def test_record_is_json_ready(self, make_world):
        import json

        platform = make_world(users=10)
        runtime = ServingRuntime(platform, RuntimeConfig(num_shards=1))
        generator = LoadGenerator(
            runtime, platform.users.user_ids(),
            LoadConfig(rps=100, duration_s=0.2, seed=9),
        )
        with runtime:
            record = generator.run().record()
        parsed = json.loads(json.dumps(record))
        assert parsed["config"]["seed"] == 9
        assert set(parsed["tally"]) \
            == {"served", "shed", "timeout", "errors", "impressions"}
        assert {"p50", "p95", "p99", "mean"} <= set(parsed["latency"])
        assert parsed["latency_histogram"]["kind"] == "histogram"

    def test_overload_sheds_instead_of_queueing_unboundedly(
            self, make_world):
        platform = make_world(users=30)
        # One slow lane: a single shard with a tiny queue, swamped by a
        # pre-spawned burst so shedding is deterministic.
        runtime = ServingRuntime(
            platform, RuntimeConfig(num_shards=1, queue_capacity=4)
        )
        generator = LoadGenerator(
            runtime, platform.users.user_ids(),
            LoadConfig(rps=5000, duration_s=0.1, seed=9,
                       max_requests=200),
        )
        runtime.start(spawn_workers=False)
        plan = generator.schedule()
        futures = [runtime.submit(request) for _, request in plan]
        shed_early = sum(1 for f in futures if f.done())
        runtime.spawn_workers()
        results = [f.result(timeout=10) for f in futures]
        runtime.stop()
        tally_shed = sum(1 for r in results
                         if not r.ok and r.status.name == "SHED")
        assert shed_early == tally_shed
        assert tally_shed == len(plan) - 4
        served = sum(1 for r in results if r.ok)
        assert served == 4
