"""Crash recovery: kill a shard mid-run, recover, finish identically.

The acceptance contract for the journaled state layer: a shard that
dies mid-run and is rebuilt from its snapshot + journal suffix must
finish the run with reports *byte-identical* to an uninterrupted,
identically-seeded run — same impressions, same feeds, same caps, same
slot counters (hence same keyed competition), and the same charges
(nothing lost, nothing double-billed).
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.serve import (
    AdRequest,
    KeyedCompetition,
    RuntimeConfig,
    ServeStatus,
    ServingRuntime,
    ShardRouter,
    journal_store_factory,
)
from repro.store import JournalStore
from repro.store.audit import canonical_json, state_report


def _serve_round(router: ShardRouter, platform, slots: int = 3) -> None:
    for user in platform.users:
        shard = router.shard_for(user.user_id)
        base = shard.claim_slots(user.user_id, slots)
        with shard.engine.serving_session():
            shard.serve_user_slots(user, base, slots)


def _close(router: ShardRouter) -> None:
    for shard in router.shards:
        shard.store.close()


def _spends(router: ShardRouter) -> dict:
    out: dict = {}
    for shard in router.shards:
        for charge in shard.ledger.all_charges():
            out[charge.account_id] = round(
                out.get(charge.account_id, 0.0) + charge.amount, 10)
    return out


class TestShardCrashRecovery:
    @pytest.mark.parametrize("num_shards", [1, 8])
    def test_killed_shard_finishes_byte_identical(
            self, make_world, tmp_path, num_shards):
        seed = 11
        # -- reference: uninterrupted, in-memory ------------------------
        ref_platform = make_world(seed=seed)
        reference = ShardRouter(ref_platform, num_shards=num_shards,
                                competition=KeyedCompetition(seed=7))
        for _ in range(4):
            _serve_round(reference, ref_platform)

        # -- crashed: journaled, killed after round 3, recovered --------
        platform = make_world(seed=seed)
        router = ShardRouter(
            platform, num_shards=num_shards,
            competition=KeyedCompetition(seed=7),
            store_factory=journal_store_factory(str(tmp_path)),
        )
        _serve_round(router, platform)
        _serve_round(router, platform)
        router.checkpoint_shards(directory=str(tmp_path))
        _serve_round(router, platform)  # lands in the journal suffix

        victim = num_shards // 2
        expected_export = router.shards[victim].engine.export_state()
        expected_slots = dict(router.shards[victim].slot_seq)
        router.shards[victim].store.close()  # the "crash"
        recovered = router.recover_shard(victim, str(tmp_path))

        # recovery alone reproduced the pre-crash state exactly
        assert recovered.engine.export_state() == expected_export
        assert recovered.slot_seq == expected_slots

        _serve_round(router, platform)  # finish the run post-recovery

        # -- byte-identical end states ----------------------------------
        assert (canonical_json(state_report(router))
                == canonical_json(state_report(reference)))
        assert router.aggregate_report() == reference.aggregate_report()
        _close(router)

    @pytest.mark.parametrize("num_shards", [1, 8])
    def test_no_lost_or_double_charges(self, make_world, tmp_path,
                                       num_shards):
        seed = 23
        ref_platform = make_world(seed=seed)
        reference = ShardRouter(ref_platform, num_shards=num_shards,
                                competition=KeyedCompetition(seed=9))
        for _ in range(3):
            _serve_round(reference, ref_platform)

        platform = make_world(seed=seed)
        router = ShardRouter(
            platform, num_shards=num_shards,
            competition=KeyedCompetition(seed=9),
            store_factory=journal_store_factory(str(tmp_path)),
        )
        _serve_round(router, platform)
        router.checkpoint_shards(directory=str(tmp_path))
        _serve_round(router, platform)

        victim = 0
        router.shards[victim].store.close()
        router.recover_shard(victim, str(tmp_path))
        _serve_round(router, platform)

        assert _spends(router) == _spends(reference)
        # budgets on the recovered shard match the reference shard's:
        # every journaled charge debited exactly once
        ref_shard = reference.shards[victim]
        rec_shard = router.shards[victim]
        ref_budgets = {a.account_id: round(a.budget, 10) for a in
                       ref_shard.ledger._inventory.local_accounts()
                       .values() if a.budget != a.budget or True}
        rec_charged = {c.account_id
                       for c in rec_shard.ledger.all_charges()}
        for account_id in rec_charged:
            assert round(
                rec_shard.ledger._inventory.account(account_id).budget,
                10,
            ) == ref_budgets[account_id]
        _close(router)

    def test_recovery_without_snapshot_replays_whole_journal(
            self, make_world, tmp_path):
        platform = make_world(seed=5)
        router = ShardRouter(
            platform, num_shards=2,
            competition=KeyedCompetition(seed=3),
            store_factory=journal_store_factory(str(tmp_path)),
        )
        _serve_round(router, platform)
        _serve_round(router, platform)
        expected = router.shards[1].engine.export_state()
        expected_slots = dict(router.shards[1].slot_seq)

        router.shards[1].store.close()
        recovered = router.recover_shard(1, str(tmp_path))
        assert recovered.engine.export_state() == expected
        assert recovered.slot_seq == expected_slots
        _close(router)

    def test_full_journal_replay_onto_fresh_shards_matches_live(
            self, make_world, tmp_path):
        """The replay() identity at shard level (the CLI ``replay``
        semantic): fresh world + full journals == live end state."""
        from repro.serve.sharding import shard_journal_path

        seed = 17
        platform = make_world(seed=seed)
        router = ShardRouter(
            platform, num_shards=4,
            competition=KeyedCompetition(seed=5),
            store_factory=journal_store_factory(str(tmp_path)),
        )
        for _ in range(3):
            _serve_round(router, platform)
        live = canonical_json(state_report(router))
        # Group commit buffers journal lines; hand off cleanly before
        # another process (here: the rebuilt router) reads the files.
        _close(router)

        rebuilt_platform = make_world(seed=seed)
        rebuilt = ShardRouter(rebuilt_platform, num_shards=4,
                              competition=KeyedCompetition(seed=5))
        for index, shard in enumerate(rebuilt.shards):
            records = JournalStore.read(
                shard_journal_path(str(tmp_path), index, 4))
            assert records, "every shard should have journaled work"
            shard.store.replay(records)
        assert canonical_json(state_report(rebuilt)) == live


def _drive(runtime, platform, repeat, slots=2):
    """Submit ``repeat`` rounds over every user; all must be SERVED."""
    futures = []
    for _ in range(repeat):
        for uid in platform.users.user_ids():
            futures.append(runtime.submit(AdRequest(uid, slots=slots)))
    for future in futures:
        assert future.result(timeout=30).ok
    return len(futures)


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestRuntimeRecovery:
    def test_runtime_checkpoint_recover_and_resume(self, make_world,
                                                   tmp_path, backend):
        seed = 11
        ref_platform = make_world(seed=seed)
        reference = ServingRuntime(
            ref_platform,
            RuntimeConfig(num_shards=3, queue_capacity=4096,
                          backend=backend),
            competition=KeyedCompetition(seed=13),
        )
        with reference:
            _drive(reference, ref_platform, 2)
            _drive(reference, ref_platform, 1)

        platform = make_world(seed=seed)
        runtime = ServingRuntime(
            platform,
            RuntimeConfig(num_shards=3, queue_capacity=4096,
                          journal_dir=str(tmp_path), backend=backend),
            competition=KeyedCompetition(seed=13),
        )
        with runtime:
            _drive(runtime, platform, 2)
            runtime.checkpoint("mid-run")
        # crash shard 1 while stopped; recover from disk
        runtime.router.shards[1].store.close()
        runtime.recover_shard(1)
        with runtime:
            _drive(runtime, platform, 1)

        assert (canonical_json(state_report(runtime.router))
                == canonical_json(state_report(reference.router)))
        assert (runtime.router.aggregate_report()
                == reference.router.aggregate_report())
        _close(runtime.router)

    def test_recover_requires_journal_dir(self, make_world, backend):
        from repro.errors import StoreError

        runtime = ServingRuntime(make_world(users=5),
                                 RuntimeConfig(num_shards=1,
                                               backend=backend))
        with pytest.raises(StoreError, match="journal_dir"):
            runtime.recover_shard(0)

    def test_recover_requires_stopped_runtime(self, make_world,
                                              tmp_path, backend):
        runtime = ServingRuntime(
            make_world(users=5),
            RuntimeConfig(num_shards=1, journal_dir=str(tmp_path),
                          backend=backend),
        )
        with runtime:
            with pytest.raises(RuntimeError, match="stop"):
                runtime.recover_shard(0)
        _close(runtime.router)


class TestWorkerSigkill:
    """kill -9 of a shard worker process: fail fast, recover fully."""

    def test_killed_worker_fails_fast_and_isolates(self, make_world,
                                                   tmp_path):
        platform = make_world(users=20)
        runtime = ServingRuntime(
            platform,
            RuntimeConfig(num_shards=2, backend="process",
                          journal_dir=str(tmp_path)),
            competition=KeyedCompetition(seed=13),
        )
        with runtime:
            uids = platform.users.user_ids()
            _drive(runtime, platform, 1, slots=1)
            victim = 0
            victim_uid = next(
                u for u in uids
                if runtime.router.shard_for(u).index == victim)
            other_uid = next(
                u for u in uids
                if runtime.router.shard_for(u).index != victim)
            process = runtime._clients[victim].process
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=10)
            # requests to the dead shard resolve as ERROR, not a hang
            result = runtime.submit(
                AdRequest(victim_uid, slots=1)).result(timeout=30)
            assert result.status is ServeStatus.ERROR
            # the other shard is unaffected
            assert runtime.submit(
                AdRequest(other_uid, slots=1)).result(timeout=30).ok
        # stop() above skipped the dead worker's merge-back cleanly

    def test_sigkill_recover_resume_byte_identical(self, make_world,
                                                   tmp_path):
        """Round A -> drain -> SIGKILL one worker -> stop -> recover
        from its per-batch-flushed journal -> round B == an
        uninterrupted run. Nothing acknowledged is lost; nothing is
        double-charged."""
        seed = 11
        ref_platform = make_world(seed=seed)
        reference = ServingRuntime(
            ref_platform,
            RuntimeConfig(num_shards=3, queue_capacity=4096,
                          backend="process"),
            competition=KeyedCompetition(seed=13),
        )
        with reference:
            _drive(reference, ref_platform, 2)
            _drive(reference, ref_platform, 1)

        platform = make_world(seed=seed)
        runtime = ServingRuntime(
            platform,
            RuntimeConfig(num_shards=3, queue_capacity=4096,
                          backend="process", journal_dir=str(tmp_path)),
            competition=KeyedCompetition(seed=13),
        )
        victim = 1
        with runtime:
            _drive(runtime, platform, 2)
            assert runtime.drain()
            # every acknowledged batch is journal-flushed, so a hard
            # kill of the idle worker loses nothing
            process = runtime._clients[victim].process
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=10)
        runtime.recover_shard(victim)
        with runtime:
            _drive(runtime, platform, 1)

        assert (canonical_json(state_report(runtime.router))
                == canonical_json(state_report(reference.router)))
        assert (runtime.router.aggregate_report()
                == reference.router.aggregate_report())
        assert _spends(runtime.router) == _spends(reference.router)


class TestJournaledEquivalence:
    def test_journaled_and_memory_runs_are_identical(self, make_world,
                                                     tmp_path):
        """Journaling is an observer: turning it on cannot change a
        single delivery decision."""
        seed = 31
        mem_platform = make_world(seed=seed)
        memory = ShardRouter(mem_platform, num_shards=4,
                             competition=KeyedCompetition(seed=7))
        jr_platform = make_world(seed=seed)
        journaled = ShardRouter(
            jr_platform, num_shards=4,
            competition=KeyedCompetition(seed=7),
            store_factory=journal_store_factory(str(tmp_path)),
        )
        for _ in range(3):
            _serve_round(memory, mem_platform)
            _serve_round(journaled, jr_platform)
        assert (canonical_json(state_report(memory))
                == canonical_json(state_report(journaled)))
        _close(journaled)
        # and the journal bytes themselves are valid JSON records
        total = 0
        for index in range(4):
            text = (tmp_path / f"shard-{index}-of-4.journal.jsonl"
                    ).read_text(encoding="utf-8")
            for line in text.splitlines():
                if line.strip():
                    total += len(json.loads(line))
        assert total > 0


class TestColumnarCheckpointBundle:
    """User-column blocks travel with the checkpoint bundle."""

    def test_columnar_bundle_round_trip(self, make_world, tmp_path):
        from repro.platform.catalog import build_us_catalog
        from repro.platform.platform import AdPlatform, PlatformConfig
        from repro.serve.sharding import users_columns_path

        platform = make_world(seed=17, columnar=True)
        router = ShardRouter(platform, num_shards=2,
                             competition=KeyedCompetition(seed=7))
        _serve_round(router, platform)  # columnar serving path works
        router.checkpoint_shards(directory=str(tmp_path))
        assert os.path.exists(users_columns_path(str(tmp_path)))

        # A fresh, unpopulated columnar world rehydrates the columns.
        fresh = AdPlatform(
            config=PlatformConfig(name="serve-test", columnar_users=True),
            catalog=build_us_catalog(platform_count=40, partner_count=25),
        )
        fresh_router = ShardRouter(fresh, num_shards=2)
        fresh_router.restore_user_columns(str(tmp_path))
        assert fresh.users.user_ids() == platform.users.user_ids()
        for original in platform.users:
            twin = fresh.users.get(original.user_id)
            assert sorted(twin.attribute_ids()) == \
                sorted(original.attribute_ids())
            assert set(twin.liked_pages) == set(original.liked_pages)

    def test_legacy_bundle_has_no_columns_file(self, make_world, tmp_path):
        from repro.errors import StoreError
        from repro.serve.sharding import users_columns_path

        platform = make_world(seed=17)
        router = ShardRouter(platform, num_shards=2,
                             competition=KeyedCompetition(seed=7))
        router.checkpoint_shards(directory=str(tmp_path))
        assert not os.path.exists(users_columns_path(str(tmp_path)))
        with pytest.raises(StoreError, match="columnar user store"):
            router.restore_user_columns(str(tmp_path))
