"""The live telemetry plane, observed from the serve layer.

Three guarantees under test, on both backends:

1. Streaming — worker metrics flow into the runtime's time-series
   buffer *during* the run (counters visibly advance between samples),
   not just at shutdown's merge-back.
2. Cross-process tracing — a request served on the process backend
   yields one connected span chain: ``serve.request`` (parent
   process) → ``serve.queue_wait`` + ``serve.engine`` (the engine
   span recorded in the worker process, origin != 0), all sharing the
   request's trace id.
3. Non-interference — turning telemetry and tracing on changes no
   delivery outcome: thread and process runs stay byte-identical to
   each other and to a telemetry-off run.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.slo import parse_slo
from repro.obs.tracing import Tracer, use_tracer
from repro.serve import (
    AdRequest,
    KeyedCompetition,
    LoadConfig,
    LoadGenerator,
    RuntimeConfig,
    ServingRuntime,
)

SEED = 29
BACKENDS = ["thread", "process"]


def _runtime(platform, backend, **overrides):
    config = dict(num_shards=2, queue_capacity=4096, backend=backend)
    config.update(overrides)
    return ServingRuntime(
        platform,
        RuntimeConfig(**config),
        competition=KeyedCompetition(seed=7),
    )


def _requests(platform, rounds=2, slots=1):
    return [
        AdRequest(user_id=user_id, slots=slots)
        for _ in range(rounds)
        for user_id in sorted(platform.users.user_ids())
    ]


@pytest.mark.parametrize("backend", BACKENDS)
class TestStreaming:
    def test_counters_advance_during_the_run(self, make_world, backend):
        """Samples taken mid-run must show served counts growing —
        the defining property of *streaming* telemetry vs merge-at-
        stop."""
        platform = make_world(seed=SEED)
        reg = MetricsRegistry("stream-test")
        mid_run = []
        with use_registry(reg):
            runtime = _runtime(platform, backend,
                               telemetry_interval_s=0.05)
            runtime.add_telemetry_listener(
                lambda rt, sample: mid_run.append(
                    sample.scalar("serve.requests_served")))
            with runtime:
                generator = LoadGenerator(
                    runtime, platform.users.user_ids(),
                    LoadConfig(rps=400.0, duration_s=1.0, seed=SEED))
                report = generator.run()
        assert report.tally.served > 0
        assert report.tally.errors == 0
        # At least one sample landed while requests were in flight
        # (strictly between zero and the final count), and the series
        # never goes backwards.
        assert len(mid_run) >= 3
        assert mid_run == sorted(mid_run)
        assert any(0 < count < report.tally.served
                   for count in mid_run), (
            "no sample caught the run in flight: "
            f"{mid_run} vs served={report.tally.served}")
        assert reg.value("serve.telemetry_polls") >= len(mid_run)

    def test_buffer_rates_and_shard_scalars(self, make_world, backend):
        platform = make_world(seed=SEED)
        reg = MetricsRegistry("rates-test")
        with use_registry(reg):
            runtime = _runtime(platform, backend,
                               telemetry_interval_s=0.05)
            with runtime:
                generator = LoadGenerator(
                    runtime, platform.users.user_ids(),
                    LoadConfig(rps=300.0, duration_s=0.8, seed=SEED))
                report = generator.run()
        buffer = runtime.telemetry
        assert len(buffer) >= 3
        latest = buffer.latest()
        # Per-shard extras cover every shard and sum to the total.
        per_shard = [latest.scalar(f"serve.shard{i}.served")
                     for i in range(2)]
        assert sum(per_shard) == report.tally.served
        assert latest.scalar("serve.requests_served") \
            == report.tally.served
        # The cumulative shard histograms carry every served request;
        # a windowed read (latest minus first sample) can only see a
        # subset of that.
        total_hist = sum(
            latest.histograms[f"serve.shard{i}.latency_s"].count
            for i in range(2))
        assert total_hist == report.tally.served
        windowed = sum(
            buffer.histogram_window(f"serve.shard{i}.latency_s").count
            for i in range(2))
        assert 0 < windowed <= total_hist

    def test_final_sample_taken_at_stop(self, make_world, backend):
        """Even a run shorter than the poll period ends with one
        complete sample (taken during stop), so post-run readers
        always see the final state."""
        platform = make_world(seed=SEED, users=10)
        reg = MetricsRegistry("final-sample")
        with use_registry(reg):
            runtime = _runtime(platform, backend,
                               telemetry_interval_s=30.0)
            with runtime:
                results = runtime.serve_and_wait(
                    _requests(platform, rounds=1))
        assert all(result.ok for result in results)
        latest = runtime.telemetry.latest()
        assert latest is not None
        assert latest.scalar("serve.requests_served") == len(results)

    def test_listener_exceptions_do_not_kill_the_stream(
            self, make_world, backend):
        platform = make_world(seed=SEED, users=10)
        reg = MetricsRegistry("listener-fence")
        calls = []

        def bad_listener(rt, sample):
            calls.append(sample.t_s)
            raise RuntimeError("listener boom")

        with use_registry(reg):
            runtime = _runtime(platform, backend,
                               telemetry_interval_s=0.05)
            runtime.add_telemetry_listener(bad_listener)
            with runtime:
                generator = LoadGenerator(
                    runtime, platform.users.user_ids(),
                    LoadConfig(rps=200.0, duration_s=0.5, seed=SEED))
                report = generator.run()
        assert report.tally.errors == 0
        assert len(calls) >= 2, "stream died after the first raise"


@pytest.mark.parametrize("backend", BACKENDS)
class TestRequestTracing:
    def _traced_run(self, make_world, backend, **overrides):
        platform = make_world(seed=SEED, users=15)
        trc = Tracer()
        reg = MetricsRegistry("trace-test")
        with use_tracer(trc), use_registry(reg):
            runtime = _runtime(platform, backend, **overrides)
            with runtime:
                results = runtime.serve_and_wait(
                    _requests(platform, rounds=1))
        assert all(result.ok for result in results)
        return trc, reg, results

    def test_every_request_has_a_complete_chain(self, make_world,
                                                backend):
        trc, _, results = self._traced_run(make_world, backend)
        spans = trc.spans
        by_id = {span.span_id: span for span in spans}
        requests = [s for s in spans if s.name == "serve.request"]
        assert len(requests) == len(results)
        for request in requests:
            children = [s for s in spans
                        if s.parent_id == request.span_id]
            names = {child.name for child in children}
            assert names == {"serve.queue_wait", "serve.engine"}, (
                f"request {request.span_id} chain incomplete: {names}")
            for child in children:
                assert child.trace_id == request.trace_id
                assert by_id[child.parent_id] is request
        # Distinct requests get distinct trace ids.
        trace_ids = [request.trace_id for request in requests]
        assert len(set(trace_ids)) == len(trace_ids)

    def test_engine_spans_record_worker_origin(self, make_world,
                                               backend):
        trc, reg, results = self._traced_run(make_world, backend)
        engines = trc.find("serve.engine")
        assert len(engines) == len(results)
        origins = {span.origin for span in engines}
        if backend == "process":
            # Engine work happened in worker processes: origin is the
            # shard index + 1, never the parent's 0.
            assert origins == {1, 2}
            assert reg.value("serve.trace_spans_merged") \
                >= len(engines)
        else:
            assert origins == {0}
        # Parent-side spans always carry origin 0.
        assert {s.origin for s in trc.find("serve.request")} == {0}

    def test_tracing_off_adds_no_spans(self, make_world, backend):
        platform = make_world(seed=SEED, users=10)
        reg = MetricsRegistry("no-trace")
        with use_registry(reg):
            runtime = _runtime(platform, backend)
            with runtime:
                results = runtime.serve_and_wait(
                    _requests(platform, rounds=1))
        assert all(result.ok for result in results)


class TestNonInterference:
    def _report_json(self, make_world, backend, telemetry, tracing):
        platform = make_world(seed=SEED)
        reg = MetricsRegistry(f"ni-{backend}-{telemetry}-{tracing}")
        overrides = {}
        if telemetry:
            overrides["telemetry_interval_s"] = 0.05
        trc = Tracer() if tracing else None
        ctx = use_tracer(trc) if trc is not None else None
        with use_registry(reg):
            if ctx is not None:
                ctx.__enter__()
            try:
                runtime = _runtime(platform, backend, **overrides)
                with runtime:
                    results = runtime.serve_and_wait(
                        _requests(platform, rounds=2, slots=2))
            finally:
                if ctx is not None:
                    ctx.__exit__(None, None, None)
        assert all(result.ok for result in results)
        return json.dumps(runtime.router.aggregate_report(),
                          sort_keys=True)

    def test_telemetry_and_tracing_change_no_outcome(self, make_world):
        baseline = self._report_json(make_world, "thread",
                                     telemetry=False, tracing=False)
        assert json.loads(baseline), "vacuous equivalence"
        for backend in BACKENDS:
            instrumented = self._report_json(
                make_world, backend, telemetry=True, tracing=True)
            assert instrumented == baseline, (
                f"{backend} backend diverged with telemetry on")


@pytest.mark.parametrize("backend", BACKENDS)
class TestSLOOnRealRuns:
    def test_report_evaluates_against_spec(self, make_world, backend):
        platform = make_world(seed=SEED)
        reg = MetricsRegistry("slo-run")
        with use_registry(reg):
            runtime = _runtime(platform, backend)
            with runtime:
                generator = LoadGenerator(
                    runtime, platform.users.user_ids(),
                    LoadConfig(rps=200.0, duration_s=0.5, seed=SEED))
                report = generator.run()
        evaluation = report.evaluate_slo(
            parse_slo("p99=30s,availability=1%"), registry=reg)
        assert evaluation.ok
        assert report.summary()["slo"]["ok"] is True
        assert reg.value("slo.availability") == pytest.approx(
            report.tally.served / report.tally.submitted)
        impossible = report.evaluate_slo(parse_slo("p99=1us"))
        assert not impossible.ok
        assert report.summary()["slo"]["ok"] is False
