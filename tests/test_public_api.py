"""Tests pinning the public API surface and the README quickstart."""

import pytest

import repro


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_docstring_quickstart_executes(self):
        """The module-docstring quickstart must stay runnable verbatim."""
        from repro import (
            AdPlatform,
            TransparencyProvider,
            TreadClient,
            WebDirectory,
        )

        platform = AdPlatform()
        web = WebDirectory()
        user = platform.register_user()
        user.set_attribute(platform.catalog.get("pc-networth-006"))

        provider = TransparencyProvider(platform, web, budget=100.0)
        provider.optin.via_page_like(user.user_id)
        provider.launch_partner_sweep()
        provider.run_delivery()

        client = TreadClient(user.user_id, platform,
                             provider.publish_decode_pack())
        assert client.sync().set_attributes == {"pc-networth-006"}


class TestObfuscationIsNotEncryption:
    def test_anyone_with_the_pack_decodes_any_feed(self, platform, web):
        """Documented property: the codebook is shared with ALL
        subscribers, so obfuscation hides Treads from the platform's
        reviewer — not from anyone holding the decode pack who can see
        the user's screen. (The paper's privacy analysis is about the
        PROVIDER, which never sees feeds at all.)"""
        from repro.core.client import TreadClient
        from repro.core.provider import TransparencyProvider

        provider = TransparencyProvider(platform, web, budget=50.0)
        attr = platform.catalog.partner_attributes()[0]
        user = platform.register_user()
        user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep([attr])
        provider.run_delivery()
        pack = provider.publish_decode_pack()

        # a different subscriber's client instance, pointed at the same
        # user id (i.e. shoulder-surfing the feed), decodes it fully
        snoop = TreadClient(user.user_id, platform, pack)
        assert attr.attr_id in snoop.sync().set_attributes
