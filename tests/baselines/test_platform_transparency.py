"""Tests for the status-quo transparency baseline."""

import pytest

from repro.baselines.platform_transparency import (
    status_quo_view,
    status_quo_views,
)
from repro.platform.ads import AdCreative


class TestStatusQuoView:
    def test_preferences_attributes_collected(self, platform):
        user = platform.register_user()
        binary = [a for a in platform.catalog.platform_attributes()
                  if a.is_binary][0]
        user.set_attribute(binary)
        view = status_quo_view(platform, user.user_id)
        assert binary.attr_id in view.revealed_attributes

    def test_partner_attributes_invisible(self, platform):
        """The status quo reveals 0 partner attributes — the gap the
        paper's Treads close (section 1)."""
        user = platform.register_user()
        partner = platform.catalog.partner_attributes()[0]
        user.set_attribute(partner)
        view = status_quo_view(platform, user.user_id)
        assert partner.attr_id not in view.revealed_attributes

    def test_explanations_add_at_most_one_attr_per_ad(self, platform,
                                                      funded_account,
                                                      campaign):
        user = platform.register_user()
        binaries = [a for a in platform.catalog.platform_attributes()
                    if a.is_binary][:3]
        for attr in binaries:
            user.set_attribute(attr)
        platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "b"),
            " & ".join(f"attr:{a.attr_id}" for a in binaries),
            bid_cap_cpm=10.0,
        )
        platform.run_until_saturated()
        view = status_quo_view(platform, user.user_id)
        # the ad targeted 3 attributes; the explanation reveals only 1
        assert len(view.explanation_attributes) == 1

    def test_advertisers_listed(self, platform, funded_account):
        from repro.platform.pii import record_from_raw
        user = platform.register_user()
        platform.users.attach_pii(user.user_id, "email", "a@b.c")
        platform.create_pii_audience(
            funded_account.account_id, [record_from_raw("email", "a@b.c")]
        )
        view = status_quo_view(platform, user.user_id)
        assert funded_account.account_id in view.advertisers

    def test_views_batch(self, platform):
        ids = [platform.register_user().user_id for _ in range(3)]
        views = status_quo_views(platform, ids)
        assert set(views) == set(ids)
