"""Tests for the XRay/Sunlight-style correlation auditor."""

import pytest

from repro.baselines.correlation import CorrelationAuditor
from repro.platform.ads import AdCreative


@pytest.fixture
def pool(platform):
    return [a for a in platform.catalog.platform_attributes()
            if a.is_binary][:8]


def _mystery_ads(platform, attrs, bid=10.0):
    """An unknown advertiser runs one single-attribute ad per attr."""
    account = platform.create_ad_account("mystery", budget=100.0)
    campaign = platform.create_campaign(account.account_id, "m")
    truth = {}
    for attr in attrs:
        ad = platform.submit_ad(
            account.account_id, campaign.campaign_id,
            AdCreative("h", f"promo {attr.attr_id}"),
            f"attr:{attr.attr_id} & country:US", bid_cap_cpm=bid,
        )
        truth[ad.ad_id] = attr.attr_id
    return truth


class TestControls:
    def test_create_controls_plants_known_attributes(self, platform, pool):
        auditor = CorrelationAuditor(platform, seed=1)
        auditor.create_controls(10, pool, set_probability=0.5)
        assert auditor.accounts_used == 10
        for user_id, attrs in auditor.planted.items():
            profile = platform.users.get(user_id)
            assert attrs <= profile.binary_attrs

    def test_set_probability_extremes(self, platform, pool):
        auditor = CorrelationAuditor(platform, seed=1)
        auditor.create_controls(5, pool, set_probability=1.0)
        assert all(len(a) == len(pool) for a in auditor.planted.values())


class TestInference:
    def test_receivers_of(self, platform, pool):
        auditor = CorrelationAuditor(platform, seed=2)
        auditor.create_controls(10, pool)
        truth = _mystery_ads(platform, pool[:1])
        platform.run_until_saturated()
        ad_id = next(iter(truth))
        receivers = auditor.receivers_of(ad_id)
        expected = {uid for uid, attrs in auditor.planted.items()
                    if pool[0].attr_id in attrs}
        assert receivers == expected

    def test_many_controls_infer_correctly(self, platform, pool):
        """With enough control accounts and clean delivery, correlation
        identifies the targeted attribute."""
        auditor = CorrelationAuditor(platform, seed=3)
        auditor.create_controls(40, pool)
        truth = _mystery_ads(platform, pool)
        platform.run_until_saturated()
        assert auditor.accuracy(truth, pool) >= 0.9

    def test_one_control_is_ambiguous(self, platform, pool):
        """One control cannot separate 8 hypotheses — the deployment-cost
        point of section 5."""
        auditor = CorrelationAuditor(platform, seed=4)
        auditor.create_controls(1, pool, set_probability=0.5)
        truth = _mystery_ads(platform, pool)
        platform.run_until_saturated()
        assert auditor.accuracy(truth, pool) < 0.75

    def test_empty_truth_zero_accuracy(self, platform, pool):
        auditor = CorrelationAuditor(platform, seed=5)
        auditor.create_controls(2, pool)
        assert auditor.accuracy({}, pool) == 0.0

    def test_significance_needs_accounts(self, platform, pool):
        """Fisher-exact p-values cannot reach 0.05 with 2 controls even
        on perfectly clean data — the Sunlight deployment-cost point."""
        auditor = CorrelationAuditor(platform, seed=8)
        auditor.create_controls(2, pool, set_probability=0.5)
        truth = _mystery_ads(platform, pool[:1])
        platform.run_until_saturated()
        ad_id, attr_id = next(iter(truth.items()))
        assert auditor.significance(ad_id, attr_id) > 0.05

    def test_significance_with_many_accounts(self, platform, pool):
        auditor = CorrelationAuditor(platform, seed=9)
        auditor.create_controls(40, pool, set_probability=0.5)
        truth = _mystery_ads(platform, pool[:1])
        platform.run_until_saturated()
        ad_id, attr_id = next(iter(truth.items()))
        assert auditor.significance(ad_id, attr_id) < 0.001

    def test_significant_inferences_counts_correct_only(self, platform,
                                                        pool):
        auditor = CorrelationAuditor(platform, seed=10)
        auditor.create_controls(40, pool, set_probability=0.5)
        truth = _mystery_ads(platform, pool[:3])
        platform.run_until_saturated()
        count = auditor.significant_inferences(truth, pool)
        assert 0 <= count <= 3

    def test_confidence_bounded(self, platform, pool):
        auditor = CorrelationAuditor(platform, seed=6)
        auditor.create_controls(5, pool)
        truth = _mystery_ads(platform, pool[:1])
        platform.run_until_saturated()
        outcome = auditor.infer_targeting(next(iter(truth)), pool)
        assert 0.0 <= outcome.confidence <= 1.0
