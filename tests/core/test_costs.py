"""Tests for the cost model — the paper's section 3.1 arithmetic."""

import pytest

from repro.core.costs import (
    DEFAULT_CPM_USD,
    VALIDATION_CPM_USD,
    CampaignCostSummary,
    CostModel,
    FundingPlan,
    per_user_cost_curve,
)


class TestPaperNumbers:
    """Every dollar figure quoted in section 3.1, "Cost"."""

    def test_each_attribute_costs_0_002_at_default_bid(self):
        assert CostModel(cpm=2.0).per_attribute() == pytest.approx(0.002)

    def test_each_attribute_costs_0_01_at_validation_bid(self):
        """Footnote 4: 'For our elevated bid of $10 CPM ... each attribute
        would cost $0.01 to reveal.'"""
        assert CostModel(cpm=10.0).per_attribute() == pytest.approx(0.01)

    def test_50_attribute_user_costs_0_10(self):
        """'it would cost the provider $0.10 to run ads to reveal all
        targeting parameters to a user who had (say) 50 targeting
        parameters'."""
        assert CostModel(cpm=2.0).full_profile(50) == pytest.approx(0.10)

    def test_unset_attributes_cost_zero(self):
        """'there is ZERO per-user cost for running Treads corresponding
        to targeting parameters that a user does not have'."""
        assert CostModel(cpm=2.0).unset_attribute() == 0.0
        assert CostModel(cpm=2.0).full_profile(0) == 0.0

    def test_nonbinary_attribute_one_impression(self):
        """m-valued attribute: 'only have to pay for one impression per
        user, costing around $0.002'."""
        assert CostModel(cpm=2.0).nonbinary_attribute() == \
            pytest.approx(0.002)

    def test_constants(self):
        assert DEFAULT_CPM_USD == 2.0
        assert VALIDATION_CPM_USD == 10.0


class TestCostModel:
    def test_control_adds_one_impression(self):
        model = CostModel(cpm=2.0)
        assert model.full_profile(10, include_control=True) == \
            pytest.approx(0.022)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CostModel().full_profile(-1)

    def test_bitsplit_nonbinary_cost(self):
        # a user whose value index has 3 set bits pays 3 impressions
        assert CostModel(cpm=2.0).nonbinary_attribute(3) == \
            pytest.approx(0.006)

    def test_cost_curve_linear(self):
        rows = per_user_cost_curve([0, 10, 50, 100], cpm=2.0)
        assert [r["cost_usd"] for r in rows] == \
            pytest.approx([0.0, 0.02, 0.10, 0.20])


class TestCampaignCostSummary:
    def _summary(self):
        return CampaignCostSummary(
            total_spend=0.10, impressions=50, treads_launched=508,
            users_opted_in=5,
        )

    def test_cost_per_impression(self):
        assert self._summary().cost_per_impression == pytest.approx(0.002)

    def test_effective_cpm(self):
        assert self._summary().effective_cpm == pytest.approx(2.0)

    def test_cost_per_user(self):
        assert self._summary().cost_per_user == pytest.approx(0.02)

    def test_zero_division_guards(self):
        empty = CampaignCostSummary(0.0, 0, 0, 0)
        assert empty.cost_per_impression == 0.0
        assert empty.cost_per_user == 0.0


class TestFundingPlan:
    def test_break_even_fee_is_cost_per_user(self):
        plan = FundingPlan(
            summary=CampaignCostSummary(0.10, 50, 508, 5),
        )
        assert plan.break_even_user_fee == pytest.approx(0.02)

    def test_donations_reduce_user_fee(self):
        plan = FundingPlan(
            summary=CampaignCostSummary(0.10, 50, 508, 5),
            donation_pool=0.05,
        )
        assert plan.donation_shortfall == pytest.approx(0.05)
        assert plan.user_fee_with_donations() == pytest.approx(0.01)

    def test_fully_funded_means_free(self):
        plan = FundingPlan(
            summary=CampaignCostSummary(0.10, 50, 508, 5),
            donation_pool=1.0,
        )
        assert plan.user_fee_with_donations() == 0.0

    def test_no_users_no_fee(self):
        plan = FundingPlan(summary=CampaignCostSummary(0.0, 0, 0, 0))
        assert plan.user_fee_with_donations() == 0.0
