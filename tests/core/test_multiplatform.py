"""Tests for multi-platform opt-in and sweeps."""

import pytest

from repro.core.client import TreadClient
from repro.core.multiplatform import MultiPlatformProvider
from repro.errors import ProviderError
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.workloads.competition import zero_competition


def _platform(name):
    return AdPlatform(
        config=PlatformConfig(name=name),
        catalog=build_us_catalog(platform_count=40, partner_count=10),
        competing_draw=zero_competition(),
    )


@pytest.fixture
def platforms():
    return [_platform("fb"), _platform("goog"), _platform("twtr")]


@pytest.fixture
def multi(platforms, web):
    return MultiPlatformProvider(platforms, web, budget_per_platform=100.0)


class TestConstruction:
    def test_one_provider_per_platform(self, multi, platforms):
        assert set(multi.providers) == {"fb", "goog", "twtr"}

    def test_shared_optin_page_carries_all_pixels(self, multi):
        page = multi.website.get_page("/optin")
        assert len(page.pixel_ids) == 3

    def test_empty_platform_list_rejected(self, web):
        with pytest.raises(ProviderError):
            MultiPlatformProvider([], web)

    def test_duplicate_platform_names_rejected(self, web):
        with pytest.raises(ProviderError):
            MultiPlatformProvider([_platform("same"), _platform("same")],
                                  web)

    def test_unknown_provider_lookup(self, multi):
        with pytest.raises(ProviderError):
            multi.provider("myspace")


class TestOneShotOptIn:
    def test_single_visit_opts_into_every_platform(self, multi, platforms):
        """Section 3.1: pixels from multiple platforms on one page let the
        user sign up for all of them 'at one shot'."""
        users = {p.name: p.register_user() for p in platforms}
        # one physical person: use the fb identity's browser; each
        # platform recognises its own user id. Simulate with one browser
        # per platform visiting the SAME page once.
        for platform in platforms:
            browser = platform.browser_for(users[platform.name].user_id)
            multi.optin_via_pixel(browser)
        for platform in platforms:
            pixel = multi.provider(platform.name).optin.optin_pixel
            assert platform.pixels.visitors(pixel.pixel_id) == {
                users[platform.name].user_id
            }

    def test_platform_only_sees_own_pixel(self, multi, platforms):
        fb = platforms[0]
        user = fb.register_user()
        multi.optin_via_pixel(fb.browser_for(user.user_id))
        goog_pixel = multi.provider("goog").optin.optin_pixel
        assert platforms[1].pixels.visitors(goog_pixel.pixel_id) == set()


class TestSweeps:
    def test_sweeps_run_everywhere(self, multi, platforms):
        users = {}
        for platform in platforms:
            user = platform.register_user()
            attr = platform.catalog.partner_attributes()[0]
            user.set_attribute(attr)
            multi.optin_via_page_like(platform.name, user.user_id)
            users[platform.name] = (user, attr)
        reports = multi.launch_partner_sweeps()
        assert set(reports) == {"fb", "goog", "twtr"}
        multi.run_delivery()
        packs = multi.decode_packs()
        for platform in platforms:
            user, attr = users[platform.name]
            client = TreadClient(user.user_id, platform,
                                 packs[platform.name])
            profile = client.sync()
            assert profile.set_attributes == {attr.attr_id}

    def test_total_spend_sums_platforms(self, multi, platforms):
        for platform in platforms:
            user = platform.register_user()
            user.set_attribute(platform.catalog.partner_attributes()[0])
            multi.optin_via_page_like(platform.name, user.user_id)
        multi.launch_partner_sweeps()
        multi.run_delivery()
        assert multi.total_spend() == pytest.approx(sum(
            p.total_spend() for p in multi.providers.values()
        ))
        impressions = sum(p.total_impressions()
                          for p in multi.providers.values())
        assert impressions == 6  # 3 platforms x (1 attr + control)
