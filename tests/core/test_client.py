"""Tests for the user-side Tread client (decoding and reconstruction)."""

import pytest

from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.core.treads import Encoding, Placement
from repro.platform.ads import AdCreative


@pytest.fixture
def provider(platform, web):
    return TransparencyProvider(platform, web, budget=200.0)


def _user_with(platform, provider, attrs=()):
    user = platform.register_user()
    for attr in attrs:
        user.set_attribute(attr)
    provider.optin.via_page_like(user.user_id)
    return user


def _client(platform, provider, user, **kw):
    return TreadClient(user.user_id, platform,
                       provider.publish_decode_pack(), **kw)


class TestCodebookDecoding:
    def test_reconstructs_set_attributes(self, platform, web, provider):
        attrs = platform.catalog.partner_attributes()[:3]
        user = _user_with(platform, provider, attrs)
        provider.launch_partner_sweep()
        provider.run_delivery()
        profile = _client(platform, provider, user).sync()
        assert profile.set_attributes == {a.attr_id for a in attrs}
        assert profile.control_received
        assert profile.undecoded == []

    def test_nothing_revealed_without_attrs(self, platform, web, provider):
        user = _user_with(platform, provider)
        provider.launch_partner_sweep()
        provider.run_delivery()
        profile = _client(platform, provider, user).sync()
        assert profile.set_attributes == set()
        assert profile.control_received

    def test_exclusion_treads_reveal_false_or_missing(self, platform, web,
                                                      provider):
        attrs = platform.catalog.partner_attributes()[:2]
        user = _user_with(platform, provider, attrs[:1])
        provider.launch_attribute_sweep(attrs, include_exclusions=True)
        provider.run_delivery()
        profile = _client(platform, provider, user).sync()
        assert profile.set_attributes == {attrs[0].attr_id}
        assert attrs[1].attr_id in profile.false_or_missing

    def test_ads_from_other_advertisers_ignored(self, platform, web,
                                                provider, funded_account,
                                                campaign):
        user = _user_with(platform, provider)
        platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "Reference: 1,234,567."), "country:US",
            bid_cap_cpm=10.0,
        )
        provider.launch_partner_sweep()
        provider.run_delivery()
        client = _client(platform, provider, user)
        assert all(
            ad.account_id == provider.account.account_id
            for ad in client.provider_ads()
        )
        profile = client.sync()
        assert profile.undecoded == []


class TestStegoDecoding:
    def test_image_treads_decoded(self, platform, web):
        provider = TransparencyProvider(
            platform, web, budget=200.0,
            encoding=Encoding.STEGANOGRAPHIC,
            placement=Placement.IN_AD_IMAGE,
        )
        attrs = platform.catalog.partner_attributes()[:2]
        user = _user_with(platform, provider, attrs)
        provider.launch_attribute_sweep(attrs)
        provider.run_delivery()
        profile = _client(platform, provider, user).sync()
        assert profile.set_attributes == {a.attr_id for a in attrs}


class TestLandingDecoding:
    def test_landing_treads_decoded_without_visit(self, platform, web):
        provider = TransparencyProvider(
            platform, web, budget=200.0,
            placement=Placement.LANDING_PAGE,
        )
        attrs = platform.catalog.partner_attributes()[:2]
        user = _user_with(platform, provider, attrs)
        provider.launch_attribute_sweep(attrs)
        provider.run_delivery()
        profile = _client(platform, provider, user).sync()
        assert profile.set_attributes == {a.attr_id for a in attrs}
        # no visit -> provider first-party log saw nothing
        tread_paths = [t.landing_path for t in provider.treads
                       if t.landing_path]
        visited = {e.path for e in provider.website.access_log}
        assert visited.isdisjoint(tread_paths)

    def test_follow_landing_visits_page(self, platform, web):
        provider = TransparencyProvider(
            platform, web, budget=200.0,
            placement=Placement.LANDING_PAGE,
        )
        attrs = platform.catalog.partner_attributes()[:1]
        user = _user_with(platform, provider, attrs)
        provider.launch_attribute_sweep(attrs)
        provider.run_delivery()
        browser = platform.browser_for(user.user_id)
        client = _client(platform, provider, user, web=web,
                         browser=browser, follow_landing=True)
        client.sync()
        visited = {e.path for e in provider.website.access_log}
        tread_paths = {t.landing_path for t in provider.treads
                       if t.landing_path}
        assert visited & tread_paths

    def test_clear_cookies_unlinks_visits(self, platform, web):
        """The paper's mitigation: with cookie clearing, each landing
        visit presents a fresh cookie."""
        provider = TransparencyProvider(
            platform, web, budget=200.0,
            placement=Placement.LANDING_PAGE,
        )
        attrs = platform.catalog.partner_attributes()[:3]
        user = _user_with(platform, provider, attrs)
        provider.launch_attribute_sweep(attrs)
        provider.run_delivery()
        browser = platform.browser_for(user.user_id)
        client = _client(platform, provider, user, web=web,
                         browser=browser, follow_landing=True,
                         clear_cookies_first=True)
        client.sync()
        tread_paths = {t.landing_path for t in provider.treads
                       if t.landing_path}
        cookies = [e.cookie_id for e in provider.website.access_log
                   if e.path in tread_paths]
        assert len(cookies) >= 3
        assert len(set(cookies)) == len(cookies)  # all distinct


class TestBitsplitReconstruction:
    def test_value_reconstructed(self, platform, web, provider):
        multi = platform.catalog.multi_attributes()[0]
        user = platform.register_user()
        user.set_attribute(multi, multi.values[3])
        provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep([])  # control only
        provider.launch_value_reveal(multi.attr_id, scheme="bitsplit")
        provider.run_delivery()
        profile = _client(platform, provider, user).sync()
        assert profile.values[multi.attr_id] == multi.values[3]

    def test_value_zero_index_needs_control(self, platform, web, provider):
        """A user with value index 0 receives NO bit-Treads; only the
        control ad disambiguates 'all zero bits' from 'no delivery'."""
        multi = platform.catalog.multi_attributes()[0]
        user = platform.register_user()
        user.set_attribute(multi, multi.values[0])
        provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep([])  # control only
        provider.launch_value_reveal(multi.attr_id, scheme="bitsplit")
        provider.run_delivery()
        profile = _client(platform, provider, user).sync()
        assert profile.control_received
        assert profile.values[multi.attr_id] == multi.values[0]

    def test_no_control_no_reconstruction(self, platform, web, provider):
        multi = platform.catalog.multi_attributes()[0]
        user = platform.register_user()
        user.set_attribute(multi, multi.values[3])
        provider.optin.via_page_like(user.user_id)
        provider.launch_value_reveal(multi.attr_id, scheme="bitsplit")
        provider.run_delivery()
        profile = _client(platform, provider, user).sync()
        assert multi.attr_id not in profile.values
        assert profile.raw_bits  # bits arrived but are held back

    def test_enumeration_values_direct(self, platform, web, provider):
        multi = platform.catalog.multi_attributes()[0]
        user = platform.register_user()
        user.set_attribute(multi, multi.values[2])
        provider.optin.via_page_like(user.user_id)
        provider.launch_value_reveal(multi.attr_id, scheme="enumeration")
        provider.run_delivery()
        profile = _client(platform, provider, user).sync()
        assert profile.values[multi.attr_id] == multi.values[2]


class TestTotalFacts:
    def test_counts_distinct_facts(self, platform, web, provider):
        attrs = platform.catalog.partner_attributes()[:2]
        user = _user_with(platform, provider, attrs)
        provider.launch_partner_sweep()
        provider.run_delivery()
        profile = _client(platform, provider, user).sync()
        assert profile.total_facts == 2
