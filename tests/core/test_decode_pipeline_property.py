"""Property test: render -> deliver -> decode round-trips in every mode.

The creative renderer and the client decoder are written independently;
this property pins them together: for ANY payload and ANY supported
review-passing (encoding, placement) mode, a payload rendered into a
DeliveredAd decodes back to itself.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codebook import Codebook
from repro.core.creative import SUPPORTED_MODES, render
from repro.core.provider import DecodePack
from repro.core.client import TreadClient
from repro.core.treads import Encoding, Placement, RevealKind, RevealPayload
from repro.platform.catalog import build_us_catalog
from repro.platform.delivery import DeliveredAd
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.workloads.competition import zero_competition

_DECODABLE_MODES = [
    mode for mode in SUPPORTED_MODES
    if mode != (Encoding.EXPLICIT, Placement.IN_AD_TEXT)
    # explicit in-ad never survives review; its decode path is tested
    # separately via explicit controls
]

_PLATFORM = AdPlatform(
    config=PlatformConfig(name="decodeprop"),
    catalog=build_us_catalog(40, 25),
    competing_draw=zero_competition(),
)
_ATTR_IDS = [a.attr_id for a in _PLATFORM.catalog.partner_attributes()]

_payloads = st.one_of(
    st.builds(
        RevealPayload,
        kind=st.just(RevealKind.ATTRIBUTE_SET),
        attr_id=st.sampled_from(_ATTR_IDS),
    ),
    st.builds(
        RevealPayload,
        kind=st.just(RevealKind.ATTRIBUTE_EXCLUDED),
        attr_id=st.sampled_from(_ATTR_IDS),
    ),
    st.builds(
        RevealPayload,
        kind=st.just(RevealKind.VALUE_BIT),
        attr_id=st.sampled_from(_ATTR_IDS),
        bit_index=st.integers(0, 9),
        bit_value=st.just(1),
    ),
    st.builds(
        RevealPayload,
        kind=st.just(RevealKind.CUSTOM_ATTRIBUTE),
        custom_label=st.text(
            "abcdefghijklmnopqrstuvwxyz -", min_size=1, max_size=24
        ).map(str.strip).filter(bool),
    ),
    st.just(RevealPayload(kind=RevealKind.CONTROL)),
)


@settings(max_examples=60, deadline=None)
@given(payload=_payloads, mode=st.sampled_from(_DECODABLE_MODES))
def test_render_decode_round_trip(payload, mode):
    encoding, placement = mode
    book = Codebook(salt="prop")
    rendered = render(payload, encoding, placement, book,
                      landing_domain="prov.example.org")
    pack = DecodePack(
        provider_name="prop",
        codebook_snapshot=book.snapshot(),
        codebook_salt="prop",
        value_tables={},
        account_ids={"decodeprop": "acct-x"},
        landing_domains=("prov.example.org",),
    )
    creative = rendered.creative
    delivered = DeliveredAd(
        ad_id="ad-x",
        account_id="acct-x",
        headline=creative.headline,
        body=creative.body,
        image=creative.image,
        landing_url=(str(creative.landing_url)
                     if creative.landing_url else None),
        impression_seq=0,
    )
    client = TreadClient("user-x", _PLATFORM, pack)
    decoded = client._decode_ad(delivered)
    assert decoded is not None
    assert decoded.kind is payload.kind
    assert decoded.attr_id == payload.attr_id
    assert decoded.bit_index == payload.bit_index
    assert decoded.custom_label == payload.custom_label
