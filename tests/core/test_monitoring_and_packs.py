"""Tests for profile diffs, pack serialization, and pack validation."""

import pytest

from repro.core.client import RevealedProfile, TreadClient
from repro.core.monitoring import diff_profiles
from repro.core.packformat import pack_from_json, pack_to_json, validate_pack
from repro.core.provider import DecodePack, TransparencyProvider
from repro.errors import EncodingError


class TestDiffProfiles:
    def _profile(self, user_id="u1", attrs=(), values=None, pii=(),
                 control=True):
        return RevealedProfile(
            user_id=user_id,
            set_attributes=set(attrs),
            values=dict(values or {}),
            pii_present=set(pii),
            control_received=control,
        )

    def test_gained_and_lost(self):
        diff = diff_profiles(
            self._profile(attrs=["a", "b"]),
            self._profile(attrs=["b", "c"]),
        )
        assert diff.gained_attributes == ("c",)
        assert diff.lost_attributes == ("a",)
        assert diff.reliable

    def test_changed_values(self):
        diff = diff_profiles(
            self._profile(values={"m": "x"}),
            self._profile(values={"m": "y", "n": "z"}),
        )
        assert diff.changed_values == {"m": ("x", "y")}

    def test_gained_pii(self):
        diff = diff_profiles(
            self._profile(pii=["email"]),
            self._profile(pii=["email", "phone"]),
        )
        assert diff.gained_pii == ("phone",)

    def test_unreliable_without_controls(self):
        diff = diff_profiles(
            self._profile(control=False), self._profile()
        )
        assert not diff.reliable

    def test_cross_user_rejected(self):
        with pytest.raises(ValueError):
            diff_profiles(self._profile("u1"), self._profile("u2"))

    def test_empty_diff(self):
        diff = diff_profiles(self._profile(attrs=["a"]),
                             self._profile(attrs=["a"]))
        assert diff.is_empty

    def test_end_to_end_broker_churn(self, platform, web):
        """A broker ships a new record between sweeps; the second sweep's
        diff reports exactly the new attribute."""
        provider = TransparencyProvider(platform, web, budget=100.0)
        attrs = platform.catalog.partner_attributes()[:2]
        user = platform.register_user()
        platform.users.attach_pii(user.user_id, "email", "churn@x.y")
        user.set_attribute(attrs[0])
        provider.optin.via_page_like(user.user_id)
        provider.launch_partner_sweep()
        provider.run_delivery()
        pack = provider.publish_decode_pack()
        before = TreadClient(user.user_id, platform, pack).sync()

        # the broker learns something new about the user
        platform.brokers.broker("Acxiom").add_record(
            "late-1", [("email", "churn@x.y")], [(attrs[1].attr_id, None)]
        )
        platform.ingest_brokers()
        provider.run_delivery()  # undelivered Treads now match
        after = TreadClient(user.user_id, platform, pack).sync()

        diff = diff_profiles(before, after)
        assert diff.gained_attributes == (attrs[1].attr_id,)
        assert diff.reliable


class TestPackSerialization:
    def _pack(self, platform, web):
        provider = TransparencyProvider(platform, web, budget=50.0)
        provider.launch_partner_sweep()
        multi = platform.catalog.multi_attributes()[0]
        provider.launch_value_reveal(multi.attr_id)
        return provider.publish_decode_pack()

    def test_json_round_trip(self, platform, web):
        pack = self._pack(platform, web)
        restored = pack_from_json(pack_to_json(pack))
        assert restored == pack

    def test_unknown_format_rejected(self):
        with pytest.raises(EncodingError):
            pack_from_json('{"format": 99}')

    def test_serialized_pack_still_decodes(self, platform, web):
        provider = TransparencyProvider(platform, web, budget=50.0)
        attr = platform.catalog.partner_attributes()[0]
        user = platform.register_user()
        user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep([attr])
        provider.run_delivery()
        wire = pack_to_json(provider.publish_decode_pack())
        profile = TreadClient(user.user_id, platform,
                              pack_from_json(wire)).sync()
        assert attr.attr_id in profile.set_attributes


class TestValidatePack:
    def test_clean_pack_validates(self, platform, web):
        provider = TransparencyProvider(platform, web, budget=50.0)
        provider.launch_partner_sweep()
        multi = platform.catalog.multi_attributes()[0]
        provider.launch_value_reveal(multi.attr_id)
        issues = validate_pack(provider.publish_decode_pack(),
                               platform.catalog)
        assert issues == []

    def test_unknown_attribute_flagged(self, platform):
        pack = DecodePack(
            provider_name="sketchy",
            codebook_snapshot={"1,000,001": "attribute_set|made-up-attr"},
            codebook_salt="s",
            value_tables={},
            account_ids={"p": "acct"},
            landing_domains=(),
        )
        issues = validate_pack(pack, platform.catalog)
        assert any("not in the platform catalog" in i for i in issues)

    def test_undecodable_canonical_flagged(self):
        pack = DecodePack(
            provider_name="broken",
            codebook_snapshot={"1,000,001": "martian|x"},
            codebook_salt="s",
            value_tables={},
            account_ids={"p": "acct"},
            landing_domains=(),
        )
        issues = validate_pack(pack)
        assert any("undecodable" in i for i in issues)

    def test_missing_value_table_flagged(self):
        pack = DecodePack(
            provider_name="gappy",
            codebook_snapshot={"1,000,001": "value_bit|m1|0|1"},
            codebook_salt="s",
            value_tables={},
            account_ids={"p": "acct"},
            landing_domains=(),
        )
        issues = validate_pack(pack)
        assert any("no value table" in i for i in issues)

    def test_excess_bits_flagged(self):
        pack = DecodePack(
            provider_name="padded",
            codebook_snapshot={
                "1,000,001": "value_bit|m1|0|1",
                "1,000,002": "value_bit|m1|5|1",
            },
            codebook_salt="s",
            value_tables={"m1": ("a", "b")},
            account_ids={"p": "acct"},
            landing_domains=(),
        )
        issues = validate_pack(pack)
        assert any("bit positions" in i for i in issues)

    def test_no_accounts_flagged(self):
        pack = DecodePack(
            provider_name="ghost", codebook_snapshot={}, codebook_salt="s",
            value_tables={}, account_ids={}, landing_domains=(),
        )
        assert any("no provider accounts" in i for i in validate_pack(pack))

    def test_demographic_attr_ids_allowed(self, platform, web):
        """demographic:age / demographic:zip live outside the catalog by
        design and must not be flagged."""
        provider = TransparencyProvider(platform, web, budget=50.0)
        provider.launch_age_reveal(13, 20)
        provider.launch_location_reveal(["10001"])
        issues = validate_pack(provider.publish_decode_pack(),
                               platform.catalog)
        assert issues == []
