"""Tests for age (bit-split) and ZIP (enumeration) demographic reveals."""

import pytest

from repro.core.bitsplit import bits_needed
from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.errors import ProviderError


@pytest.fixture
def provider(platform, web):
    return TransparencyProvider(platform, web, budget=200.0)


def _optin(platform, provider, **kw):
    user = platform.register_user(**kw)
    provider.optin.via_page_like(user.user_id)
    return user


class TestAgeReveal:
    def test_log2_tread_count_for_97_ages(self, provider):
        """The paper's example: age with 97 values needs 7 Treads."""
        report = provider.launch_age_reveal(13, 109)
        assert len(report.treads) == 7
        assert bits_needed(97) == 7

    def test_users_reconstruct_exact_age(self, platform, web, provider):
        users = [
            _optin(platform, provider, age=age)
            for age in (13, 14, 37, 64, 109)
        ]
        provider.launch_attribute_sweep([])  # control
        provider.launch_age_reveal(13, 109)
        provider.run_delivery()
        pack = provider.publish_decode_pack()
        for user in users:
            profile = TreadClient(user.user_id, platform, pack).sync()
            assert profile.values[provider.AGE_ATTR_ID] == str(user.age)

    def test_min_age_user_needs_only_control(self, platform, web,
                                             provider):
        """Age 13 = index 0 = all-zero bits: no age Treads delivered, yet
        the reconstruction still lands via the control ad."""
        user = _optin(platform, provider, age=13)
        provider.launch_attribute_sweep([])
        provider.launch_age_reveal(13, 109)
        provider.run_delivery()
        profile = TreadClient(user.user_id, platform,
                              provider.publish_decode_pack()).sync()
        assert profile.values[provider.AGE_ATTR_ID] == "13"
        # and the user paid exactly one impression (the control)
        assert len(platform.feed(user.user_id)) == 1

    def test_inverted_range_rejected(self, provider):
        with pytest.raises(ProviderError):
            provider.launch_age_reveal(50, 20)

    def test_impressions_bounded_by_log2(self, platform, web, provider):
        user = _optin(platform, provider, age=109)  # worst-case popcount
        provider.launch_age_reveal(13, 109)
        provider.run_delivery()
        assert len(platform.feed(user.user_id)) <= 7


class TestLocationReveal:
    def test_user_learns_their_zip(self, platform, web, provider):
        candidates = [f"{z:05d}" for z in range(10001, 10021)]
        user = _optin(platform, provider, zip_code="10007")
        report = provider.launch_location_reveal(candidates)
        assert len(report.treads) == 20
        provider.run_delivery()
        profile = TreadClient(user.user_id, platform,
                              provider.publish_decode_pack()).sync()
        assert profile.values[provider.ZIP_ATTR_ID] == "10007"

    def test_one_impression_regardless_of_candidates(self, platform, web,
                                                     provider):
        """"the provider ... would only have to pay for one impression
        per user" (section 3.1, Cost, non-binary attributes)."""
        candidates = [f"{z:05d}" for z in range(10001, 10051)]
        user = _optin(platform, provider, zip_code="10025")
        provider.launch_location_reveal(candidates)
        provider.run_delivery()
        assert len(platform.feed(user.user_id)) == 1

    def test_zip_outside_candidates_reveals_nothing(self, platform, web,
                                                    provider):
        user = _optin(platform, provider, zip_code="99999")
        provider.launch_location_reveal(["10001", "10002"])
        provider.run_delivery()
        profile = TreadClient(user.user_id, platform,
                              provider.publish_decode_pack()).sync()
        assert provider.ZIP_ATTR_ID not in profile.values

    def test_empty_candidates_rejected(self, provider):
        with pytest.raises(ProviderError):
            provider.launch_location_reveal([])
