"""Unit tests for campaign planning."""

import pytest

from repro.core import planner
from repro.core.treads import Encoding, Placement, RevealKind
from repro.errors import CatalogError
from repro.platform.attributes import make_binary, make_multi
from repro.platform.targeting import parse

BIN_A = make_binary("b-a", "Attr A", ("Cat",))
BIN_B = make_binary("b-b", "Attr B", ("Cat",))
MULTI = make_multi("m1", "Multi", ("Cat",), values=("x", "y", "z"))
AUDIENCE = "page:page-0"


class TestControlTread:
    def test_targets_audience_only(self):
        tread = planner.control_tread(AUDIENCE)
        assert tread.targeting_text == AUDIENCE
        assert tread.payload.kind is RevealKind.CONTROL


class TestBinaryAttributeTread:
    def test_inclusion_targeting(self):
        tread = planner.binary_attribute_tread(BIN_A, AUDIENCE)
        assert tread.targeting_text == f"attr:b-a & {AUDIENCE}"
        assert tread.payload.kind is RevealKind.ATTRIBUTE_SET
        assert tread.payload.display == "Attr A"
        parse(tread.targeting_text)  # must be valid syntax

    def test_exclusion_targeting(self):
        tread = planner.binary_attribute_tread(BIN_A, AUDIENCE,
                                               exclude=True)
        assert tread.targeting_text == f"!attr:b-a & {AUDIENCE}"
        assert tread.payload.kind is RevealKind.ATTRIBUTE_EXCLUDED
        parse(tread.targeting_text)

    def test_multi_attribute_rejected(self):
        with pytest.raises(CatalogError):
            planner.binary_attribute_tread(MULTI, AUDIENCE)


class TestBinarySweep:
    def test_one_tread_per_attribute_plus_control(self):
        treads = planner.binary_sweep([BIN_A, BIN_B], AUDIENCE)
        assert len(treads) == 3
        kinds = [t.payload.kind for t in treads]
        assert kinds[0] is RevealKind.CONTROL

    def test_exclusions_double_the_sweep(self):
        treads = planner.binary_sweep([BIN_A, BIN_B], AUDIENCE,
                                      include_exclusions=True)
        assert len(treads) == 5

    def test_no_control(self):
        treads = planner.binary_sweep([BIN_A], AUDIENCE,
                                      include_control=False)
        assert len(treads) == 1

    def test_encoding_and_placement_propagated(self):
        treads = planner.binary_sweep(
            [BIN_A], AUDIENCE,
            encoding=Encoding.STEGANOGRAPHIC,
            placement=Placement.IN_AD_IMAGE,
        )
        assert all(t.encoding is Encoding.STEGANOGRAPHIC for t in treads)
        assert all(t.placement is Placement.IN_AD_IMAGE for t in treads)


class TestValueEnumeration:
    def test_one_tread_per_value(self):
        treads = planner.value_enumeration(MULTI, AUDIENCE)
        assert len(treads) == 3
        assert [t.payload.value for t in treads] == ["x", "y", "z"]
        for tread in treads:
            parse(tread.targeting_text)

    def test_binary_rejected(self):
        with pytest.raises(CatalogError):
            planner.value_enumeration(BIN_A, AUDIENCE)


class TestValueBitsplit:
    def test_log2_tread_count(self):
        treads = planner.value_bitsplit(MULTI, AUDIENCE)
        assert len(treads) == 2  # ceil(log2 3)
        for tread in treads:
            assert tread.payload.kind is RevealKind.VALUE_BIT
            parse(tread.targeting_text)

    def test_audience_conjoined(self):
        for tread in planner.value_bitsplit(MULTI, AUDIENCE):
            assert AUDIENCE in tread.targeting_text


class TestPIIAndCustom:
    def test_pii_reveal_tread(self):
        tread = planner.pii_reveal_tread("phone", "aud-7", "batch-7")
        assert tread.targeting_text == "audience:aud-7"
        assert tread.payload.pii_kind == "phone"
        assert tread.payload.kind is RevealKind.PII_PRESENT

    def test_custom_attribute_tread(self):
        tread = planner.custom_attribute_tread(
            "salsa pro", "aud-9", "attr:pf-interest-000"
        )
        assert tread.targeting_text == \
            "attr:pf-interest-000 & audience:aud-9"
        assert tread.payload.custom_label == "salsa pro"
        parse(tread.targeting_text)


class TestPlanSummary:
    def test_counts_by_kind(self):
        treads = planner.binary_sweep([BIN_A, BIN_B], AUDIENCE,
                                      include_exclusions=True)
        summary = planner.plan_summary(treads)
        assert summary == {
            "control": 1, "attribute_set": 2, "attribute_excluded": 2,
        }
