"""Unit tests for the opt-in flows."""

import pytest

from repro.core.optin import CUSTOM_PATH_PREFIX, OPTIN_PATH, OptInManager
from repro.errors import OptInError, PIIError
from repro.platform.pii import PIIRecord, record_from_raw


@pytest.fixture
def manager(platform, web, funded_account):
    page = platform.create_page(funded_account.account_id, "Updates")
    site = web.create_site("prov.org", owner="prov")
    return OptInManager(
        platform=platform,
        account_id=funded_account.account_id,
        website=site,
        page_id=page.page_id,
    )


class TestPageLike:
    def test_like_recorded_on_platform(self, manager, platform):
        user = platform.register_user()
        manager.via_page_like(user.user_id)
        assert manager.page_id in platform.users.get(user.user_id).liked_pages

    def test_provider_sees_only_counter(self, manager, platform):
        for _ in range(3):
            manager.via_page_like(platform.register_user().user_id)
        assert manager.page_like_count == 3


class TestPixelOptIn:
    def test_pixel_fires_for_platform(self, manager, platform):
        user = platform.register_user()
        browser = platform.browser_for(user.user_id)
        manager.via_pixel(browser)
        visitors = platform.pixels.visitors(manager.optin_pixel.pixel_id)
        assert visitors == {user.user_id}

    def test_provider_log_anonymous(self, manager, platform):
        """The provider's own web log must never contain platform ids."""
        user = platform.register_user()
        manager.via_pixel(platform.browser_for(user.user_id))
        entry = manager.website.access_log[0]
        assert entry.cookie_id != user.user_id
        assert user.user_id not in str(entry)

    def test_optin_page_exists(self, manager):
        page = manager.website.get_page(OPTIN_PATH)
        assert manager.optin_pixel.pixel_id in page.pixel_ids


class TestSharedOptInPage:
    def test_second_platform_pixel_appended(self, manager, platform,
                                            funded_account):
        """Multi-platform opt-in: pixels accumulate on the shared page."""
        second = platform.issue_pixel(funded_account.account_id, "second")
        manager._install_pixel(OPTIN_PATH, second.pixel_id, content="x")
        page = manager.website.get_page(OPTIN_PATH)
        assert manager.optin_pixel.pixel_id in page.pixel_ids
        assert second.pixel_id in page.pixel_ids

    def test_reinstall_idempotent(self, manager):
        manager._install_pixel(OPTIN_PATH, manager.optin_pixel.pixel_id,
                               content="x")
        page = manager.website.get_page(OPTIN_PATH)
        assert page.pixel_ids.count(manager.optin_pixel.pixel_id) == 1


class TestHashedPII:
    def test_accumulates_by_kind(self, manager):
        manager.submit_hashed_pii([record_from_raw("email", "a@b.c")])
        manager.submit_hashed_pii([record_from_raw("phone", "6175550100"),
                                   record_from_raw("email", "d@e.f")])
        assert manager.pii_kinds() == ["email", "phone"]
        assert len(manager.pii_batch("email")) == 2

    def test_empty_submission_rejected(self, manager):
        with pytest.raises(OptInError):
            manager.submit_hashed_pii([])

    def test_raw_pii_rejected_at_record_level(self, manager):
        with pytest.raises(PIIError):
            manager.submit_hashed_pii([
                PIIRecord(kind="email", digest="raw@example.com")
            ])

    def test_batch_copy_returned(self, manager):
        manager.submit_hashed_pii([record_from_raw("email", "a@b.c")])
        batch = manager.pii_batch("email")
        batch.clear()
        assert len(manager.pii_batch("email")) == 1


class TestCustomOptIn:
    def test_distinct_page_and_pixel_per_attribute(self, manager):
        first = manager.custom_optin_page("salsa pro")
        second = manager.custom_optin_page("expat chef")
        assert first.path != second.path
        assert first.pixel.pixel_id != second.pixel.pixel_id
        assert first.path.startswith(CUSTOM_PATH_PREFIX)

    def test_get_or_create_idempotent(self, manager):
        first = manager.custom_optin_page("salsa pro")
        again = manager.custom_optin_page("salsa pro")
        assert first.pixel.pixel_id == again.pixel.pixel_id
        assert len(manager.custom_optins()) == 1

    def test_via_custom_pixel_fires(self, manager, platform):
        user = platform.register_user()
        browser = platform.browser_for(user.user_id)
        manager.via_custom_pixel(browser, "salsa pro")
        optin = manager.custom_optin_page("salsa pro")
        assert platform.pixels.visitors(optin.pixel.pixel_id) == \
            {user.user_id}

    def test_custom_visit_does_not_fire_main_pixel(self, manager, platform):
        user = platform.register_user()
        manager.via_custom_pixel(platform.browser_for(user.user_id),
                                 "salsa pro")
        assert platform.pixels.visitors(manager.optin_pixel.pixel_id) == set()
