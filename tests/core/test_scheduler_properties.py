"""Property tests for the paced campaign runner's invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.provider import TransparencyProvider
from repro.core.scheduler import PacedCampaignRunner
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.workloads.browsing import BrowsingModel
from repro.workloads.competition import fixed_competition


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    daily_budget=st.one_of(st.none(),
                           st.floats(min_value=0.01, max_value=0.2)),
    mean_slots=st.floats(min_value=2.0, max_value=30.0),
    users=st.integers(1, 6),
)
def test_scheduler_invariants(seed, daily_budget, mean_slots, users):
    """For any browsing seed, pacing cap, activity level and population:

    1. cumulative impressions are monotone non-decreasing;
    2. each day's spend respects the daily cap (when set);
    3. total spend never exceeds the initial budget;
    4. impressions never exceed the campaign's wanted total;
    5. if the run saturated, coverage is complete.
    """
    platform = AdPlatform(
        config=PlatformConfig(name=f"sp{seed}"),
        catalog=build_us_catalog(40, 25),
        competing_draw=fixed_competition(2.0),
    )
    web = WebDirectory()
    initial_budget = 5.0
    provider = TransparencyProvider(platform, web, budget=initial_budget,
                                    bid_cap_cpm=10.0)
    attrs = platform.catalog.partner_attributes()[:4]
    for _ in range(users):
        user = platform.register_user()
        for attr in attrs:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
    provider.launch_attribute_sweep(attrs)
    wanted = users * (len(attrs) + 1)

    runner = PacedCampaignRunner(
        provider,
        daily_budget=daily_budget,
        browsing_model=BrowsingModel(mean_slots=mean_slots),
        patience=2,
        seed=seed,
    )
    result = runner.run(max_days=25)

    cumulative = [record.cumulative_impressions for record in result.days]
    assert cumulative == sorted(cumulative)
    if daily_budget is not None:
        assert all(record.spend <= daily_budget + 1e-9
                   for record in result.days)
    assert result.total_spend <= initial_budget + 1e-9
    assert result.total_impressions <= wanted
    if result.saturated:
        assert result.total_impressions == wanted
