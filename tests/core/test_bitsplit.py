"""Unit and property tests for the log2(m) bit-splitting scheme."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bitsplit
from repro.core.treads import RevealKind
from repro.errors import CatalogError, EncodingError
from repro.platform.attributes import make_binary, make_multi


def _attr(m, attr_id="m1"):
    return make_multi(attr_id, "Multi", ("Cat",),
                      values=tuple(f"v{i}" for i in range(m)))


class TestBitsNeeded:
    @pytest.mark.parametrize("m,expected", [
        (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4),
        (97, 7), (1000, 10), (1024, 10), (4096, 12),
    ])
    def test_matches_ceil_log2(self, m, expected):
        assert bitsplit.bits_needed(m) == expected
        if m > 1:
            assert bitsplit.bits_needed(m) == math.ceil(math.log2(m))

    def test_positive_required(self):
        with pytest.raises(ValueError):
            bitsplit.bits_needed(0)

    def test_enumeration_needs_m(self):
        assert bitsplit.treads_needed_enumeration(97) == 97
        with pytest.raises(ValueError):
            bitsplit.treads_needed_enumeration(0)


class TestValuesWithBit:
    def test_bit_zero_selects_odd_indices(self):
        values = ("a", "b", "c", "d")
        assert bitsplit.values_with_bit(values, 0) == ["b", "d"]

    def test_bit_one_selects_upper_pairs(self):
        values = ("a", "b", "c", "d")
        assert bitsplit.values_with_bit(values, 1) == ["c", "d"]

    def test_high_bit_empty(self):
        assert bitsplit.values_with_bit(("a", "b"), 5) == []


class TestPlanBitTreads:
    def test_plan_count_is_bits_needed(self):
        attr = _attr(5)
        plans = bitsplit.plan_bit_treads(attr)
        assert len(plans) == 3

    def test_payloads_are_value_bits(self):
        for plan in bitsplit.plan_bit_treads(_attr(4)):
            assert plan.payload.kind is RevealKind.VALUE_BIT
            assert plan.payload.bit_value == 1

    def test_targeting_term_is_or_of_values(self):
        plans = bitsplit.plan_bit_treads(_attr(4))
        assert plans[0].targeting_term() == "(value:m1=v1 | value:m1=v3)"
        assert plans[1].targeting_term() == "(value:m1=v2 | value:m1=v3)"

    def test_single_value_term_unparenthesised(self):
        plans = bitsplit.plan_bit_treads(_attr(2))
        assert plans[0].targeting_term() == "value:m1=v1"

    def test_binary_attribute_rejected(self):
        with pytest.raises(CatalogError):
            bitsplit.plan_bit_treads(make_binary("b", "B", ("C",)))


class TestReconstruct:
    def test_all_bits_received(self):
        values = tuple(f"v{i}" for i in range(8))
        assert bitsplit.reconstruct_value(values, {0: 1, 1: 1, 2: 1}) == "v7"

    def test_missing_bits_are_zero(self):
        values = tuple(f"v{i}" for i in range(8))
        assert bitsplit.reconstruct_value(values, {1: 1}) == "v2"
        assert bitsplit.reconstruct_value(values, {}) == "v0"

    def test_out_of_range_index_rejected(self):
        values = ("v0", "v1", "v2")  # 2 bits, but index 3 is invalid
        with pytest.raises(EncodingError):
            bitsplit.reconstruct_value(values, {0: 1, 1: 1})

    def test_bit_outside_width_rejected(self):
        with pytest.raises(EncodingError):
            bitsplit.reconstruct_value(("a", "b"), {5: 1})

    def test_explicit_width(self):
        values = tuple(f"v{i}" for i in range(4))
        assert bitsplit.reconstruct_value(values, {1: 1},
                                          total_bits=2) == "v2"


class TestExpectedImpressions:
    def test_mean_popcount(self):
        # m=4: indices 0,1,2,3 -> popcounts 0,1,1,2 -> mean 1.0
        assert bitsplit.expected_impressions_per_user(_attr(4)) == 1.0

    def test_bounded_by_bits_needed(self):
        for m in (2, 5, 9, 97):
            attr = _attr(m)
            assert bitsplit.expected_impressions_per_user(attr) <= \
                bitsplit.bits_needed(m)


@given(st.integers(2, 300), st.data())
def test_user_reconstructs_own_value_property(m, data):
    """End-to-end scheme property: for any attribute size and any assigned
    value, the bits a user *would receive* reconstruct exactly that value.

    This is the paper's Scale claim made executable: the user receives the
    bit-Treads whose OR-lists contain their value; decoding those bits
    yields the value back.
    """
    attr = _attr(m)
    assigned_index = data.draw(st.integers(0, m - 1))
    assigned_value = attr.values[assigned_index]
    plans = bitsplit.plan_bit_treads(attr)
    received = {
        plan.bit_index: 1
        for plan in plans
        if assigned_value in plan.or_values
    }
    assert bitsplit.reconstruct_value(attr.values, received) == assigned_value
    # paper claim: total Treads run = ceil(log2 m), never m
    assert len(plans) == bitsplit.bits_needed(m)
    # user pays at most log2(m) impressions
    assert len(received) <= bitsplit.bits_needed(m)
