"""Tests for the transparency provider orchestration."""

import pytest

from repro.core.provider import TransparencyProvider
from repro.core.treads import Encoding, Placement, RevealKind
from repro.errors import ProviderError


@pytest.fixture
def provider(platform, web):
    return TransparencyProvider(platform, web, budget=200.0)


def _optin_users(platform, provider, count, with_attrs=()):
    users = []
    for _ in range(count):
        user = platform.register_user()
        for attr in with_attrs:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        users.append(user)
    return users


class TestSetup:
    def test_provider_owns_account_page_site(self, provider, platform, web):
        assert provider.account.budget == 200.0
        assert provider.page.owner_account_id == provider.account.account_id
        assert provider.website.domain in web

    def test_audience_terms(self, provider):
        assert provider.page_audience_term() == \
            f"page:{provider.page.page_id}"
        term = provider.pixel_audience_term()
        assert term.startswith("audience:")
        # idempotent: same audience on second call
        assert provider.pixel_audience_term() == term


class TestPartnerSweep:
    def test_sweep_covers_all_partner_attrs_plus_control(self, provider,
                                                         platform):
        report = provider.launch_partner_sweep()
        partner_count = len(platform.catalog.partner_attributes())
        assert len(report.treads) == partner_count + 1
        assert report.launch_rate == 1.0

    def test_explicit_sweep_is_rejected_by_review(self, platform, web):
        """Explicit Treads assert personal attributes -> review rejects
        the attribute Treads (the control passes: it asserts nothing)."""
        provider = TransparencyProvider(
            platform, web, budget=200.0, encoding=Encoding.EXPLICIT,
        )
        report = provider.launch_partner_sweep()
        attribute_treads = [
            t for t in report.treads
            if t.payload.kind is RevealKind.ATTRIBUTE_SET
        ]
        assert all(t.rejected for t in attribute_treads)
        assert all(t.review_note for t in attribute_treads)

    def test_rejection_recorded_not_raised(self, platform, web):
        provider = TransparencyProvider(
            platform, web, budget=200.0, encoding=Encoding.EXPLICIT,
        )
        report = provider.launch_partner_sweep()  # must not raise
        assert report.launch_rate < 1.0

    def test_delivery_and_spend(self, provider, platform):
        attrs = platform.catalog.partner_attributes()[:4]
        _optin_users(platform, provider, 2, with_attrs=attrs)
        provider.launch_partner_sweep()
        provider.run_delivery()
        # 2 users x (4 attrs + control) = 10 impressions
        assert provider.total_impressions() == 10
        # zero ambient competition -> zero second price, echoing the
        # paper's own validation: "The above ads had zero cost since too
        # few users were reached."
        assert provider.total_spend() == 0.0

    def test_aggregate_attribute_counts(self, provider, platform):
        attrs = platform.catalog.partner_attributes()
        _optin_users(platform, provider, 3, with_attrs=attrs[:2])
        _optin_users(platform, provider, 2)
        provider.launch_partner_sweep()
        provider.run_delivery()
        counts = provider.aggregate_attribute_counts()
        assert counts[attrs[0].attr_id] == 3
        assert counts[attrs[1].attr_id] == 3
        assert counts[attrs[5].attr_id] == 0


class TestPrevalenceEstimates:
    def test_estimates_from_provider_visible_numbers(self, provider,
                                                     platform):
        attrs = platform.catalog.partner_attributes()
        _optin_users(platform, provider, 6, with_attrs=attrs[:1])
        _optin_users(platform, provider, 4)
        provider.launch_partner_sweep()
        provider.run_delivery()
        estimates = provider.prevalence_estimates()
        estimate = estimates[attrs[0].attr_id]
        assert estimate.count == 6
        assert estimate.sample_size == 10  # control reach
        assert estimate.point == 0.6
        assert estimate.low < 0.6 < estimate.high

    def test_empty_before_delivery(self, provider, platform):
        provider.launch_partner_sweep()
        assert provider.prevalence_estimates() == {}


class TestValueReveal:
    def test_bitsplit_scheme(self, provider, platform):
        multi = platform.catalog.multi_attributes()[0]
        report = provider.launch_value_reveal(multi.attr_id,
                                              scheme="bitsplit")
        import math
        assert len(report.treads) == \
            math.ceil(math.log2(len(multi.values)))

    def test_enumeration_scheme(self, provider, platform):
        multi = platform.catalog.multi_attributes()[0]
        report = provider.launch_value_reveal(multi.attr_id,
                                              scheme="enumeration")
        assert len(report.treads) == len(multi.values)

    def test_unknown_scheme_rejected(self, provider, platform):
        multi = platform.catalog.multi_attributes()[0]
        with pytest.raises(ProviderError):
            provider.launch_value_reveal(multi.attr_id, scheme="magic")

    def test_value_table_published(self, provider, platform):
        multi = platform.catalog.multi_attributes()[0]
        provider.launch_value_reveal(multi.attr_id)
        pack = provider.publish_decode_pack()
        assert pack.value_tables[multi.attr_id] == tuple(multi.values)


class TestKeywordReveal:
    def test_keyword_reveal_end_to_end(self, platform, web):
        from repro.core.client import TreadClient
        provider = TransparencyProvider(platform, web, budget=100.0)
        salsa = platform.catalog.search("salsa")[0]
        matching, others = [], []
        # 22 matching users: the keyword audience is itself a custom
        # audience and must clear the platform's 20-member minimum.
        for index in range(40):
            user = platform.register_user()
            if index < 22:
                user.set_attribute(salsa)
                matching.append(user)
            else:
                others.append(user)
            provider.optin.via_page_like(user.user_id)
        report = provider.launch_keyword_reveal("keyword: salsa",
                                                ["salsa"])
        assert report.launch_rate == 1.0
        provider.run_delivery()
        pack = provider.publish_decode_pack()
        for user in matching:
            profile = TreadClient(user.user_id, platform, pack).sync()
            assert "keyword: salsa" in profile.custom_matches
        for user in others:
            profile = TreadClient(user.user_id, platform, pack).sync()
            assert profile.custom_matches == set()


class TestLandingPlacement:
    def test_landing_pages_published_before_launch(self, platform, web):
        provider = TransparencyProvider(
            platform, web, budget=200.0,
            placement=Placement.LANDING_PAGE,
        )
        attrs = platform.catalog.partner_attributes()[:3]
        report = provider.launch_attribute_sweep(attrs)
        for tread in report.treads:
            assert tread.landing_path is not None
            page = provider.website.get_page(tread.landing_path)
            assert page.content

    def test_landing_sweep_passes_review(self, platform, web):
        """Landing-page Treads always pass ToS review (section 4)."""
        provider = TransparencyProvider(
            platform, web, budget=200.0,
            encoding=Encoding.EXPLICIT, placement=Placement.LANDING_PAGE,
        )
        report = provider.launch_attribute_sweep(
            platform.catalog.partner_attributes()[:5]
        )
        assert report.launch_rate == 1.0


class TestDecodePack:
    def test_pack_contents(self, provider, platform):
        provider.launch_partner_sweep()
        pack = provider.publish_decode_pack()
        assert pack.account_ids == {
            platform.name: provider.account.account_id
        }
        assert provider.website.domain in pack.landing_domains
        # one codebook entry per attribute tread + control
        assert len(pack.codebook_snapshot) == len(provider.treads)

    def test_pack_has_no_user_data(self, provider, platform):
        _optin_users(platform, provider, 3)
        provider.launch_partner_sweep()
        pack = provider.publish_decode_pack()
        blob = str(pack)
        for profile in platform.users:
            assert profile.user_id not in blob


class TestSharedCodebook:
    def test_two_providers_can_share(self, platform, web):
        from repro.core.codebook import Codebook
        book = Codebook(salt="coop")
        first = TransparencyProvider(platform, web, name="coop-a",
                                     budget=10.0, codebook=book)
        second = TransparencyProvider(platform, web, name="coop-b",
                                      budget=10.0, codebook=book)
        first.launch_attribute_sweep(
            platform.catalog.partner_attributes()[:2],
            include_control=False)
        second.launch_attribute_sweep(
            platform.catalog.partner_attributes()[2:4],
            include_control=False)
        assert len(book) == 4
