"""Tests for advertiser-driven transparency (section 4)."""

import pytest

from repro.core.advertiser import (
    AdvertiserExplanation,
    click_learning_for_ad,
    verify_explanation,
)
from repro.platform.ads import AdCreative


@pytest.fixture
def salsa_ad(platform, funded_account, campaign):
    """The paper's running example: intent 'experienced professional Salsa
    dancers', actual targeting 'aged 30+ interested in Salsa'."""
    catalog = platform.catalog
    salsa = [a for a in catalog.platform_attributes() if a.is_binary][0]
    ad = platform.submit_ad(
        funded_account.account_id, campaign.campaign_id,
        AdCreative("Dance shoes", "Handmade for professionals."),
        f"age:30-65 & attr:{salsa.attr_id}", bid_cap_cpm=5.0,
    )
    return ad, salsa


class TestVerifyExplanation:
    def test_honest_declaration_consistent_and_complete(self, platform,
                                                        salsa_ad):
        ad, salsa = salsa_ad
        user = platform.register_user(age=35)
        user.set_attribute(salsa)
        platform_expl = platform.explain_ad(user.user_id, ad.ad_id)
        advertiser_expl = AdvertiserExplanation(
            ad_id=ad.ad_id,
            intent="reach experienced professional Salsa dancers",
            declared_attribute_ids=(salsa.attr_id,),
        )
        result = verify_explanation(ad, advertiser_expl, platform_expl)
        assert result.consistent
        assert result.completeness == 1.0
        assert result.undeclared == ()

    def test_hidden_attribute_caught_by_platform_explanation(self, platform,
                                                             salsa_ad,
                                                             funded_account,
                                                             campaign):
        """A dishonest advertiser hides its targeting; the platform's
        independent explanation can refute the declaration (section 4,
        'Trusting advertiser-provided explanations')."""
        ad, salsa = salsa_ad
        user = platform.register_user(age=35)
        user.set_attribute(salsa)
        platform_expl = platform.explain_ad(user.user_id, ad.ad_id)
        assert platform_expl.revealed_attribute == salsa.attr_id
        dishonest = AdvertiserExplanation(
            ad_id=ad.ad_id,
            intent="reach everyone",
            declared_attribute_ids=(),
        )
        result = verify_explanation(ad, dishonest, platform_expl)
        assert not result.consistent
        assert salsa.attr_id in result.undeclared
        assert result.completeness == 0.0

    def test_undeclared_customer_list_caught(self, platform, funded_account,
                                             campaign):
        page = platform.create_page(funded_account.account_id, "P")
        user = platform.register_user()
        platform.like_page(user.user_id, page.page_id)
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "b"), f"page:{page.page_id}", bid_cap_cpm=5.0,
        )
        platform_expl = platform.explain_ad(user.user_id, ad.ad_id)
        sneaky = AdvertiserExplanation(
            ad_id=ad.ad_id, intent="organic reach",
            declared_attribute_ids=(), declares_customer_list=False,
        )
        result = verify_explanation(ad, sneaky, platform_expl)
        assert not result.consistent

    def test_overdeclaration_reported(self, platform, salsa_ad):
        ad, salsa = salsa_ad
        user = platform.register_user(age=35)
        user.set_attribute(salsa)
        platform_expl = platform.explain_ad(user.user_id, ad.ad_id)
        padded = AdvertiserExplanation(
            ad_id=ad.ad_id, intent="dancers",
            declared_attribute_ids=(salsa.attr_id, "made-up-attr"),
        )
        result = verify_explanation(ad, padded, platform_expl)
        assert result.consistent
        assert result.overdeclared == ("made-up-attr",)

    def test_pii_audience_intent_beyond_platform_explanation(self, platform,
                                                             funded_account,
                                                             campaign):
        """The paper's strongest case for advertiser explanations: a
        PII-audience built from an external dancer list — the platform's
        explanation 'completely fail[s] to capture the advertiser's
        intent', the intent declaration carries it."""
        page = platform.create_page(funded_account.account_id, "P")
        user = platform.register_user()
        platform.like_page(user.user_id, page.page_id)
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "b"), f"page:{page.page_id}", bid_cap_cpm=5.0,
        )
        platform_expl = platform.explain_ad(user.user_id, ad.ad_id)
        assert platform_expl.revealed_attribute is None
        honest = AdvertiserExplanation(
            ad_id=ad.ad_id,
            intent="reach dancers from a purchased list",
            declared_attribute_ids=(),
            declares_customer_list=True,
        )
        result = verify_explanation(ad, honest, platform_expl)
        assert result.consistent
        assert "purchased list" in honest.intent


class TestClickLearning:
    def test_click_associates_targeting_with_cookie(self, platform,
                                                    salsa_ad):
        ad, salsa = salsa_ad
        learning = click_learning_for_ad(ad)
        learning.record_click("cookie-123")
        disclosure = learning.disclosure_for("cookie-123")
        assert salsa.attr_id in disclosure.attributes_learned

    def test_cookieless_click_learns_nothing(self, platform, salsa_ad):
        ad, _ = salsa_ad
        learning = click_learning_for_ad(ad)
        learning.record_click(None)
        assert learning.learned == {}

    def test_unknown_cookie_empty_disclosure(self, platform, salsa_ad):
        ad, _ = salsa_ad
        learning = click_learning_for_ad(ad)
        assert learning.disclosure_for("ghost").attributes_learned == ()

    def test_repeat_clicks_idempotent(self, platform, salsa_ad):
        ad, salsa = salsa_ad
        learning = click_learning_for_ad(ad)
        learning.record_click("c1")
        learning.record_click("c1")
        assert learning.learned["c1"] == {salsa.attr_id}
