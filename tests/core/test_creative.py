"""Unit tests for creative rendering (encoding x placement modes)."""

import pytest

from repro.core import stego
from repro.core.codebook import Codebook
from repro.core.creative import (
    SUPPORTED_MODES,
    landing_path_for_token,
    render,
)
from repro.core.treads import Encoding, Placement, RevealKind, RevealPayload
from repro.errors import EncodingError


@pytest.fixture
def payload():
    return RevealPayload(kind=RevealKind.ATTRIBUTE_SET,
                         attr_id="pc-networth-006",
                         display="Net worth: Over $2M")


@pytest.fixture
def book():
    return Codebook(salt="test")


class TestExplicitInAd:
    def test_body_is_reveal_sentence(self, payload, book):
        rendered = render(payload, Encoding.EXPLICIT, Placement.IN_AD_TEXT,
                          book)
        assert "Net worth: Over $2M" in rendered.creative.body
        assert rendered.token is None
        assert rendered.creative.landing_url is None


class TestCodebookInAd:
    def test_body_contains_token_not_attribute(self, payload, book):
        rendered = render(payload, Encoding.CODEBOOK, Placement.IN_AD_TEXT,
                          book)
        assert rendered.token in rendered.creative.body
        assert "Net worth" not in rendered.creative.body
        assert book.decode(rendered.token).attr_id == "pc-networth-006"


class TestStegoInImage:
    def test_payload_recoverable_from_image(self, payload, book):
        rendered = render(payload, Encoding.STEGANOGRAPHIC,
                          Placement.IN_AD_IMAGE, book)
        image = rendered.creative.image
        assert image is not None
        assert stego.extract(image) == payload.canonical()

    def test_body_is_neutral(self, payload, book):
        rendered = render(payload, Encoding.STEGANOGRAPHIC,
                          Placement.IN_AD_IMAGE, book)
        assert "Net worth" not in rendered.creative.visible_text()


class TestLandingPage:
    def test_explicit_landing_content(self, payload, book):
        rendered = render(payload, Encoding.EXPLICIT,
                          Placement.LANDING_PAGE, book,
                          landing_domain="prov.org")
        assert rendered.landing_path is not None
        assert rendered.creative.landing_url.domain == "prov.org"
        assert "Net worth: Over $2M" in rendered.landing_content
        # ad itself carries nothing sensitive
        assert "Net worth" not in rendered.creative.visible_text()

    def test_codebook_landing_content(self, payload, book):
        rendered = render(payload, Encoding.CODEBOOK,
                          Placement.LANDING_PAGE, book,
                          landing_domain="prov.org")
        assert rendered.token in rendered.landing_content

    def test_landing_path_derived_from_token(self, payload, book):
        rendered = render(payload, Encoding.CODEBOOK,
                          Placement.LANDING_PAGE, book,
                          landing_domain="prov.org")
        assert rendered.landing_path == \
            landing_path_for_token(rendered.token)
        assert rendered.landing_path.startswith("/t/")
        assert "," not in rendered.landing_path

    def test_missing_domain_rejected(self, payload, book):
        with pytest.raises(EncodingError):
            render(payload, Encoding.CODEBOOK, Placement.LANDING_PAGE, book)


class TestModeMatrix:
    def test_unsupported_modes_rejected(self, payload, book):
        all_modes = [(e, p) for e in Encoding for p in Placement]
        unsupported = [m for m in all_modes if m not in SUPPORTED_MODES]
        assert unsupported  # matrix is not full by design
        for encoding, placement in unsupported:
            with pytest.raises(EncodingError):
                render(payload, encoding, placement, book,
                       landing_domain="prov.org")

    def test_all_supported_modes_render(self, payload, book):
        for encoding, placement in SUPPORTED_MODES:
            rendered = render(payload, encoding, placement, book,
                              landing_domain="prov.org")
            assert rendered.creative.headline

    def test_same_payload_same_token_across_modes(self, payload, book):
        in_ad = render(payload, Encoding.CODEBOOK, Placement.IN_AD_TEXT,
                       book)
        landing = render(payload, Encoding.CODEBOOK,
                         Placement.LANDING_PAGE, book,
                         landing_domain="prov.org")
        assert in_ad.token == landing.token
