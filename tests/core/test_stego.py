"""Unit and property tests for LSB steganography."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import stego
from repro.errors import EncodingError
from repro.platform.ads import AdImage


class TestEmbedExtract:
    def test_round_trip(self):
        image = AdImage.blank(64, 64)
        carrier = stego.embed(image, "attribute_set|pc-networth-006")
        assert stego.extract(carrier) == "attribute_set|pc-networth-006"

    def test_original_untouched(self):
        image = AdImage.blank(64, 64, shade=200)
        stego.embed(image, "payload")
        assert all(p == 200 for p in image.pixels)

    def test_visual_distortion_at_most_one_level(self):
        image = AdImage.blank(64, 64, shade=200)
        carrier = stego.embed(image, "payload")
        assert all(abs(a - b) <= 1
                   for a, b in zip(image.pixels, carrier.pixels))

    def test_clean_image_yields_none(self):
        assert stego.try_extract(AdImage.blank(64, 64)) is None

    def test_extract_on_clean_image_raises(self):
        with pytest.raises(EncodingError):
            stego.extract(AdImage.blank(64, 64))

    def test_too_small_image_rejected(self):
        with pytest.raises(EncodingError):
            stego.embed(AdImage.blank(4, 4), "a long payload that wont fit")

    def test_tiny_image_extract_none(self):
        assert stego.try_extract(AdImage.blank(2, 2)) is None

    def test_capacity(self):
        image = AdImage.blank(64, 64)  # 4096 pixels
        capacity = stego.capacity_bytes(image)
        assert capacity == (4096 - 32) // 8 - 2
        stego.embed(image, "x" * capacity)  # exactly fits
        with pytest.raises(EncodingError):
            stego.embed(image, "x" * (capacity + 1))

    def test_capacity_of_tiny_image_zero(self):
        assert stego.capacity_bytes(AdImage.blank(4, 4)) == 0

    def test_empty_payload(self):
        carrier = stego.embed(AdImage.blank(16, 16), "")
        assert stego.extract(carrier) == ""

    def test_corrupted_magic_yields_none(self):
        carrier = stego.embed(AdImage.blank(64, 64), "payload")
        # flip the LSBs holding the magic prefix
        for index in range(32, 48):
            carrier.pixels[index] ^= 1
        assert stego.try_extract(carrier) is None


@given(st.text(min_size=0, max_size=200))
def test_round_trip_property(payload):
    """Any unicode payload fitting the carrier survives embed/extract."""
    image = AdImage.blank(96, 96)
    if len(payload.encode("utf-8")) > stego.capacity_bytes(image):
        return
    assert stego.extract(stego.embed(image, payload)) == payload


@given(st.integers(0, 255))
def test_round_trip_independent_of_background(shade):
    image = AdImage.blank(32, 32, shade=shade)
    assert stego.extract(stego.embed(image, "probe")) == "probe"
