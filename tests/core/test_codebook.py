"""Unit and property tests for the obfuscation codebook."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.codebook import Codebook
from repro.core.treads import RevealKind, RevealPayload
from repro.errors import EncodingError


def _payload(attr_id):
    return RevealPayload(kind=RevealKind.ATTRIBUTE_SET, attr_id=attr_id)


class TestRegisterDecode:
    def test_round_trip(self):
        book = Codebook()
        token = book.register(_payload("pc-networth-006"))
        decoded = book.decode(token)
        assert decoded.attr_id == "pc-networth-006"

    def test_token_format_like_figure_1b(self):
        """Figure 1b shows '2,830,120' — seven digits, comma-grouped."""
        token = Codebook().register(_payload("x"))
        digits = token.replace(",", "")
        assert digits.isdigit()
        assert len(digits) == 7
        assert "," in token

    def test_idempotent_registration(self):
        book = Codebook()
        assert book.register(_payload("x")) == book.register(_payload("x"))
        assert len(book) == 1

    def test_distinct_payloads_distinct_tokens(self):
        book = Codebook()
        tokens = {book.register(_payload(f"attr-{i}")) for i in range(600)}
        assert len(tokens) == 600

    def test_decode_without_separators(self):
        book = Codebook()
        token = book.register(_payload("x"))
        assert book.decode(token.replace(",", "")).attr_id == "x"

    def test_unknown_token_raises(self):
        with pytest.raises(EncodingError):
            Codebook().decode("1,234,567")

    def test_non_numeric_token_raises(self):
        with pytest.raises(EncodingError):
            Codebook().decode("hello")

    def test_try_decode_returns_none(self):
        book = Codebook()
        assert book.try_decode("9,999,999") is None
        assert book.try_decode("not a token") is None

    def test_token_for_unregistered_is_none(self):
        assert Codebook().token_for(_payload("x")) is None

    def test_salt_separates_campaigns(self):
        a, b = Codebook(salt="prov-a"), Codebook(salt="prov-b")
        assert a.register(_payload("x")) != b.register(_payload("x"))


class TestSnapshot:
    def test_snapshot_round_trip(self):
        book = Codebook(salt="prov")
        token = book.register(_payload("x"))
        book.register(RevealPayload(kind=RevealKind.CONTROL))
        restored = Codebook.from_snapshot(book.snapshot(), salt="prov")
        assert restored.decode(token).attr_id == "x"
        assert len(restored) == 2

    def test_snapshot_is_sorted_and_serializable(self):
        book = Codebook()
        book.register_all([_payload(f"a-{i}") for i in range(10)])
        snapshot = book.snapshot()
        assert all(isinstance(k, str) and isinstance(v, str)
                   for k, v in snapshot.items())
        tokens = [Codebook.parse_token(t) for t in snapshot]
        assert tokens == sorted(tokens)

    def test_duplicate_token_in_snapshot_rejected(self):
        # "1,000,001" and "1000001" parse to the same token value
        snapshot = {"1,000,001": "attribute_set|a",
                    "1000001": "attribute_set|b"}
        with pytest.raises(EncodingError):
            Codebook.from_snapshot(snapshot)


@given(st.lists(st.text("abcdefgh-0123456789", min_size=1, max_size=20),
                min_size=1, max_size=100, unique=True))
def test_registration_always_decodable_property(attr_ids):
    book = Codebook(salt="prop")
    for attr_id in attr_ids:
        token = book.register(_payload(attr_id))
        assert book.decode(token).attr_id == attr_id
    assert len(book) == len(attr_ids)
