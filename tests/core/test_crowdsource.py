"""Tests for the crowdsourced provider (section 4, evading shutdown)."""

import pytest

from repro.core.client import TreadClient
from repro.core.crowdsource import CrowdsourcedProvider, shard_attributes
from repro.errors import ProviderError
from repro.platform.policy import TreadPatternDetector


class TestShardAttributes:
    def test_round_robin_balance(self, platform):
        attrs = platform.catalog.partner_attributes()  # 25 in small catalog
        shards = shard_attributes(attrs, 4)
        sizes = [len(s) for s in shards]
        assert sum(sizes) == len(attrs)
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard(self, platform):
        attrs = platform.catalog.partner_attributes()
        assert shard_attributes(attrs, 1) == [list(attrs)]

    def test_more_shards_than_attrs(self, platform):
        attrs = platform.catalog.partner_attributes()[:2]
        shards = shard_attributes(attrs, 5)
        assert sum(len(s) for s in shards) == 2

    def test_zero_shards_rejected(self, platform):
        with pytest.raises(ValueError):
            shard_attributes([], 0)


@pytest.fixture
def coop(platform, web):
    return CrowdsourcedProvider(platform, web, members=5,
                                budget_per_member=50.0)


class TestCrowdsourcedProvider:
    def test_member_accounts_distinct(self, coop):
        accounts = {m.account.account_id for m in coop.members}
        assert len(accounts) == 5

    def test_zero_members_rejected(self, platform, web):
        with pytest.raises(ProviderError):
            CrowdsourcedProvider(platform, web, members=0)

    def test_sweep_sharded_across_accounts(self, coop, platform):
        attrs = platform.catalog.partner_attributes()
        report = coop.launch_sweep(attrs)
        assert report.total_launched == len(attrs) + 1  # + control
        footprints = [len(r.treads) for r in report.per_account.values()]
        assert max(footprints) <= len(attrs) // 5 + 2

    def test_only_first_member_runs_control(self, coop, platform):
        from repro.core.treads import RevealKind
        attrs = platform.catalog.partner_attributes()
        coop.launch_sweep(attrs)
        controls = [
            t for m in coop.members for t in m.treads
            if t.payload.kind is RevealKind.CONTROL
        ]
        assert len(controls) == 1

    def test_user_decodes_all_shards_with_one_pack(self, coop, platform):
        attrs = platform.catalog.partner_attributes()
        user = platform.register_user()
        for attr in attrs[:7]:
            user.set_attribute(attr)
        coop.optin_everywhere(user.user_id)
        coop.launch_sweep(attrs)
        coop.run_delivery()
        client = TreadClient(user.user_id, platform,
                             coop.publish_decode_pack())
        profile = client.sync()
        assert profile.set_attributes == {a.attr_id for a in attrs[:7]}
        assert profile.control_received

    def test_sharding_evades_per_account_detector(self, coop, platform,
                                                  web):
        """The paper's evasion argument: one big account gets flagged, the
        sharded co-op stays under the per-account threshold."""
        attrs = platform.catalog.partner_attributes()  # 25
        detector = TreadPatternDetector(per_account_threshold=10)

        single = CrowdsourcedProvider(platform, web, members=1,
                                      name="solo", budget_per_member=50.0)
        single.launch_sweep(attrs)
        assert detector.audit(single.ads_by_account())

        coop.launch_sweep(attrs)  # 5 members x 5 ads each
        assert detector.audit(coop.ads_by_account()) == []

    def test_spend_distributed(self, coop, platform):
        attrs = platform.catalog.partner_attributes()
        user = platform.register_user()
        for attr in attrs:
            user.set_attribute(attr)
        coop.optin_everywhere(user.user_id)
        coop.launch_sweep(attrs)
        coop.run_delivery()
        spends = [m.total_spend() for m in coop.members]
        assert coop.total_spend() == pytest.approx(sum(spends))
        impressions = [m.total_impressions() for m in coop.members]
        assert all(i > 0 for i in impressions)  # every shard delivered
