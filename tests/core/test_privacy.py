"""Tests for the privacy analysis (section 3.1 claims made executable)."""

import pytest

from repro.core.privacy import (
    AggregateKnowledge,
    aggregate_inference_attack,
    anonymity_sets,
    landing_page_linkage,
    reach_quantization_error,
)
from repro.platform.web import Browser, Website


class TestAggregateKnowledge:
    def test_prevalence(self):
        knowledge = AggregateKnowledge(
            optin_count=10, attribute_counts={"a": 4}
        )
        assert knowledge.prevalence("a") == pytest.approx(0.4)
        assert knowledge.prevalence("unknown") == 0.0

    def test_empty_population(self):
        knowledge = AggregateKnowledge(optin_count=0, attribute_counts={})
        assert knowledge.prevalence("a") == 0.0


class TestAggregateInferenceAttack:
    def test_attack_never_beats_baseline(self):
        """The paper's claim: the provider cannot learn WHICH users have
        which attributes — aggregate-only attack == trivial baseline."""
        users = [f"u{i}" for i in range(10)]
        truth = {"a": set(users[:4]), "b": set(users[:9])}
        knowledge = AggregateKnowledge(
            optin_count=10, attribute_counts={"a": 4, "b": 9}
        )
        result = aggregate_inference_attack(knowledge, users, truth)
        assert result.advantage == pytest.approx(0.0)

    def test_accuracy_values(self):
        users = [f"u{i}" for i in range(10)]
        truth = {"a": set(users[:4])}
        knowledge = AggregateKnowledge(optin_count=10,
                                       attribute_counts={"a": 4})
        result = aggregate_inference_attack(knowledge, users, truth)
        # best guess: nobody has it -> 6/10 correct
        assert result.attack_accuracy == pytest.approx(0.6)
        assert result.baseline_accuracy == pytest.approx(0.6)

    def test_majority_attribute_guessed_positively(self):
        users = [f"u{i}" for i in range(10)]
        truth = {"a": set(users[:8])}
        knowledge = AggregateKnowledge(optin_count=10,
                                       attribute_counts={"a": 8})
        result = aggregate_inference_attack(knowledge, users, truth)
        assert result.attack_accuracy == pytest.approx(0.8)

    def test_empty_users_rejected(self):
        with pytest.raises(ValueError):
            aggregate_inference_attack(
                AggregateKnowledge(0, {}), [], {}
            )


class TestAnonymitySets:
    def test_sizes_from_counts(self):
        sets_ = anonymity_sets({"a": 5, "b": 1, "c": 0})
        assert sets_.sizes == {"a": 5, "b": 1}
        assert sets_.smallest() == 1
        assert sets_.singletons() == ["b"]

    def test_empty(self):
        assert anonymity_sets({}).smallest() == 0


class TestLandingPageLinkage:
    def _site_with_visits(self, clear_cookies):
        site = Website(domain="prov.org", owner="prov")
        for path in ("/t/1", "/t/2", "/t/3"):
            site.add_page(path, content="x")
        browser = Browser(user_id="u1")
        for path in ("/t/1", "/t/2", "/t/3"):
            if clear_cookies:
                browser.clear_cookies()
            browser.visit(site, path)
        return site

    def test_sticky_cookie_links_profile(self):
        """Without the mitigation, the provider links all three Tread
        visits to one pseudonymous profile."""
        site = self._site_with_visits(clear_cookies=False)
        report = landing_page_linkage(site, ["/t/1", "/t/2", "/t/3"])
        assert report.largest_profile == 3
        assert report.linkable_multi_visit_cookies == 1

    def test_cleared_cookies_unlink(self):
        site = self._site_with_visits(clear_cookies=True)
        report = landing_page_linkage(site, ["/t/1", "/t/2", "/t/3"])
        assert report.largest_profile == 1
        assert report.linkable_multi_visit_cookies == 0

    def test_disabled_cookies_counted(self):
        site = Website(domain="prov.org", owner="prov")
        site.add_page("/t/1", content="x")
        browser = Browser(user_id="u1")
        browser.disable_cookies()
        browser.visit(site, "/t/1")
        report = landing_page_linkage(site, ["/t/1"])
        assert report.cookieless_visits == 1
        assert report.profiles == {}

    def test_non_tread_paths_ignored(self):
        site = Website(domain="prov.org", owner="prov")
        site.add_page("/optin", content="x")
        Browser(user_id="u1").visit(site, "/optin")
        report = landing_page_linkage(site, ["/t/1"])
        assert report.total_landing_visits == 0


class TestReachQuantizationError:
    def test_zero_when_exact(self):
        assert reach_quantization_error({"a": 5}, {"a": 5}) == 0.0

    def test_mean_absolute_error(self):
        assert reach_quantization_error(
            {"a": 7, "b": 3}, {"a": 5, "b": 5}
        ) == pytest.approx(2.0)

    def test_empty(self):
        assert reach_quantization_error({}, {}) == 0.0
