"""Unit and property tests for reveal payloads and canonical round-trip."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.treads import (
    Encoding,
    Placement,
    RevealKind,
    RevealPayload,
    Tread,
    payload_from_canonical,
)
from repro.errors import EncodingError

_attr_ids = st.sampled_from(["pc-networth-006", "pf-interest-000", "a|b?"])
_safe_attr_ids = st.sampled_from(["pc-networth-006", "pf-interest-000"])

_payloads = st.one_of(
    st.builds(RevealPayload, kind=st.just(RevealKind.ATTRIBUTE_SET),
              attr_id=_safe_attr_ids),
    st.builds(RevealPayload, kind=st.just(RevealKind.ATTRIBUTE_EXCLUDED),
              attr_id=_safe_attr_ids),
    st.builds(RevealPayload, kind=st.just(RevealKind.VALUE_IS),
              attr_id=_safe_attr_ids,
              value=st.sampled_from(["x", "Some college"])),
    st.builds(RevealPayload, kind=st.just(RevealKind.VALUE_BIT),
              attr_id=_safe_attr_ids,
              bit_index=st.integers(0, 11), bit_value=st.integers(0, 1)),
    st.builds(RevealPayload, kind=st.just(RevealKind.PII_PRESENT),
              pii_kind=st.sampled_from(["email", "phone"]),
              pii_digest=st.text("0123456789abcdef", min_size=8,
                                 max_size=64)),
    st.builds(RevealPayload, kind=st.just(RevealKind.CUSTOM_ATTRIBUTE),
              custom_label=st.sampled_from(["salsa pro", "expat"])),
    st.builds(RevealPayload, kind=st.just(RevealKind.INTENT),
              display=st.sampled_from(["reach dancers", "sell shoes"])),
    st.just(RevealPayload(kind=RevealKind.CONTROL)),
)


@given(_payloads)
def test_canonical_round_trip(payload):
    """canonical() and payload_from_canonical() are inverse on the fields
    that define the payload (display is presentation-only)."""
    rebuilt = payload_from_canonical(payload.canonical())
    assert rebuilt.kind is payload.kind
    assert rebuilt.attr_id == payload.attr_id
    assert rebuilt.value == payload.value
    assert rebuilt.bit_index == payload.bit_index
    assert rebuilt.bit_value == payload.bit_value
    assert rebuilt.pii_kind == payload.pii_kind
    assert rebuilt.pii_digest == payload.pii_digest
    assert rebuilt.custom_label == payload.custom_label


@given(_payloads, _payloads)
def test_canonical_injective(a, b):
    """Distinct payloads never share a canonical string."""
    if a.canonical() == b.canonical():
        assert payload_from_canonical(a.canonical()) == \
            payload_from_canonical(b.canonical())


class TestCanonicalErrors:
    def test_unknown_kind(self):
        with pytest.raises(EncodingError):
            payload_from_canonical("martian|x")

    def test_wrong_field_count(self):
        with pytest.raises(EncodingError):
            payload_from_canonical("value_is|only-attr")

    def test_control_round_trip(self):
        assert payload_from_canonical("control").kind is RevealKind.CONTROL


class TestExplicitText:
    def test_attribute_set_text(self):
        payload = RevealPayload(kind=RevealKind.ATTRIBUTE_SET,
                                attr_id="a", display="Net worth: Over $2M")
        text = payload.explicit_text()
        assert "you are: Net worth: Over $2M" in text
        assert "According to this ad platform" in text

    def test_excluded_text_mentions_false_or_missing(self):
        payload = RevealPayload(kind=RevealKind.ATTRIBUTE_EXCLUDED,
                                attr_id="a", display="Expat")
        assert "false for you or missing" in payload.explicit_text()

    def test_control_text(self):
        payload = RevealPayload(kind=RevealKind.CONTROL)
        assert "reachable" in payload.explicit_text()

    def test_pii_text_truncates_digest(self):
        payload = RevealPayload(kind=RevealKind.PII_PRESENT,
                                pii_kind="phone", pii_digest="ab" * 32)
        assert ("ab" * 32)[:12] in payload.explicit_text()
        assert "ab" * 32 not in payload.explicit_text()


class TestTread:
    def test_launched_requires_ad_and_no_rejection(self):
        tread = Tread(
            payload=RevealPayload(kind=RevealKind.CONTROL),
            encoding=Encoding.CODEBOOK,
            placement=Placement.IN_AD_TEXT,
            targeting_text="all",
        )
        assert not tread.launched
        tread.ad_id = "ad-1"
        assert tread.launched
        tread.rejected = True
        assert not tread.launched
