"""Tests for regulator-side advertiser-explanation auditing."""

import pytest

from repro.core.advertiser import AdvertiserExplanation
from repro.core.regulator import (
    AdvertiserAuditor,
    ExplanationRegistry,
)
from repro.errors import ProviderError
from repro.platform.ads import AdCreative


@pytest.fixture
def binaries(platform):
    return [a for a in platform.catalog.platform_attributes()
            if a.is_binary]


def _run_ad(platform, account, campaign, targeting, with_user_attrs):
    user = platform.register_user()
    for attr in with_user_attrs:
        user.set_attribute(attr)
    ad = platform.submit_ad(
        account.account_id, campaign.campaign_id,
        AdCreative("h", "b"), targeting, bid_cap_cpm=10.0,
    )
    platform.run_until_saturated()
    return ad, user


class TestRegistry:
    def test_file_and_lookup(self):
        registry = ExplanationRegistry()
        filing = AdvertiserExplanation(ad_id="ad-1", intent="x",
                                       declared_attribute_ids=())
        registry.file(filing)
        assert registry.filing_for("ad-1") is filing
        assert registry.filing_for("ghost") is None
        assert len(registry) == 1

    def test_refiling_replaces(self):
        registry = ExplanationRegistry()
        registry.file(AdvertiserExplanation("ad-1", "old", ()))
        registry.file(AdvertiserExplanation("ad-1", "new", ()))
        assert registry.filing_for("ad-1").intent == "new"


class TestAuditAd:
    def test_honest_filing_compliant(self, platform, funded_account,
                                     campaign, binaries):
        ad, _ = _run_ad(platform, funded_account, campaign,
                        f"attr:{binaries[0].attr_id}", [binaries[0]])
        registry = ExplanationRegistry()
        registry.file(AdvertiserExplanation(
            ad_id=ad.ad_id, intent="reach fans",
            declared_attribute_ids=(binaries[0].attr_id,),
        ))
        finding = AdvertiserAuditor(platform, registry).audit_ad(ad.ad_id)
        assert finding.filed and finding.consistent
        assert finding.completeness == 1.0

    def test_unfiled_ad_flagged(self, platform, funded_account, campaign,
                                binaries):
        ad, _ = _run_ad(platform, funded_account, campaign,
                        f"attr:{binaries[0].attr_id}", [binaries[0]])
        finding = AdvertiserAuditor(
            platform, ExplanationRegistry()
        ).audit_ad(ad.ad_id)
        assert not finding.filed

    def test_hidden_attribute_refuted_by_platform(self, platform,
                                                  funded_account, campaign,
                                                  binaries):
        """The paper's verification story: the platform's independent
        explanation names an attribute the filing omitted."""
        ad, _ = _run_ad(platform, funded_account, campaign,
                        f"attr:{binaries[0].attr_id}", [binaries[0]])
        registry = ExplanationRegistry()
        registry.file(AdvertiserExplanation(
            ad_id=ad.ad_id, intent="reach everyone",
            declared_attribute_ids=(),
        ))
        finding = AdvertiserAuditor(platform, registry).audit_ad(ad.ad_id)
        assert finding.filed and not finding.consistent
        assert binaries[0].attr_id in finding.undeclared

    def test_undelivered_ad_verified_against_spec(self, platform,
                                                  funded_account, campaign,
                                                  binaries):
        # nobody matches -> no recipients; audit falls back to the spec
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("h", "b"), f"attr:{binaries[0].attr_id}",
            bid_cap_cpm=10.0,
        )
        registry = ExplanationRegistry()
        registry.file(AdvertiserExplanation(
            ad_id=ad.ad_id, intent="x",
            declared_attribute_ids=(),
        ))
        finding = AdvertiserAuditor(platform, registry).audit_ad(ad.ad_id)
        assert finding.completeness == 0.0
        assert binaries[0].attr_id in finding.undeclared


class TestScorecards:
    def test_account_scorecard_aggregates(self, platform, funded_account,
                                          campaign, binaries):
        registry = ExplanationRegistry()
        honest_ad, _ = _run_ad(platform, funded_account, campaign,
                               f"attr:{binaries[0].attr_id}", [binaries[0]])
        registry.file(AdvertiserExplanation(
            honest_ad.ad_id, "honest", (binaries[0].attr_id,)
        ))
        _run_ad(platform, funded_account, campaign,
                f"attr:{binaries[1].attr_id}", [binaries[1]])  # unfiled
        card = AdvertiserAuditor(platform, registry).audit_account(
            funded_account.account_id
        )
        assert card.ads_audited == 2
        assert card.ads_unfiled == 1
        assert card.filing_rate == 0.5
        assert not card.compliant

    def test_compliant_account(self, platform, funded_account, campaign,
                               binaries):
        registry = ExplanationRegistry()
        ad, _ = _run_ad(platform, funded_account, campaign,
                        f"attr:{binaries[0].attr_id}", [binaries[0]])
        registry.file(AdvertiserExplanation(
            ad.ad_id, "honest", (binaries[0].attr_id,)
        ))
        card = AdvertiserAuditor(platform, registry).audit_account(
            funded_account.account_id
        )
        assert card.compliant

    def test_audit_all_and_noncompliant(self, platform, funded_account,
                                        campaign, binaries):
        registry = ExplanationRegistry()
        _run_ad(platform, funded_account, campaign,
                f"attr:{binaries[0].attr_id}", [binaries[0]])
        auditor = AdvertiserAuditor(platform, registry)
        assert funded_account.account_id in auditor.non_compliant_accounts()

    def test_account_without_ads_rejected(self, platform, funded_account):
        auditor = AdvertiserAuditor(platform, ExplanationRegistry())
        with pytest.raises(ProviderError):
            auditor.audit_account(funded_account.account_id)
