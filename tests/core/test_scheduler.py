"""Tests for the paced campaign runner."""

import pytest

from repro.core.provider import TransparencyProvider
from repro.core.scheduler import (
    PacedCampaignRunner,
    ScheduleResult,
    coverage_curve,
)
from repro.workloads.browsing import BrowsingModel


@pytest.fixture
def launched(platform, web):
    provider = TransparencyProvider(platform, web, budget=100.0)
    attrs = platform.catalog.partner_attributes()[:5]
    for _ in range(4):
        user = platform.register_user()
        for attr in attrs:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
    provider.launch_attribute_sweep(attrs)
    return provider


class TestRun:
    def test_saturates_and_covers_everything(self, launched):
        runner = PacedCampaignRunner(
            launched, browsing_model=BrowsingModel(mean_slots=30.0),
            patience=2,
        )
        result = runner.run(max_days=20)
        assert result.saturated
        assert not result.exhausted_budget
        # 4 users x (5 attrs + control)
        assert result.total_impressions == 24

    def test_cumulative_monotone(self, launched):
        runner = PacedCampaignRunner(
            launched, browsing_model=BrowsingModel(mean_slots=10.0),
        )
        result = runner.run(max_days=10)
        cumulative = [r.cumulative_impressions for r in result.days]
        assert cumulative == sorted(cumulative)
        assert result.days[-1].day == len(result.days)

    def test_stops_at_max_days(self, launched):
        runner = PacedCampaignRunner(
            launched, browsing_model=BrowsingModel(mean_slots=1.0,
                                                   min_slots=1),
            patience=50,
        )
        result = runner.run(max_days=3)
        assert result.total_days == 3
        assert not result.saturated

    def test_coverage_curve_shape(self, launched):
        runner = PacedCampaignRunner(
            launched, browsing_model=BrowsingModel(mean_slots=30.0),
        )
        result = runner.run(max_days=20)
        curve = coverage_curve(result)
        assert curve[0][0] == 1
        assert curve[-1][1] == result.total_impressions


class TestDailyBudget:
    def test_daily_cap_limits_spend(self, platform, web):
        """With a binding daily cap against priced competition, per-day
        spend never exceeds the cap."""
        from repro.platform.catalog import build_us_catalog
        from repro.platform.platform import AdPlatform, PlatformConfig
        from repro.workloads.competition import fixed_competition

        priced = AdPlatform(
            config=PlatformConfig(name="paced"),
            catalog=build_us_catalog(40, 25),
            competing_draw=fixed_competition(2.0),
        )
        from repro.platform.web import WebDirectory
        provider = TransparencyProvider(priced, WebDirectory(),
                                        budget=100.0, bid_cap_cpm=10.0)
        attrs = priced.catalog.partner_attributes()[:10]
        for _ in range(20):
            user = priced.register_user()
            for attr in attrs:
                user.set_attribute(attr)
            provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep(attrs)

        cap = 0.05  # 25 impressions/day at $2 CPM market price
        runner = PacedCampaignRunner(
            provider, daily_budget=cap,
            browsing_model=BrowsingModel(mean_slots=40.0),
        )
        result = runner.run(max_days=30)
        assert result.total_impressions == 20 * 11
        assert all(r.spend <= cap + 1e-9 for r in result.days)
        # pacing stretches the campaign over multiple days
        assert result.total_days >= 2

    def test_budget_exhaustion_reported(self, platform, web):
        from repro.platform.catalog import build_us_catalog
        from repro.platform.platform import AdPlatform, PlatformConfig
        from repro.platform.web import WebDirectory
        from repro.workloads.competition import fixed_competition

        priced = AdPlatform(
            config=PlatformConfig(name="broke"),
            catalog=build_us_catalog(40, 25),
            competing_draw=fixed_competition(2.0),
        )
        provider = TransparencyProvider(priced, WebDirectory(),
                                        budget=0.02, bid_cap_cpm=10.0)
        attrs = priced.catalog.partner_attributes()[:10]
        user = priced.register_user()
        for attr in attrs:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep(attrs)
        runner = PacedCampaignRunner(
            provider, browsing_model=BrowsingModel(mean_slots=40.0),
        )
        result = runner.run(max_days=10)
        assert result.exhausted_budget
        # partial delivery: the honest failure mode the module documents
        assert 0 < result.total_impressions < 11

    def test_invalid_params_rejected(self, launched):
        with pytest.raises(ValueError):
            PacedCampaignRunner(launched, daily_budget=0.0)
        with pytest.raises(ValueError):
            PacedCampaignRunner(launched, patience=0)


class TestEmptyResult:
    def test_zero_state(self):
        result = ScheduleResult()
        assert result.total_days == 0
        assert result.total_spend == 0.0
        assert result.total_impressions == 0
