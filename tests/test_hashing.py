"""Unit tests for PII normalization and hashing."""

import hashlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import hashing


class TestNormalizeEmail:
    def test_lowercases_and_trims(self):
        assert hashing.normalize_email("  Alice@Example.COM ") == \
            "alice@example.com"

    def test_already_normal(self):
        assert hashing.normalize_email("bob@example.com") == "bob@example.com"


class TestNormalizePhone:
    def test_us_formatting_stripped(self):
        assert hashing.normalize_phone("(617) 555-0199") == "16175550199"

    def test_plus_prefix_respected(self):
        assert hashing.normalize_phone("+49 30 1234567") == "49301234567"

    def test_country_code_not_duplicated(self):
        assert hashing.normalize_phone("1-617-555-0199") == "16175550199"

    def test_empty_input(self):
        assert hashing.normalize_phone("---") == ""


class TestNormalizeName:
    def test_punctuation_and_case(self):
        assert hashing.normalize_name(" O'Brien ") == "obrien"

    def test_inner_whitespace_removed(self):
        assert hashing.normalize_name("Mary Jane") == "maryjane"


class TestNormalizeZip:
    def test_zip_plus_four_truncated(self):
        assert hashing.normalize_zip("02115-3847") == "02115"

    def test_plain_zip(self):
        assert hashing.normalize_zip(" 02115 ") == "02115"

    def test_non_us_postcode(self):
        assert hashing.normalize_zip("SW1A 1AA") == "sw1a1aa"


class TestNormalizeMaid:
    def test_idfa_lowercased(self):
        assert hashing.normalize_maid(" 6D92078A-8246-4BA4-AE5B-76104861E7DC ") == \
            "6d92078a-8246-4ba4-ae5b-76104861e7dc"

    def test_garbage_stripped(self):
        assert hashing.normalize_maid("xyz!!") == ""

    def test_maid_is_pii_kind(self):
        assert "maid" in hashing.PII_KINDS


class TestHashPii:
    def test_deterministic(self):
        assert hashing.hash_pii("email", "a@b.com") == \
            hashing.hash_pii("email", "A@B.com ")

    def test_kind_namespacing(self):
        # same digits must not collide across kinds
        assert hashing.hash_pii("zip", "12345") != \
            hashing.hash_pii("phone", "12345")

    def test_matches_manual_sha256(self):
        expected = hashlib.sha256(b"email:a@b.com").hexdigest()
        assert hashing.hash_pii("email", "a@b.com") == expected

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            hashing.normalize_pii("ssn", "123-45-6789")

    def test_batch_preserves_order(self):
        values = ["a@b.com", "c@d.com"]
        batch = hashing.hash_pii_batch("email", values)
        assert batch == [hashing.hash_pii("email", v) for v in values]


class TestIsHashed:
    def test_recognises_digest(self):
        assert hashing.is_hashed(hashing.hash_pii("email", "x@y.z"))

    def test_rejects_raw(self):
        assert not hashing.is_hashed("alice@example.com")

    def test_rejects_uppercase_hex(self):
        assert not hashing.is_hashed("A" * 64)


@given(st.emails())
def test_email_hash_always_hashed_property(email):
    assert hashing.is_hashed(hashing.hash_pii("email", email))


@given(st.text(min_size=1, max_size=30))
def test_name_normalization_idempotent(name):
    once = hashing.normalize_name(name)
    assert hashing.normalize_name(once) == once
