"""Integration: section 4's advertiser-driven transparency, end to end.

An ordinary advertiser targets Salsa-interested users, a user clicks
through to the advertiser's site, the advertiser's first-party log plus
the ad's targeting spec produce a learn-on-click record, and the
mandated disclosure reaches the user. The regulator then audits the
advertiser's filed explanation against the platform's.
"""

import pytest

from repro.core.advertiser import (
    AdvertiserExplanation,
    click_learning_for_ad,
)
from repro.core.regulator import AdvertiserAuditor, ExplanationRegistry
from repro.platform.ads import AdCreative, LandingURL


@pytest.fixture
def shop_scenario(platform, web, funded_account, campaign):
    """An advertiser with a shop site runs a Salsa-targeted ad."""
    shop = web.create_site("danceshop.example", owner="shop")
    shop.add_page("/landing", content="Shoes for dancers")
    salsa = platform.catalog.search("salsa")[0]
    user = platform.register_user(age=35)
    user.set_attribute(salsa)
    ad = platform.submit_ad(
        funded_account.account_id, campaign.campaign_id,
        AdCreative(
            headline="Dance shoes",
            body="Handmade, worldwide shipping.",
            landing_url=LandingURL("danceshop.example", "/landing"),
        ),
        f"age:30-65 & attr:{salsa.attr_id}",
        bid_cap_cpm=10.0,
    )
    platform.run_until_saturated()
    return shop, salsa, user, ad


class TestLearnOnClick:
    def test_click_produces_disclosure(self, platform, web, shop_scenario):
        shop, salsa, user, ad = shop_scenario
        delivered = platform.feed(user.user_id)[0]
        assert delivered.landing_url == "https://danceshop.example/landing"

        # the user clicks: their browser visits the advertiser's page
        browser = platform.browser_for(user.user_id)
        browser.visit(shop, "/landing")
        cookie = shop.access_log[-1].cookie_id

        # the advertiser associates the ad's targeting with that cookie
        learning = click_learning_for_ad(ad)
        learning.record_click(cookie)

        disclosure = learning.disclosure_for(cookie)
        assert salsa.attr_id in disclosure.attributes_learned
        # the advertiser learned an ATTRIBUTE about a COOKIE — but still
        # not a platform identity
        assert user.user_id not in str(learning.learned)

    def test_cookieless_click_defeats_learning(self, platform, web,
                                               shop_scenario):
        shop, _, user, ad = shop_scenario
        browser = platform.browser_for(user.user_id)
        browser.disable_cookies()
        browser.visit(shop, "/landing")
        learning = click_learning_for_ad(ad)
        learning.record_click(shop.access_log[-1].cookie_id)
        assert learning.learned == {}


class TestIntentTreads:
    def test_intent_tread_reaches_exact_audience(self, platform, web,
                                                 shop_scenario,
                                                 funded_account, campaign):
        """Section 4 end-to-end: a mandated companion Tread carries the
        advertiser's intent to exactly the base ad's audience, and the
        user's extension surfaces it."""
        from repro.core.advertiser import launch_intent_tread
        from repro.core.client import TreadClient
        from repro.core.codebook import Codebook
        from repro.core.provider import DecodePack

        _, salsa, user, ad = shop_scenario
        # in practice this codebook is the regulator's public registry
        registry_book = Codebook(salt="intent-registry")
        companion = launch_intent_tread(
            platform, funded_account.account_id, campaign.campaign_id,
            ad, "reach experienced professional Salsa dancers",
            registry_book,
        )
        assert companion.status.value == "active"
        platform.run_until_saturated()

        pack = DecodePack(
            provider_name="intent-registry",
            codebook_snapshot=registry_book.snapshot(),
            codebook_salt="intent-registry",
            value_tables={},
            account_ids={platform.name: funded_account.account_id},
            landing_domains=(),
        )
        profile = TreadClient(user.user_id, platform, pack).sync()
        assert profile.intents == [
            "reach experienced professional Salsa dancers"
        ]

    def test_nonmatching_user_gets_no_intent(self, platform, web,
                                             shop_scenario,
                                             funded_account, campaign):
        from repro.core.advertiser import launch_intent_tread
        from repro.core.codebook import Codebook

        _, _, _, ad = shop_scenario
        outsider = platform.register_user(age=22)  # outside age:30-65
        launch_intent_tread(
            platform, funded_account.account_id, campaign.campaign_id,
            ad, "reach dancers", Codebook(salt="r"),
        )
        platform.run_until_saturated()
        assert platform.feed(outsider.user_id) == []

    def test_pipe_in_intent_rejected(self, platform, shop_scenario,
                                     funded_account, campaign):
        from repro.core.advertiser import launch_intent_tread
        from repro.core.codebook import Codebook

        _, _, _, ad = shop_scenario
        with pytest.raises(ValueError):
            launch_intent_tread(
                platform, funded_account.account_id, campaign.campaign_id,
                ad, "a|b", Codebook(salt="r"),
            )


class TestRegulatedDisclosure:
    def test_honest_advertiser_passes_audit(self, platform, web,
                                            shop_scenario, funded_account):
        _, salsa, _, ad = shop_scenario
        registry = ExplanationRegistry()
        registry.file(AdvertiserExplanation(
            ad_id=ad.ad_id,
            intent="reach experienced professional Salsa dancers",
            declared_attribute_ids=(salsa.attr_id,),
        ))
        auditor = AdvertiserAuditor(platform, registry)
        card = auditor.audit_account(funded_account.account_id)
        assert card.compliant

    def test_intent_complements_platform_explanation(self, platform, web,
                                                     shop_scenario):
        """The paper's point: platform explanations are capped at the
        targeting options; the intent declaration carries the real goal
        ('experienced professional Salsa dancers' vs 'aged 30+ interested
        in Salsa')."""
        _, salsa, user, ad = shop_scenario
        platform_expl = platform.explain_ad(user.user_id, ad.ad_id)
        # platform explanation mentions the proxy attribute + demographics
        assert platform_expl.revealed_attribute == salsa.attr_id
        assert "between the ages of 30 and 65" in platform_expl.text
        # ... but cannot express intent; the advertiser's filing can
        filing = AdvertiserExplanation(
            ad_id=ad.ad_id,
            intent="experienced professional Salsa dancers",
            declared_attribute_ids=(salsa.attr_id,),
        )
        assert "professional" in filing.intent
        assert "professional" not in platform_expl.text
