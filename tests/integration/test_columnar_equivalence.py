"""End-to-end equivalence: columnar store vs legacy object store.

The acceptance bar for the columnar refactor: the 2,000-user x full
partner-sweep delivery tier must produce **byte-identical** advertiser
reports on both storage backends, and the deliver-iff-match invariant
must hold on the columnar and compact-delivery paths exactly as it does
on the legacy path.

Byte-identity is a fair demand because everything downstream of storage
is deterministic given the match sets: user registration order fixes id
assignment and delivery order, ``KeyedCompetition``/zero competition fix
auction outcomes per (user, slot), and report serialization sorts keys.
So any byte diff in the reports means the columnar store changed *who
matched what* — which is precisely the regression this test exists to
catch.
"""

import dataclasses
import json

import pytest

from repro.core.provider import TransparencyProvider
from repro.errors import StoreError
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.workloads.competition import zero_competition


def _sweep_world(columnar: bool, users: int = 2000, compact: bool = False,
                 sweep: bool = False):
    """The scale-tier world: ``users`` users, 10 rotating partner
    attributes each, full partner sweep launched. ``sweep`` routes
    delivery through the vectorized batch sweep engine instead of the
    scalar per-user loop."""
    platform = AdPlatform(
        config=PlatformConfig(name="coleq", columnar_users=columnar,
                              compact_delivery=compact),
        catalog=build_us_catalog(614, 507),
        competing_draw=zero_competition(),
    )
    provider = TransparencyProvider(platform, WebDirectory(), budget=5000.0)
    attrs = platform.catalog.partner_attributes()
    for i in range(users):
        user = platform.register_user()
        for k in range(10):
            user.set_attribute(attrs[(i * 10 + k) % len(attrs)])
        provider.optin.via_page_like(user.user_id)
    provider.launch_partner_sweep()
    provider.run_delivery(sweep=sweep)
    return platform, provider


def _canonical_reports(platform, account_id):
    """Every ad report for the account as one canonical JSON string."""
    reports = [dataclasses.asdict(r)
               for r in platform.reports(account_id)]
    reports.sort(key=lambda r: r["ad_id"])
    return json.dumps(reports, sort_keys=True)


class TestScaleSweepEquivalence:
    def test_reports_byte_identical_legacy_vs_columnar(self):
        legacy_platform, legacy_provider = _sweep_world(columnar=False)
        columnar_platform, columnar_provider = _sweep_world(columnar=True)

        assert legacy_provider.total_impressions() == 2000 * 11
        assert columnar_provider.total_impressions() == 2000 * 11

        legacy_json = _canonical_reports(
            legacy_platform, legacy_provider.account.account_id)
        columnar_json = _canonical_reports(
            columnar_platform, columnar_provider.account.account_id)
        assert legacy_json == columnar_json
        assert json.loads(legacy_json), "reports must be non-empty"

        legacy_invoice = legacy_platform.invoice(
            legacy_provider.account.account_id)
        columnar_invoice = columnar_platform.invoice(
            columnar_provider.account.account_id)
        assert legacy_invoice.total == columnar_invoice.total
        assert legacy_invoice.impressions == columnar_invoice.impressions

    @pytest.mark.parametrize("compact", [False, True])
    def test_reports_byte_identical_scalar_vs_batch_sweep(self, compact):
        """The batch-sweep acceptance bar: the vectorized engine must
        reproduce the scalar loop's 2,000-user reports byte for byte."""
        scalar_platform, scalar_provider = _sweep_world(
            columnar=True, compact=compact)
        batch_platform, batch_provider = _sweep_world(
            columnar=True, compact=compact, sweep=True)

        assert batch_provider.total_impressions() == 2000 * 11

        scalar_json = _canonical_reports(
            scalar_platform, scalar_provider.account.account_id)
        batch_json = _canonical_reports(
            batch_platform, batch_provider.account.account_id)
        assert scalar_json == batch_json
        assert json.loads(batch_json), "reports must be non-empty"

        scalar_invoice = scalar_platform.invoice(
            scalar_provider.account.account_id)
        batch_invoice = batch_platform.invoice(
            batch_provider.account.account_id)
        assert scalar_invoice.total == batch_invoice.total
        assert scalar_invoice.impressions == batch_invoice.impressions


class TestDeliverIffMatch:
    """The paper's core premise, pinned on each storage/delivery mode."""

    @pytest.mark.parametrize("columnar,sweep", [
        (False, False), (True, False), (True, True)])
    def test_each_user_gets_exactly_their_treads(self, columnar, sweep):
        platform, provider = _sweep_world(columnar=columnar, users=300,
                                          sweep=sweep)
        attrs = platform.catalog.partner_attributes()
        # ad_id -> the attribute its Tread reveals (None for control).
        ad_attr = {tread.ad_id: tread.payload.attr_id
                   for tread in provider.treads if tread.launched}
        user_ids = platform.users.user_ids()
        for i in range(300):
            expected = {attrs[(i * 10 + k) % len(attrs)].attr_id
                        for k in range(10)}
            feed = platform.feed(user_ids[i])
            # 10 attribute Treads + the control ad, nothing else.
            assert len(feed) == 11
            received = {ad_attr[ad.ad_id] for ad in feed}
            assert received - {None} == expected

    def test_compact_mode_counts_match_full_mode(self):
        full_platform, full_provider = _sweep_world(
            columnar=True, users=300)
        compact_platform, compact_provider = _sweep_world(
            columnar=True, users=300, compact=True)

        assert compact_provider.total_impressions() == \
            full_provider.total_impressions() == 300 * 11
        assert compact_provider.total_spend() == \
            full_provider.total_spend()

        full_engine = full_platform.delivery
        compact_engine = compact_platform.delivery
        for ad in full_platform.inventory.ads_owned_by(
                full_provider.account.account_id):
            assert compact_engine.reach_count(ad.ad_id) == \
                full_engine.reach_count(ad.ad_id)
            assert compact_engine.unique_reach(ad.ad_id) == \
                full_engine.unique_reach(ad.ad_id)

        with pytest.raises(StoreError, match="compact delivery"):
            compact_engine.impressions()
        with pytest.raises(StoreError, match="charge log"):
            compact_platform.ledger.all_charges()

    def test_second_saturation_delivers_nothing(self):
        """Frequency caps hold in compact mode: saturation is stable."""
        platform, provider = _sweep_world(
            columnar=True, users=100, compact=True)
        before = provider.total_impressions()
        provider.run_delivery()
        assert provider.total_impressions() == before
