"""Integration: the paper's validation under fully realistic conditions.

E1-style scenario but with nothing idealized: log-normal auction
competition, heavy-tailed browsing sessions, a daily budget, and the
paced runner's provider-observable stopping rule. The paper's outcome
must survive all of it.
"""

import pytest

from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.core.scheduler import PacedCampaignRunner
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.workloads.browsing import BrowsingModel
from repro.workloads.competition import lognormal_competition
from repro.workloads.personas import (
    ESTABLISHED_PROFESSIONAL,
    RECENT_ARRIVAL_GRAD_STUDENT,
)
from repro.workloads.population import PopulationBuilder


@pytest.mark.parametrize("seed", [3, 11, 42])
def test_validation_outcome_robust_to_randomness(seed):
    platform = AdPlatform(
        config=PlatformConfig(name=f"rob{seed}"),
        competing_draw=lognormal_competition(median_cpm=2.0, seed=seed),
    )
    web = WebDirectory()
    builder = PopulationBuilder(platform, seed=seed)
    profiled = builder.spawn(ESTABLISHED_PROFESSIONAL, 1)[0]
    unprofiled = builder.spawn(RECENT_ARRIVAL_GRAD_STUDENT, 1)[0]
    builder.finalize()

    provider = TransparencyProvider(platform, web, budget=500.0,
                                    bid_cap_cpm=10.0)
    provider.optin.via_page_like(profiled.user_id)
    provider.optin.via_page_like(unprofiled.user_id)
    provider.launch_partner_sweep()

    runner = PacedCampaignRunner(
        provider,
        daily_budget=0.10,
        browsing_model=BrowsingModel(mean_slots=30.0),
        patience=3,
        seed=seed * 7,
    )
    result = runner.run(max_days=60)
    assert result.saturated
    assert not result.exhausted_budget

    pack = provider.publish_decode_pack()
    reveal_profiled = TreadClient(profiled.user_id, platform, pack).sync()
    reveal_unprofiled = TreadClient(unprofiled.user_id, platform,
                                    pack).sync()
    truth = {a for a in profiled.binary_attrs if a.startswith("pc-")}

    # the paper's qualitative outcome, under full stochasticity
    assert reveal_profiled.control_received
    assert reveal_unprofiled.control_received
    assert reveal_profiled.set_attributes == truth
    assert reveal_profiled.set_attributes  # non-empty by persona
    assert reveal_unprofiled.set_attributes == set()
    # and the paced runner paid second prices, not the cap
    effective_cpm = 1000 * result.total_spend / result.total_impressions
    assert effective_cpm < 10.0
