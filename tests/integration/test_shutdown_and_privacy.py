"""Integration: the partner-category shutdown and the privacy claims."""

import pytest

from repro.core.client import TreadClient
from repro.core.privacy import (
    AggregateKnowledge,
    aggregate_inference_attack,
)
from repro.core.provider import TransparencyProvider
from repro.errors import CatalogError
from repro.platform.databroker import shutdown_partner_categories
from repro.workloads.personas import AVERAGE_CONSUMER
from repro.workloads.population import (
    PopulationBuilder,
    ground_truth_partner_attrs,
)


class TestShutdownScenario:
    """Paper footnote 2: Facebook removed partner categories in 2018."""

    def test_sweep_impossible_after_shutdown(self, platform, web):
        provider = TransparencyProvider(platform, web, budget=100.0)
        partner_ids = [a.attr_id
                       for a in platform.catalog.partner_attributes()]
        shutdown_partner_categories(
            platform.catalog, platform.users, platform.brokers
        )
        # the sweep finds no partner attributes to run against
        report = provider.launch_partner_sweep()
        kinds = [t.payload.kind.value for t in report.treads]
        assert kinds == ["control"]
        # and explicitly targeting a removed attribute fails validation
        from repro.platform.ads import AdCreative
        with pytest.raises(CatalogError):
            platform.submit_ad(
                provider.account.account_id,
                provider.campaign.campaign_id,
                AdCreative("h", "b"),
                f"attr:{partner_ids[0]} & {provider.page_audience_term()}",
            )

    def test_treads_before_shutdown_still_decoded(self, platform, web):
        """Reveals already collected survive the catalog change."""
        provider = TransparencyProvider(platform, web, budget=100.0)
        attrs = platform.catalog.partner_attributes()[:2]
        user = platform.register_user()
        for attr in attrs:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep(attrs)
        provider.run_delivery()
        pack = provider.publish_decode_pack()
        # catalog reference must be taken before shutdown for name mapping
        catalog_before = platform.catalog.subset(
            [a.attr_id for a in platform.catalog]
        )
        shutdown_partner_categories(
            platform.catalog, platform.users, platform.brokers
        )
        profile = TreadClient(user.user_id, platform, pack,
                              catalog=catalog_before).sync()
        assert profile.set_attributes == {a.attr_id for a in attrs}


class TestPrivacyEndToEnd:
    def test_provider_cannot_deanonymize_from_reports(self, platform, web):
        """Run a real campaign over 40 users; the provider's best
        aggregate-only attack has zero advantage over baseline."""
        builder = PopulationBuilder(platform, seed=11)
        users = builder.spawn(AVERAGE_CONSUMER, 40)
        builder.finalize()
        provider = TransparencyProvider(platform, web, budget=300.0)
        for user in users:
            provider.optin.via_page_like(user.user_id)
        provider.launch_partner_sweep()
        provider.run_delivery()

        user_ids = [u.user_id for u in users]
        counts = provider.aggregate_attribute_counts()
        knowledge = AggregateKnowledge(
            optin_count=len(users), attribute_counts=counts
        )
        truth_by_user = ground_truth_partner_attrs(platform, user_ids)
        truth_by_attr = {}
        for user_id, attrs in truth_by_user.items():
            for attr_id in attrs:
                truth_by_attr.setdefault(attr_id, set()).add(user_id)
        result = aggregate_inference_attack(knowledge, user_ids,
                                            truth_by_attr)
        assert result.advantage == pytest.approx(0.0, abs=1e-9)

    def test_aggregate_counts_are_accurate(self, platform, web):
        """The flip side: the provider DOES learn accurate aggregates."""
        builder = PopulationBuilder(platform, seed=12)
        users = builder.spawn(AVERAGE_CONSUMER, 30)
        builder.finalize()
        provider = TransparencyProvider(platform, web, budget=300.0)
        for user in users:
            provider.optin.via_page_like(user.user_id)
        provider.launch_partner_sweep()
        provider.run_delivery()
        counts = provider.aggregate_attribute_counts()
        truth = ground_truth_partner_attrs(platform,
                                           [u.user_id for u in users])
        for attr in platform.catalog.partner_attributes():
            true_count = sum(1 for attrs in truth.values()
                             if attr.attr_id in attrs)
            assert counts[attr.attr_id] == true_count
