"""Integration: covert discrimination survives attribute-level review.

Paper section 5: even after Facebook's fixes, "it was still possible to
deploy discriminatory advertisements as of November 2017, which is not
surprising given the multiple covert ways of launching discriminatory
advertisements that have been found [29]".

The covert channel modelled here: a housing advertiser seeds a lookalike
audience from a page liked predominantly by one group. The ad's targeting
spec contains no demographic or exclusion term — it passes the
special-category review cleanly — yet delivery is grossly disparate.
The disparity *is* measurable platform-side, which is the audit hook a
real counter-measure would need.
"""

import pytest

from repro.analysis.metrics import delivery_disparity
from repro.platform.ads import AdCreative, AdStatus


@pytest.fixture
def skewed_world(platform, funded_account):
    """Two groups distinguished only by correlated binary attributes."""
    binaries = [a for a in platform.catalog.platform_attributes()
                if a.is_binary]
    marker_a, marker_b = binaries[0], binaries[1]
    page = platform.create_page(funded_account.account_id, "Community")
    group_a, group_b = set(), set()
    for index in range(40):
        user = platform.register_user()
        if index < 20:
            user.set_attribute(marker_a)  # group A's correlated traits
            user.set_attribute(binaries[2])
            user.set_attribute(binaries[3])
            group_a.add(user.user_id)
            if index < 10:
                platform.like_page(user.user_id, page.page_id)  # skewed seed
        else:
            user.set_attribute(marker_b)
            user.set_attribute(binaries[4])
            user.set_attribute(binaries[5])
            group_b.add(user.user_id)
    return page, group_a, group_b


class TestCovertChannel:
    def test_lookalike_housing_ad_passes_review(self, platform,
                                                funded_account, campaign,
                                                skewed_world):
        page, _, _ = skewed_world
        seed = platform.create_page_audience(funded_account.account_id,
                                             page.page_id)
        lookalike = platform.create_lookalike_audience(
            funded_account.account_id, seed.audience_id,
            similarity_threshold=2,
        )
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("Apartments", "Great neighbourhood."),
            f"audience:{lookalike.audience_id}",
            bid_cap_cpm=10.0, special_category="housing",
        )
        # no age/gender/zip/exclusion/financial terms -> review passes
        assert ad.status is AdStatus.ACTIVE

    def test_delivery_is_disparate(self, platform, funded_account,
                                   campaign, skewed_world):
        page, group_a, group_b = skewed_world
        seed = platform.create_page_audience(funded_account.account_id,
                                             page.page_id)
        lookalike = platform.create_lookalike_audience(
            funded_account.account_id, seed.audience_id,
            similarity_threshold=2,
        )
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("Apartments", "Great neighbourhood."),
            f"audience:{lookalike.audience_id}",
            bid_cap_cpm=10.0, special_category="housing",
        )
        platform.run_until_saturated()
        disparity = delivery_disparity(
            platform.delivery.unique_reach(ad.ad_id), group_a, group_b
        )
        # the formally-clean ad reached group A broadly, group B barely
        assert disparity.rate_a >= 0.5
        assert disparity.rate_b == 0.0
        assert disparity.disparate_impact_ratio < 0.8

    def test_platform_can_measure_what_review_missed(self, platform,
                                                     funded_account,
                                                     campaign,
                                                     skewed_world):
        """The audit hook: review sees nothing, but the platform's own
        delivery log quantifies the disparity — outcome auditing, not
        input auditing, is what would catch covert channels."""
        page, group_a, group_b = skewed_world
        seed = platform.create_page_audience(funded_account.account_id,
                                             page.page_id)
        lookalike = platform.create_lookalike_audience(
            funded_account.account_id, seed.audience_id,
            similarity_threshold=2,
        )
        ad = platform.submit_ad(
            funded_account.account_id, campaign.campaign_id,
            AdCreative("Apartments", "Great neighbourhood."),
            f"audience:{lookalike.audience_id}",
            bid_cap_cpm=10.0, special_category="housing",
        )
        assert ad.targeting.referenced_attributes() == []  # review-blind
        platform.run_until_saturated()
        disparity = delivery_disparity(
            platform.delivery.unique_reach(ad.ad_id), group_a, group_b
        )
        assert disparity.disparate_impact_ratio < 0.8  # measurable
