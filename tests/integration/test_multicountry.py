"""Integration: per-country catalogs (section 3.1: "Facebook provides
different attributes in different countries; we only focus on those
provided to U.S.-based advertisers")."""

import pytest

from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.errors import TargetingError
from repro.platform.catalog import build_country_catalogs
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.workloads.competition import zero_competition


@pytest.fixture
def world_platform():
    return AdPlatform(
        config=PlatformConfig(name="world"),
        catalog=build_country_catalogs(
            countries=("US", "DE"), partner_counts=(507, 60)
        ),
        competing_draw=zero_competition(),
    )


class TestCountryCatalogs:
    def test_us_advertiser_cannot_target_de_attributes(self,
                                                       world_platform):
        platform = world_platform
        web = WebDirectory()
        us_provider = TransparencyProvider(platform, web, name="us-np",
                                           budget=50.0)
        de_attr = platform.catalog.partner_attributes("DE")[0]
        with pytest.raises(TargetingError):
            platform.submit_ad(
                us_provider.account.account_id,
                us_provider.campaign.campaign_id,
                __import__("repro.platform.ads",
                           fromlist=["AdCreative"]).AdCreative("h", "b"),
                f"attr:{de_attr.attr_id} & {us_provider.page_audience_term()}",
            )

    def test_de_provider_sweeps_de_catalog(self, world_platform):
        platform = world_platform
        web = WebDirectory()
        de_provider = TransparencyProvider(platform, web, name="de-np",
                                           budget=100.0)
        de_provider.account.country = "DE"
        de_attrs = platform.catalog.partner_attributes("DE")
        user = platform.register_user(country="DE")
        for attr in de_attrs[:4]:
            user.set_attribute(attr)
        de_provider.optin.via_page_like(user.user_id)
        report = de_provider.launch_partner_sweep()
        # sweep enumerates the DE catalog: 60 attrs + control
        assert len(report.treads) == 61
        de_provider.run_delivery()
        profile = TreadClient(user.user_id, platform,
                              de_provider.publish_decode_pack()).sync()
        assert profile.set_attributes == {a.attr_id for a in de_attrs[:4]}

    def test_partner_counts_differ_by_country(self, world_platform):
        platform = world_platform
        assert len(platform.catalog.partner_attributes("US")) == 507
        assert len(platform.catalog.partner_attributes("DE")) == 60
