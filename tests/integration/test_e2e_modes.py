"""Integration: every supported encoding x placement mode end-to-end,
plus PII reveals, custom attributes, and the pixel opt-in route."""

import pytest

from repro.core.client import TreadClient
from repro.core.creative import SUPPORTED_MODES
from repro.core.provider import TransparencyProvider
from repro.core.treads import Encoding, Placement
from repro.platform.pii import record_from_raw


@pytest.mark.parametrize("encoding,placement", [
    (e, p) for e, p in SUPPORTED_MODES if e is not Encoding.EXPLICIT
    or p is Placement.LANDING_PAGE
])
def test_mode_reveals_end_to_end(platform, web, encoding, placement):
    """Every review-passing mode delivers and decodes identically.

    (EXPLICIT + IN_AD_TEXT is excluded: review rejects it by design —
    covered in test_provider and benchmark E7.)
    """
    provider = TransparencyProvider(
        platform, web, budget=200.0, encoding=encoding, placement=placement,
    )
    attrs = platform.catalog.partner_attributes()[:4]
    user = platform.register_user()
    for attr in attrs[:2]:
        user.set_attribute(attr)
    provider.optin.via_page_like(user.user_id)
    report = provider.launch_attribute_sweep(attrs)
    assert report.launch_rate == 1.0
    provider.run_delivery()
    profile = TreadClient(user.user_id, platform,
                          provider.publish_decode_pack()).sync()
    assert profile.set_attributes == {a.attr_id for a in attrs[:2]}
    assert profile.control_received
    assert profile.undecoded == []


class TestPixelOptInRoute:
    def test_pixel_audience_needs_minimum_size(self, platform, web):
        from repro.errors import AudienceTooSmallError
        provider = TransparencyProvider(platform, web, budget=200.0)
        user = platform.register_user()
        provider.optin.via_pixel(platform.browser_for(user.user_id))
        attrs = platform.catalog.partner_attributes()[:1]
        with pytest.raises(AudienceTooSmallError):
            provider.launch_attribute_sweep(
                attrs, audience_term=provider.pixel_audience_term()
            )

    def test_pixel_route_works_at_scale(self, platform, web):
        provider = TransparencyProvider(platform, web, budget=200.0)
        attr = platform.catalog.partner_attributes()[0]
        users = []
        for index in range(25):
            user = platform.register_user()
            if index < 10:
                user.set_attribute(attr)
            provider.optin.via_pixel(platform.browser_for(user.user_id))
            users.append(user)
        provider.launch_attribute_sweep(
            [attr], audience_term=provider.pixel_audience_term()
        )
        provider.run_delivery()
        pack = provider.publish_decode_pack()
        revealed = sum(
            1 for user in users
            if attr.attr_id in TreadClient(user.user_id, platform,
                                           pack).sync().set_attributes
        )
        assert revealed == 10

    def test_anonymous_to_provider(self, platform, web):
        """Pixel opt-in keeps users anonymous to the provider: its site
        log holds only cookies, and platform reports only counts."""
        provider = TransparencyProvider(platform, web, budget=200.0)
        user = platform.register_user()
        provider.optin.via_pixel(platform.browser_for(user.user_id))
        log_blob = str(provider.website.access_log)
        assert user.user_id not in log_blob


class TestLateOptIn:
    def test_user_opting_in_after_launch_still_revealed(self, platform,
                                                        web):
        """Page audiences are dynamic: a user who likes the provider's
        page AFTER the sweep launched still receives their Treads on the
        next delivery rounds — subscriptions don't require re-launching
        507 ads."""
        provider = TransparencyProvider(platform, web, budget=100.0)
        attrs = platform.catalog.partner_attributes()[:3]
        provider.launch_attribute_sweep(attrs)
        provider.run_delivery()  # nobody opted in yet; nothing delivered

        latecomer = platform.register_user()
        for attr in attrs[:2]:
            latecomer.set_attribute(attr)
        provider.optin.via_page_like(latecomer.user_id)
        provider.run_delivery()

        profile = TreadClient(latecomer.user_id, platform,
                              provider.publish_decode_pack()).sync()
        assert profile.set_attributes == {a.attr_id for a in attrs[:2]}
        assert profile.control_received


class TestPIIReveals:
    def _setup(self, platform, web, holders, non_holders):
        """holders: users whose phone the platform has; non_holders: it
        doesn't. All submit hashed phones to the provider."""
        provider = TransparencyProvider(platform, web, budget=200.0)
        users = []
        for index in range(holders + non_holders):
            user = platform.register_user()
            phone = f"617555{index:04d}"
            if index < holders:
                platform.users.attach_pii(user.user_id, "phone", phone)
            provider.optin.via_page_like(user.user_id)
            provider.optin.submit_hashed_pii(
                [record_from_raw("phone", phone)]
            )
            users.append(user)
        return provider, users

    def test_reveals_exactly_who_platform_knows(self, platform, web):
        provider, users = self._setup(platform, web, holders=25,
                                      non_holders=10)
        report = provider.launch_pii_reveals()
        assert report.launch_rate == 1.0
        provider.run_delivery()
        pack = provider.publish_decode_pack()
        for index, user in enumerate(users):
            profile = TreadClient(user.user_id, platform, pack).sync()
            if index < 25:
                assert profile.pii_present == {"phone"}
            else:
                assert profile.pii_present == set()

    def test_provider_never_sees_raw_pii(self, platform, web):
        provider, _ = self._setup(platform, web, holders=25, non_holders=0)
        batches = [provider.optin.pii_batch(k)
                   for k in provider.optin.pii_kinds()]
        from repro.hashing import is_hashed
        for batch in batches:
            assert all(is_hashed(record.digest) for record in batch)


class TestCustomAttributes:
    def test_per_attribute_optin_reveal(self, platform, web):
        provider = TransparencyProvider(platform, web, budget=200.0)
        attr = [a for a in platform.catalog.platform_attributes()
                if a.is_binary][0]
        label = "custom: " + attr.name
        users = []
        for index in range(30):
            user = platform.register_user()
            if index < 12:
                user.set_attribute(attr)
            provider.optin.via_page_like(user.user_id)
            provider.optin.via_custom_pixel(
                platform.browser_for(user.user_id), label
            )
            users.append(user)
        report = provider.launch_custom_attribute(
            label, f"attr:{attr.attr_id}"
        )
        assert report.launch_rate == 1.0
        provider.run_delivery()
        pack = provider.publish_decode_pack()
        matched = [
            u for u in users
            if label in TreadClient(u.user_id, platform,
                                    pack).sync().custom_matches
        ]
        assert len(matched) == 12

    def test_only_optedin_visitors_targeted(self, platform, web):
        """A user with the attribute who did NOT visit the custom page
        must not receive the custom Tread."""
        provider = TransparencyProvider(platform, web, budget=200.0)
        attr = [a for a in platform.catalog.platform_attributes()
                if a.is_binary][0]
        label = "selective"
        visitor_users, outsider = [], None
        for index in range(25):
            user = platform.register_user()
            user.set_attribute(attr)
            provider.optin.via_custom_pixel(
                platform.browser_for(user.user_id), label
            )
            visitor_users.append(user)
        outsider = platform.register_user()
        outsider.set_attribute(attr)
        provider.launch_custom_attribute(label, f"attr:{attr.attr_id}")
        provider.run_delivery()
        pack = provider.publish_decode_pack()
        profile = TreadClient(outsider.user_id, platform, pack).sync()
        assert profile.custom_matches == set()
