"""Integration test: the paper's full validation scenario (section 3.1).

"We registered as a U.S.-based advertiser ... had the two U.S.-based
authors sign-up by liking a Facebook page ... ran one ad targeting the
signed-up users with each of the 507 binary partner attributes ... set
the bid cap for each ad to be $10 CPM ... While both authors received the
control ad, only one author received ads corresponding to his partner
categories, receiving eleven different ads."
"""

import pytest

from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.workloads.competition import lognormal_competition

#: The partner attributes the paper lists the profiled author received.
VALIDATION_ATTR_IDS = (
    "pc-networth-005",        # net worth band
    "pc-restaurants-003",     # kind of restaurant purchased at
    "pc-restaurants-009",     # second restaurant kind
    "pc-apparel-000",         # kind of apparel purchased
    "pc-apparel-006",         # second apparel kind
    "pc-jobrole-002",         # job role
    "pc-hometype-000",        # home type
    "pc-autointent-007",      # likely auto purchase
    "pc-income-007",          # household income band
    "pc-credit-000",          # credit segment
    "pc-segment-042",         # generic broker segment
)


@pytest.fixture(scope="module")
def scenario():
    """Full-catalog platform with realistic competition; the elevated $10
    CPM bid is what makes delivery reliable against it."""
    platform = AdPlatform(
        config=PlatformConfig(name="fb"),
        competing_draw=lognormal_competition(median_cpm=2.0, seed=17),
    )
    web = WebDirectory()

    profiled = platform.register_user(age=38)
    for attr_id in VALIDATION_ATTR_IDS:
        profiled.set_attribute(platform.catalog.get(attr_id))
    unprofiled = platform.register_user(age=26)  # the recent arrival

    provider = TransparencyProvider(platform, web, budget=500.0,
                                    bid_cap_cpm=10.0)
    provider.optin.via_page_like(profiled.user_id)
    provider.optin.via_page_like(unprofiled.user_id)
    report = provider.launch_partner_sweep()
    provider.run_delivery(max_rounds=200)
    pack = provider.publish_decode_pack()
    return platform, provider, report, pack, profiled, unprofiled


class TestCampaignShape:
    def test_508_ads_run(self, scenario):
        _, _, report, _, _, _ = scenario
        assert len(report.treads) == 508  # 507 partner + 1 control
        assert report.launch_rate == 1.0

    def test_bid_cap_is_five_times_default(self, scenario):
        platform, provider, _, _, _, _ = scenario
        ads = platform.inventory.ads_owned_by(provider.account.account_id)
        assert all(ad.bid_cap_cpm == 10.0 for ad in ads)
        assert platform.config.default_cpm * 5 == 10.0


class TestPaperOutcome:
    def test_both_authors_received_control(self, scenario):
        platform, _, _, pack, profiled, unprofiled = scenario
        for user in (profiled, unprofiled):
            profile = TreadClient(user.user_id, platform, pack).sync()
            assert profile.control_received

    def test_profiled_author_received_eleven_attribute_treads(self,
                                                              scenario):
        platform, _, _, pack, profiled, _ = scenario
        profile = TreadClient(profiled.user_id, platform, pack).sync()
        assert profile.set_attributes == set(VALIDATION_ATTR_IDS)
        assert len(profile.set_attributes) == 11

    def test_revealed_categories_match_paper_list(self, scenario):
        """net worth, purchase behaviour, job role, home type, auto."""
        platform, _, _, pack, profiled, _ = scenario
        profile = TreadClient(profiled.user_id, platform, pack).sync()
        names = {platform.catalog.get(a).name
                 for a in profile.set_attributes}
        assert any("Net worth" in n for n in names)
        assert any("restaurants" in n for n in names)
        assert any("Buys:" in n for n in names)
        assert any("Job role" in n for n in names)
        assert any("Home type" in n for n in names)
        assert any("Likely to purchase" in n for n in names)

    def test_unprofiled_author_received_only_control(self, scenario):
        platform, _, _, pack, _, unprofiled = scenario
        profile = TreadClient(unprofiled.user_id, platform, pack).sync()
        assert profile.set_attributes == set()
        assert profile.total_facts == 0
        assert profile.control_received

    def test_status_quo_reveals_none_of_it(self, scenario):
        """Ad preferences + explanations: zero partner attributes."""
        from repro.baselines.platform_transparency import status_quo_view
        platform, _, _, _, profiled, _ = scenario
        view = status_quo_view(platform, profiled.user_id)
        assert view.revealed_attributes.isdisjoint(VALIDATION_ATTR_IDS)


class TestCostOutcome:
    def test_effective_price_below_cap(self, scenario):
        """Second-price auction: paying at most $10 CPM, typically less."""
        platform, provider, _, _, _, _ = scenario
        invoice = platform.invoice(provider.account.account_id)
        assert invoice.impressions == 13  # 11 + 2 controls
        assert invoice.total <= 13 * 0.01 + 1e-9

    def test_provider_learns_only_aggregates(self, scenario):
        platform, provider, _, _, profiled, _ = scenario
        counts = provider.aggregate_attribute_counts()
        for attr_id in VALIDATION_ATTR_IDS:
            assert counts[attr_id] == 1
        # a count of 1 still never names the user
        reports = provider.performance_reports()
        blob = str(reports)
        assert profiled.user_id not in blob
