"""Failure-injection tests: where the mechanism degrades, and how.

The paper's analysis assumes campaigns complete. These tests pin down the
honest failure modes of the reproduction — partial delivery creating
false negatives, lost auctions, broker data conflicts — so the degraded
behaviour is documented rather than accidental.
"""

import pytest

from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.workloads.competition import fixed_competition, zero_competition


def _priced_platform(name, competing_cpm=2.0):
    return AdPlatform(
        config=PlatformConfig(name=name),
        catalog=build_us_catalog(40, 25),
        competing_draw=fixed_competition(competing_cpm),
    )


class TestPartialDeliveryFalseNegatives:
    def test_budget_exhaustion_creates_false_negatives(self):
        """THE trap: budget dies after the control ad delivered, so the
        user sees 'control yes, attribute Treads missing' and would
        wrongly conclude the attributes are unset. The reproduction
        surfaces this via the provider-side budget state; a deployment
        must warn subscribers when a campaign did not complete."""
        platform = _priced_platform("partial")
        web = WebDirectory()
        # Affordability is checked against the BID CAP ($0.01/impression)
        # while charges accrue at the $2 market price ($0.002): delivery
        # proceeds until the balance dips below the cap -> 8 of the 11
        # wanted impressions land.
        provider = TransparencyProvider(platform, web, budget=0.025,
                                        bid_cap_cpm=10.0)
        attrs = platform.catalog.partner_attributes()[:10]
        user = platform.register_user()
        for attr in attrs:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep(attrs)
        provider.run_delivery()
        profile = TreadClient(user.user_id, platform,
                              provider.publish_decode_pack()).sync()
        # partial: some attributes revealed, most not, control maybe
        assert 0 < profile.total_facts < 10
        # the provider CAN observe the incompleteness:
        cheapest_bid = 10.0 / 1000.0
        assert not provider.account.can_afford(cheapest_bid)

    def test_zero_budget_is_total_silence(self):
        platform = _priced_platform("silent")
        web = WebDirectory()
        provider = TransparencyProvider(platform, web, budget=0.0001,
                                        bid_cap_cpm=10.0)
        attr = platform.catalog.partner_attributes()[0]
        user = platform.register_user()
        user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep([attr])
        provider.run_delivery()
        profile = TreadClient(user.user_id, platform,
                              provider.publish_decode_pack()).sync()
        # no control either -> the client correctly reports NOTHING,
        # rather than inventing false-or-missing conclusions
        assert not profile.control_received
        assert profile.total_facts == 0


class TestAuctionLosses:
    def test_underbid_campaign_reveals_nothing(self):
        platform = _priced_platform("underbid", competing_cpm=5.0)
        web = WebDirectory()
        provider = TransparencyProvider(platform, web, budget=10.0,
                                        bid_cap_cpm=2.0)  # below market
        attr = platform.catalog.partner_attributes()[0]
        user = platform.register_user()
        user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep([attr])
        platform.run_delivery(slots_per_user=20)
        profile = TreadClient(user.user_id, platform,
                              provider.publish_decode_pack()).sync()
        assert profile.total_facts == 0
        assert not profile.control_received
        assert provider.total_spend() == 0.0


class TestBrokerDataConflicts:
    def test_conflicting_broker_values_last_writer_wins(self):
        """Two brokers disagree on a multi attribute; ingest order decides
        (documented platform behaviour, matching how real joins clobber)."""
        platform = AdPlatform(
            config=PlatformConfig(name="conflict"),
            catalog=build_us_catalog(40, 25),
            competing_draw=zero_competition(),
        )
        # give one partner attribute multi semantics via a platform multi
        multi = platform.catalog.multi_attributes()[0]
        user = platform.register_user()
        platform.users.attach_pii(user.user_id, "email", "x@y.z")
        user.set_attribute(multi, multi.values[0])
        # a later assignment overwrites
        user.set_attribute(multi, multi.values[1])
        assert user.attribute_value(multi.attr_id) == multi.values[1]

    def test_duplicate_broker_records_idempotent(self):
        platform = AdPlatform(
            config=PlatformConfig(name="dup"),
            catalog=build_us_catalog(40, 25),
            competing_draw=zero_competition(),
        )
        attr = platform.catalog.partner_attributes()[0]
        user = platform.register_user()
        platform.users.attach_pii(user.user_id, "email", "x@y.z")
        broker = platform.brokers.broker("Acxiom")
        for record_id in ("r1", "r2"):
            broker.add_record(record_id, [("email", "x@y.z")],
                              [(attr.attr_id, None)])
        platform.ingest_brokers()
        assert user.has_attribute(attr.attr_id)
        assert len(user.binary_attrs) == 1


class TestRecoveryAcrossDays:
    def test_scheduler_recovers_lost_auctions_next_day(self):
        """Slots lost to competition one day get retried on later days —
        the paced runner converges where single-shot delivery would not."""
        import random

        from repro.core.scheduler import PacedCampaignRunner
        from repro.workloads.browsing import BrowsingModel

        rng = random.Random(3)

        def flaky_draw():
            # market price spikes above the bid cap 70% of the time
            return 0.02 if rng.random() < 0.7 else 0.001

        platform = AdPlatform(
            config=PlatformConfig(name="flaky"),
            catalog=build_us_catalog(40, 25),
            competing_draw=flaky_draw,
        )
        web = WebDirectory()
        provider = TransparencyProvider(platform, web, budget=50.0,
                                        bid_cap_cpm=10.0)
        attrs = platform.catalog.partner_attributes()[:5]
        user = platform.register_user()
        for attr in attrs:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep(attrs)
        runner = PacedCampaignRunner(
            provider, browsing_model=BrowsingModel(mean_slots=15.0),
            patience=3,
        )
        result = runner.run(max_days=40)
        assert result.total_impressions == 6  # 5 attrs + control
        profile = TreadClient(user.user_id, platform,
                              provider.publish_decode_pack()).sync()
        assert profile.total_facts == 5
        assert profile.control_received
