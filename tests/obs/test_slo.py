"""Tests for SLO parsing, evaluation, and burn-rate tracking."""

from __future__ import annotations

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.names import LATENCY_BUCKETS
from repro.obs.slo import (
    AVAILABILITY,
    AVAILABILITY_GAUGE,
    BURN_RATE_GAUGE,
    LATENCY,
    burn_rate,
    evaluate_report,
    parse_slo,
)
from repro.obs.timeseries import MetricSample, TimeSeriesBuffer


class _FakeTally:
    def __init__(self, submitted: int, served: int):
        self.submitted = submitted
        self.served = served


class _FakeReport:
    """Duck-typed stand-in for LoadReport: latency + tally."""

    def __init__(self, submitted: int, served: int,
                 latencies=()):
        self.tally = _FakeTally(submitted, served)
        self.latency = Histogram("loadgen.request_latency_s",
                                 buckets=LATENCY_BUCKETS)
        for value in latencies:
            self.latency.observe(value)


class TestParse:
    def test_full_spec(self):
        spec = parse_slo("p99=5ms,p50=500us,availability=99.9%")
        kinds = [o.kind for o in spec.objectives]
        assert kinds == [LATENCY, LATENCY, AVAILABILITY]
        p99, p50, avail = spec.objectives
        assert p99.quantile == pytest.approx(0.99)
        assert p99.threshold == pytest.approx(0.005)
        assert p50.threshold == pytest.approx(0.0005)
        assert avail.threshold == pytest.approx(0.999)
        assert spec.availability_target == pytest.approx(0.999)

    def test_bare_number_is_seconds(self):
        spec = parse_slo("p95=0.25")
        assert spec.objectives[0].threshold == pytest.approx(0.25)

    def test_availability_fraction_and_bare_percent(self):
        assert parse_slo("availability=0.99").objectives[0] \
            .threshold == pytest.approx(0.99)
        # A bare number above 1 is clearly a percentage.
        assert parse_slo("availability=99").objectives[0] \
            .threshold == pytest.approx(0.99)

    def test_describe_round_trips_spelling(self):
        spec = parse_slo("p99=5ms,availability=99%")
        assert spec.describe() == "p99 <= 5ms, availability >= 99%"

    @pytest.mark.parametrize("bad", [
        "", " , ", "bogus", "p99", "p99=xyz", "p0=1ms", "p100=1ms",
        "availability=0", "availability=200%", "latency=5ms",
        "p99=5ms,p99=6ms",
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)


class TestEvaluate:
    def test_all_objectives_met(self):
        report = _FakeReport(100, 100, latencies=[0.001] * 100)
        evaluation = evaluate_report(
            report, parse_slo("p99=50ms,availability=99%"))
        assert evaluation.ok
        assert evaluation.resolved == 100
        assert not evaluation.violations

    def test_latency_violation(self):
        report = _FakeReport(100, 100, latencies=[0.1] * 100)
        evaluation = evaluate_report(report, parse_slo("p99=1ms"))
        assert not evaluation.ok
        result = evaluation.violations[0]
        assert result.objective.kind == LATENCY
        assert "VIOLATED" in result.describe()

    def test_availability_counts_unserved_as_error_budget(self):
        # 90 served of 100 submitted: shed/timeout/error all burn.
        report = _FakeReport(100, 90, latencies=[0.001] * 90)
        evaluation = evaluate_report(
            report, parse_slo("availability=95%"))
        assert not evaluation.ok
        assert evaluation.results[0].observed == pytest.approx(0.90)

    def test_zero_resolved_fails_everything(self):
        report = _FakeReport(0, 0)
        evaluation = evaluate_report(
            report, parse_slo("p99=1s,availability=1%"))
        assert not evaluation.ok
        assert len(evaluation.violations) == 2

    def test_summary_shape(self):
        report = _FakeReport(10, 10, latencies=[0.001] * 10)
        summary = evaluate_report(
            report, parse_slo("p99=1s")).summary()
        assert summary["ok"] is True
        assert summary["resolved"] == 10
        assert summary["objectives"][0]["objective"] == "p99=1s"
        assert summary["objectives"][0]["ok"] is True

    def test_publishes_gauges_to_registry(self):
        reg = MetricsRegistry("slo-test")
        report = _FakeReport(100, 95, latencies=[0.001] * 95)
        evaluate_report(report, parse_slo("availability=99%"),
                        registry=reg)
        assert reg.value(AVAILABILITY_GAUGE) == pytest.approx(0.95)
        # 5% errors against a 1% budget: burning 5x.
        assert reg.value(BURN_RATE_GAUGE) == pytest.approx(5.0)

    def test_perfect_target_with_errors_burns_infinitely(self):
        reg = MetricsRegistry("slo-inf")
        report = _FakeReport(10, 9, latencies=[0.001] * 9)
        evaluate_report(report, parse_slo("availability=100%"),
                        registry=reg)
        assert reg.value(BURN_RATE_GAUGE) == float("inf")


class TestBurnRate:
    @staticmethod
    def _buffer(*rows):
        buf = TimeSeriesBuffer()
        for t_s, submitted, served in rows:
            buf.append(MetricSample(t_s=t_s, scalars={
                "serve.requests_submitted": float(submitted),
                "serve.requests_served": float(served),
            }))
        return buf

    def test_on_budget_is_one(self):
        # 100 offered, 99 served against a 99% target: burn 1.0.
        buf = self._buffer((0.0, 0, 0), (1.0, 100, 99))
        assert burn_rate(buf, parse_slo("availability=99%")) \
            == pytest.approx(1.0)

    def test_burning_hot(self):
        buf = self._buffer((0.0, 0, 0), (1.0, 100, 90))
        assert burn_rate(buf, parse_slo("availability=99%")) \
            == pytest.approx(10.0)

    def test_no_availability_objective_is_zero(self):
        buf = self._buffer((0.0, 0, 0), (1.0, 100, 50))
        assert burn_rate(buf, parse_slo("p99=5ms")) == 0.0

    def test_no_traffic_is_zero(self):
        buf = self._buffer((0.0, 50, 50), (1.0, 50, 50))
        assert burn_rate(buf, parse_slo("availability=99%")) == 0.0
