"""Tests for the bounded telemetry time series."""

from __future__ import annotations

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.timeseries import (
    MetricSample,
    TimeSeriesBuffer,
    histogram_delta,
    sample_registry,
)


def _sample(t_s: float, **scalars: float) -> MetricSample:
    return MetricSample(t_s=t_s, scalars=dict(scalars))


class TestSampleRegistry:
    def test_scalars_and_histograms_captured(self):
        reg = MetricsRegistry("ts-test")
        reg.counter("serve.requests_served").inc(7)
        reg.gauge("serve.queue_depth").set(3)
        hist = reg.histogram("serve.request_latency_s",
                             buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        sample = sample_registry(reg, t_s=1.0)
        assert sample.scalar("serve.requests_served") == 7.0
        assert sample.scalar("serve.queue_depth") == 3.0
        # Histogram counts double as scalars under the same name.
        assert sample.scalar("serve.request_latency_s") == 2.0
        assert sample.histograms["serve.request_latency_s"].count == 2

    def test_histograms_are_deep_copies(self):
        reg = MetricsRegistry("ts-copy")
        hist = reg.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        sample = sample_registry(reg, t_s=0.0)
        hist.observe(0.5)
        assert sample.histograms["h"].count == 1
        assert hist.count == 2

    def test_extra_scalars_and_histograms(self):
        reg = MetricsRegistry("ts-extra")
        live = Histogram("serve.shard0.latency_s", buckets=(1.0,))
        live.observe(0.25)
        sample = sample_registry(
            reg, t_s=2.0,
            extra_scalars={"serve.shard0.queue_depth": 4.0},
            extra_histograms={"serve.shard0.latency_s": live},
        )
        assert sample.scalar("serve.shard0.queue_depth") == 4.0
        assert sample.scalar("serve.shard0.latency_s") == 1.0
        live.observe(0.25)
        assert sample.histograms["serve.shard0.latency_s"].count == 1

    def test_missing_scalar_defaults(self):
        assert _sample(0.0).scalar("absent") == 0.0
        assert _sample(0.0).scalar("absent", default=-1.0) == -1.0


class TestHistogramDelta:
    def test_subtracts_cumulative_snapshots(self):
        earlier = Histogram("h", buckets=(1.0, 2.0))
        earlier.observe(0.5)
        later = Histogram("h", buckets=(1.0, 2.0))
        later.observe(0.5)
        later.observe(1.5)
        later.observe(5.0)
        delta = histogram_delta(later, earlier)
        assert delta.count == 2
        assert delta.sum == pytest.approx(6.5)

    def test_none_earlier_returns_copy(self):
        later = Histogram("h", buckets=(1.0,))
        later.observe(0.5)
        delta = histogram_delta(later, None)
        assert delta.count == 1
        later.observe(0.5)
        assert delta.count == 1

    def test_bucket_mismatch_returns_later_copy(self):
        earlier = Histogram("h", buckets=(1.0,))
        earlier.observe(0.5)
        later = Histogram("h", buckets=(2.0,))
        later.observe(0.5)
        assert histogram_delta(later, earlier).count == 1

    def test_backwards_counts_clamp_to_zero(self):
        earlier = Histogram("h", buckets=(1.0,))
        earlier.observe(0.5)
        earlier.observe(0.5)
        later = Histogram("h", buckets=(1.0,))
        later.observe(0.5)
        delta = histogram_delta(later, earlier)
        assert delta.count == 0
        assert delta.sum == 0.0


class TestTimeSeriesBuffer:
    def test_capacity_bound(self):
        buf = TimeSeriesBuffer(capacity=3)
        for t in range(6):
            buf.append(_sample(float(t)))
        assert len(buf) == 3
        assert buf.appended == 6
        assert [s.t_s for s in buf.samples()] == [3.0, 4.0, 5.0]

    def test_age_bound_keeps_at_least_the_latest(self):
        buf = TimeSeriesBuffer(capacity=100, max_age_s=1.0)
        buf.append(_sample(0.0))
        buf.append(_sample(0.5))
        buf.append(_sample(10.0))
        assert [s.t_s for s in buf.samples()] == [10.0]

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesBuffer(capacity=1)
        with pytest.raises(ValueError):
            TimeSeriesBuffer(max_age_s=0.0)

    def test_window_picks_earliest_inside_horizon(self):
        buf = TimeSeriesBuffer()
        for t in (0.0, 1.0, 2.0, 3.0):
            buf.append(_sample(t))
        earlier, latest = buf.window(1.5)
        assert latest.t_s == 3.0
        assert earlier.t_s == 2.0
        earlier, latest = buf.window(None)
        assert (earlier.t_s, latest.t_s) == (0.0, 3.0)

    def test_window_on_empty_and_single(self):
        buf = TimeSeriesBuffer()
        assert buf.window() == (None, None)
        buf.append(_sample(1.0))
        earlier, latest = buf.window()
        assert earlier is None
        assert latest.t_s == 1.0

    def test_rate_and_delta(self):
        buf = TimeSeriesBuffer()
        buf.append(_sample(0.0, served=100.0))
        buf.append(_sample(2.0, served=150.0))
        assert buf.delta("served") == 50.0
        assert buf.rate("served") == pytest.approx(25.0)
        # Counter reset clamps at zero rather than going negative.
        buf.append(_sample(3.0, served=10.0))
        assert buf.delta("served", window_s=1.5) == 0.0

    def test_rate_needs_two_samples(self):
        buf = TimeSeriesBuffer()
        assert buf.rate("anything") == 0.0
        buf.append(_sample(1.0, served=5.0))
        assert buf.rate("served") == 0.0

    def test_histogram_window(self):
        buf = TimeSeriesBuffer()
        h1 = Histogram("lat", buckets=(1.0,))
        h1.observe(0.5)
        buf.append(MetricSample(t_s=0.0, scalars={},
                                histograms={"lat": h1}))
        h2 = Histogram("lat", buckets=(1.0,))
        h2.observe(0.5)
        h2.observe(0.7)
        h2.observe(0.9)
        buf.append(MetricSample(t_s=1.0, scalars={},
                                histograms={"lat": h2}))
        windowed = buf.histogram_window("lat")
        assert windowed.count == 2
        assert buf.histogram_window("absent") is None
