"""End-to-end: instrumented layers record into a swapped registry,
and record *nothing* under the no-op registry."""

import pytest

from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.obs import events as obs_events
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    use_registry,
)
from repro.obs.tracing import Tracer, use_tracer


def _run_scenario(platform, web):
    """A small end-to-end sweep touching every instrumented layer."""
    provider = TransparencyProvider(platform, web, budget=100.0)
    attrs = platform.catalog.partner_attributes()[:3]
    user = platform.register_user()
    for attr in attrs:
        user.set_attribute(attr)
    provider.optin.via_page_like(user.user_id)
    provider.launch_attribute_sweep(attrs)
    provider.run_delivery()
    client = TreadClient(user.user_id, platform,
                         provider.publish_decode_pack())
    client.sync()
    return provider


class TestEnabledRegistry:
    def test_scenario_populates_every_layer(self, platform_factory, web):
        reg = MetricsRegistry("itest")
        with use_registry(reg):
            # The platform must be built inside the swap: delivery and
            # billing resolve their instruments at construction time.
            platform = platform_factory()
            _run_scenario(platform, web)
        assert reg.value("delivery.slots_served") > 0
        assert reg.value("delivery.impressions_delivered") == 4
        assert reg.value("delivery.match_cache_hits") > 0
        assert reg.value("delivery.match_cache_misses") > 0
        assert reg.value("auction.contenders") > 0
        assert reg.value("auction.slots_won") == 4
        assert reg.value("targeting.specs_compiled") > 0
        assert reg.value("platform.ads_submitted") == 4
        assert reg.value("platform.users_registered") == 1
        assert reg.value("billing.impressions_charged") == 4
        assert reg.value("provider.treads_launched") == 4
        assert reg.value("provider.decode_packs_published") == 1
        assert reg.value("client.syncs") == 1
        assert reg.value("client.treads_decoded") == 4

    def test_events_flow_during_scenario(self, platform_factory, web):
        reg = MetricsRegistry("itest-events")
        with use_registry(reg), obs_events.bus().capture() as captured:
            platform = platform_factory()
            _run_scenario(platform, web)
        kinds = {event.kind for event in captured}
        assert "impression_delivered" in kinds
        assert "ad_submitted" in kinds
        assert "treads_launched" in kinds

    def test_spans_nest_under_the_run(self, platform_factory, web):
        trc = Tracer()
        with use_tracer(trc):
            platform = platform_factory()
            _run_scenario(platform, web)
        names = {span.name for span in trc.spans}
        assert "provider.launch" in names
        assert "serve_slot" in names
        assert "client.sync" in names
        run_ids = {span.span_id for span in trc.spans
                   if span.name.startswith("delivery.run_")}
        for span in trc.spans:
            if span.name == "serve_slot":
                assert span.parent_id in run_ids
        assert trc.open_depth == 0


class TestNoopRegistry:
    def test_scenario_records_nothing(self, platform_factory, web):
        with use_registry(NULL_REGISTRY):
            platform = platform_factory()
            provider = _run_scenario(platform, web)
        # The scenario itself still works end to end...
        assert provider.total_impressions() == 4
        # ...but no instrument was interned and nothing accumulated.
        assert NULL_REGISTRY.instruments() == {}
        assert NULL_REGISTRY.value("delivery.slots_served") == 0

    def test_no_spans_without_a_tracer(self, platform_factory, web):
        from repro.obs.tracing import tracer
        with use_registry(NULL_REGISTRY):
            platform = platform_factory()
            _run_scenario(platform, web)
        assert tracer().enabled is False
        assert tracer().to_jsonl() == ""


@pytest.fixture
def platform_factory(small_catalog):
    from repro.platform.platform import AdPlatform, PlatformConfig
    from repro.workloads.competition import zero_competition

    def build():
        return AdPlatform(
            config=PlatformConfig(name="obs-itest"),
            catalog=small_catalog,
            competing_draw=zero_competition(),
        )

    return build
