"""Tests for span tracing: nesting, timing, JSONL round-trip."""

import io

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    load_jsonl_spans,
    tracer,
    use_tracer,
)


class TestSpans:
    def test_nesting_records_parent_ids(self):
        trc = Tracer()
        with trc.span("outer") as outer:
            with trc.span("inner") as inner:
                assert trc.open_depth == 2
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert trc.open_depth == 0

    def test_children_finish_before_parents(self):
        trc = Tracer()
        with trc.span("outer"):
            with trc.span("inner"):
                pass
        assert [s.name for s in trc.spans] == ["inner", "outer"]

    def test_siblings_share_a_parent(self):
        trc = Tracer()
        with trc.span("parent") as parent:
            with trc.span("a") as first:
                pass
            with trc.span("b") as second:
                pass
        assert first.parent_id == second.parent_id == parent.span_id

    def test_durations_are_nonnegative_and_nested(self):
        trc = Tracer()
        with trc.span("outer") as outer:
            with trc.span("inner") as inner:
                pass
        assert inner.duration_s >= 0
        assert outer.duration_s >= inner.duration_s
        assert inner.start_s >= outer.start_s

    def test_open_span_duration_raises(self):
        trc = Tracer()
        with trc.span("open") as span:
            with pytest.raises(ValueError):
                _ = span.duration_s

    def test_span_closed_even_on_exception(self):
        trc = Tracer()
        with pytest.raises(RuntimeError):
            with trc.span("doomed"):
                raise RuntimeError("boom")
        assert trc.open_depth == 0
        assert trc.find("doomed")[0].finished

    def test_attrs_recorded(self):
        trc = Tracer()
        with trc.span("s", user_id="u-1", n=3):
            pass
        assert trc.find("s")[0].attrs == {"user_id": "u-1", "n": 3}


class TestJsonl:
    def test_round_trip(self):
        trc = Tracer()
        with trc.span("outer", run=1):
            with trc.span("inner"):
                pass
        loaded = load_jsonl_spans(trc.to_jsonl())
        assert [(s.name, s.span_id, s.parent_id) for s in loaded] == \
            [(s.name, s.span_id, s.parent_id) for s in trc.spans]
        assert loaded[1].attrs == {"run": 1}
        assert loaded[0].duration_s == pytest.approx(
            trc.spans[0].duration_s)

    def test_write_jsonl_returns_count(self):
        trc = Tracer()
        with trc.span("only"):
            pass
        buffer = io.StringIO()
        assert trc.write_jsonl(buffer) == 1
        assert load_jsonl_spans(buffer.getvalue())[0].name == "only"

    def test_non_span_records_rejected(self):
        with pytest.raises(ValueError):
            load_jsonl_spans('{"kind": "counter"}')

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            load_jsonl_spans('{"kind": "span", "schema": 99}')


class TestNullTracer:
    def test_default_process_tracer_is_null(self):
        assert tracer().enabled is False

    def test_null_span_is_a_usable_context(self):
        null = NullTracer()
        with null.span("anything", user_id="u-1"):
            pass
        assert null.spans == ()
        assert null.to_jsonl() == ""

    def test_use_tracer_scopes_the_swap(self):
        real = Tracer()
        with use_tracer(real) as active:
            assert active is real
            assert tracer() is real
        assert tracer() is NULL_TRACER
