"""Tests for span tracing: nesting, timing, JSONL round-trip,
thread safety, and the cross-process context surface."""

import io
import json
import threading

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    SpanContext,
    Tracer,
    chrome_trace_json,
    load_jsonl_spans,
    tracer,
    use_tracer,
)


class TestSpans:
    def test_nesting_records_parent_ids(self):
        trc = Tracer()
        with trc.span("outer") as outer:
            with trc.span("inner") as inner:
                assert trc.open_depth == 2
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert trc.open_depth == 0

    def test_children_finish_before_parents(self):
        trc = Tracer()
        with trc.span("outer"):
            with trc.span("inner"):
                pass
        assert [s.name for s in trc.spans] == ["inner", "outer"]

    def test_siblings_share_a_parent(self):
        trc = Tracer()
        with trc.span("parent") as parent:
            with trc.span("a") as first:
                pass
            with trc.span("b") as second:
                pass
        assert first.parent_id == second.parent_id == parent.span_id

    def test_durations_are_nonnegative_and_nested(self):
        trc = Tracer()
        with trc.span("outer") as outer:
            with trc.span("inner") as inner:
                pass
        assert inner.duration_s >= 0
        assert outer.duration_s >= inner.duration_s
        assert inner.start_s >= outer.start_s

    def test_open_span_duration_raises(self):
        trc = Tracer()
        with trc.span("open") as span:
            with pytest.raises(ValueError):
                _ = span.duration_s

    def test_span_closed_even_on_exception(self):
        trc = Tracer()
        with pytest.raises(RuntimeError):
            with trc.span("doomed"):
                raise RuntimeError("boom")
        assert trc.open_depth == 0
        assert trc.find("doomed")[0].finished

    def test_attrs_recorded(self):
        trc = Tracer()
        with trc.span("s", user_id="u-1", n=3):
            pass
        assert trc.find("s")[0].attrs == {"user_id": "u-1", "n": 3}


class TestThreadSafety:
    """One shared Tracer, many threads: stacks must stay per-thread.

    The span stack is thread-local — a span opened on thread A must
    never become the parent of a span opened on thread B, and ids must
    never collide under concurrent allocation.
    """

    def test_concurrent_spans_never_cross_link(self):
        trc = Tracer()
        threads = 8
        per_thread = 50
        barrier = threading.Barrier(threads)
        errors = []

        def work(tid: int) -> None:
            barrier.wait()
            try:
                for i in range(per_thread):
                    with trc.span("outer", tid=tid, i=i) as outer:
                        with trc.span("inner", tid=tid, i=i) as inner:
                            pass
                    if inner.parent_id != outer.span_id:
                        errors.append((tid, i, "cross-linked parent"))
                    if outer.parent_id is not None:
                        errors.append((tid, i, "outer got a parent"))
            except BaseException as exc:  # pragma: no cover
                errors.append((tid, exc))

        workers = [threading.Thread(target=work, args=(t,))
                   for t in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert errors == []
        assert trc.open_depth == 0
        spans = trc.spans
        assert len(spans) == threads * per_thread * 2
        ids = [span.span_id for span in spans]
        assert len(set(ids)) == len(ids), "span id collision"
        # Every inner span's parent is an outer span from the SAME
        # thread's iteration (attrs carry tid/i to check against).
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.name != "inner":
                continue
            parent = by_id[span.parent_id]
            assert parent.attrs["tid"] == span.attrs["tid"]
            assert parent.attrs["i"] == span.attrs["i"]

    def test_concurrent_trace_ids_unique(self):
        trc = Tracer()
        out = []
        lock = threading.Lock()

        def work() -> None:
            local = [trc.new_trace_id() for _ in range(200)]
            with lock:
                out.extend(local)

        workers = [threading.Thread(target=work) for _ in range(6)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert len(set(out)) == len(out)


class TestContexts:
    def test_begin_finish_off_stack(self):
        trc = Tracer()
        span = trc.begin_span("request", trace_id=trc.new_trace_id(),
                              user_id="u-1")
        assert trc.open_depth == 0  # off-stack: no thread-local push
        trc.finish_span(span, status="served")
        assert span.finished
        assert span.attrs["status"] == "served"
        with pytest.raises(ValueError):
            trc.finish_span(span)

    def test_explicit_parent_context_links_across_stacks(self):
        trc = Tracer()
        parent = trc.begin_span("request", trace_id=trc.new_trace_id())
        child = trc.begin_span("engine", parent_context=parent.context)
        trc.finish_span(child)
        trc.finish_span(parent)
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id

    def test_record_span_backfills_a_window(self):
        trc = Tracer()
        parent = trc.begin_span("request", trace_id=trc.new_trace_id())
        span = trc.record_span("queue_wait", 1.0, 1.5,
                               parent_context=parent.context)
        trc.finish_span(parent)
        assert span.finished
        assert span.duration_s == pytest.approx(0.5)
        assert span.parent_id == parent.span_id

    def test_span_ids_carry_origin(self):
        parent_trc = Tracer()
        worker_trc = Tracer(epoch=parent_trc.epoch_raw, origin=3)
        with worker_trc.span("remote"):
            pass
        span = worker_trc.spans[0]
        assert span.origin == 3
        assert span.span_id >> 40 == 3
        with parent_trc.span("local"):
            pass
        assert parent_trc.spans[0].span_id >> 40 == 0


class TestAdopt:
    def test_adopt_merges_worker_spans(self):
        parent = Tracer()
        worker = Tracer(epoch=parent.epoch_raw, origin=1)
        with parent.span("request") as request:
            with worker.span("engine",
                             parent_context=request.context):
                pass
        records = [span.record() for span in worker.drain()]
        assert list(worker.spans) == []
        assert parent.adopt(records) == 1
        merged = {span.name: span for span in parent.spans}
        assert merged["engine"].parent_id == request.span_id
        assert merged["engine"].origin == 1

    def test_adopt_accepts_span_objects(self):
        parent = Tracer()
        worker = Tracer(epoch=parent.epoch_raw, origin=2)
        with worker.span("w"):
            pass
        assert parent.adopt(worker.drain()) == 1
        assert parent.find("w")[0].origin == 2

    def test_adopt_rejects_open_spans(self):
        parent = Tracer()
        worker = Tracer(origin=1)
        open_span = worker.begin_span("open")
        with pytest.raises(ValueError):
            parent.adopt([open_span])

    def test_drain_is_take_all(self):
        trc = Tracer()
        with trc.span("a"):
            pass
        drained = trc.drain()
        assert [span.name for span in drained] == ["a"]
        assert trc.drain() == []
        assert list(trc.spans) == []


class TestChromeTrace:
    def test_chrome_events_resolve_parents(self):
        trc = Tracer()
        with trc.span("outer"):
            with trc.span("inner"):
                pass
        events = json.loads(trc.to_chrome_trace())
        assert len(events) == 2
        by_name = {event["name"]: event for event in events}
        assert all(event["ph"] == "X" for event in events)
        assert by_name["inner"]["args"]["parent_id"] \
            == by_name["outer"]["args"]["span_id"]
        assert by_name["inner"]["ts"] >= by_name["outer"]["ts"]
        assert by_name["inner"]["dur"] <= by_name["outer"]["dur"]

    def test_write_chrome_trace_returns_count(self):
        trc = Tracer()
        with trc.span("only"):
            pass
        buffer = io.StringIO()
        assert trc.write_chrome_trace(buffer) == 1
        assert json.loads(buffer.getvalue())[0]["name"] == "only"

    def test_origin_maps_to_pid(self):
        parent = Tracer()
        worker = Tracer(epoch=parent.epoch_raw, origin=2)
        with worker.span("remote"):
            pass
        parent.adopt(worker.drain())
        with parent.span("local"):
            pass
        events = json.loads(chrome_trace_json(parent.spans))
        pids = {event["name"]: event["pid"] for event in events}
        assert pids == {"remote": 2, "local": 0}


class TestJsonl:
    def test_round_trip(self):
        trc = Tracer()
        with trc.span("outer", run=1):
            with trc.span("inner"):
                pass
        loaded = load_jsonl_spans(trc.to_jsonl())
        assert [(s.name, s.span_id, s.parent_id) for s in loaded] == \
            [(s.name, s.span_id, s.parent_id) for s in trc.spans]
        assert loaded[1].attrs == {"run": 1}
        assert loaded[0].duration_s == pytest.approx(
            trc.spans[0].duration_s)

    def test_write_jsonl_returns_count(self):
        trc = Tracer()
        with trc.span("only"):
            pass
        buffer = io.StringIO()
        assert trc.write_jsonl(buffer) == 1
        assert load_jsonl_spans(buffer.getvalue())[0].name == "only"

    def test_non_span_records_rejected(self):
        with pytest.raises(ValueError):
            load_jsonl_spans('{"kind": "counter"}')

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            load_jsonl_spans('{"kind": "span", "schema": 99}')


class TestNullTracer:
    def test_default_process_tracer_is_null(self):
        assert tracer().enabled is False

    def test_null_span_is_a_usable_context(self):
        null = NullTracer()
        with null.span("anything", user_id="u-1"):
            pass
        assert null.spans == ()
        assert null.to_jsonl() == ""

    def test_use_tracer_scopes_the_swap(self):
        real = Tracer()
        with use_tracer(real) as active:
            assert active is real
            assert tracer() is real
        assert tracer() is NULL_TRACER
