"""Fails on stray ``print(`` calls in library code.

Library modules must report through ``repro.*`` loggers or the obs
layer; ``print`` is reserved for the modules whose *job* is terminal
output (the CLI and the table renderer). The check is AST-based so
strings, comments, and docstrings containing "print(" don't trip it.
"""

import ast
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Modules whose purpose is terminal output.
EXEMPT = {
    SRC_ROOT / "cli.py",
    SRC_ROOT / "analysis" / "tables.py",
}


def _print_calls(path):
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def test_no_stray_print_calls_in_library_code():
    offenders = {}
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path in EXEMPT:
            continue
        lines = _print_calls(path)
        if lines:
            offenders[str(path.relative_to(SRC_ROOT))] = lines
    assert not offenders, (
        "print() in library code (use logging or repro.obs): "
        f"{offenders}"
    )


def test_exempt_modules_exist():
    # If an exempted module is renamed, drop it from the list rather
    # than silently exempting nothing.
    for path in EXEMPT:
        assert path.exists(), f"stale exemption: {path}"
