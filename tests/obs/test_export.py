"""Tests for the Prometheus/JSONL/table exporters."""

import json

from repro.obs.export import (
    escape_help,
    prometheus_name,
    snapshot_dict,
    to_jsonl,
    to_prometheus,
    to_table,
)
from repro.obs.metrics import MetricsRegistry


def _populated_registry():
    reg = MetricsRegistry("export-test")
    reg.counter("delivery.slots_served").inc(7)
    reg.gauge("pool.level").set(2.5)
    hist = reg.histogram("auction.contenders")
    hist.observe(0)
    hist.observe(3)
    return reg


class TestPrometheusNames:
    def test_dots_become_underscores(self):
        assert prometheus_name("delivery.slots_served") == \
            "delivery_slots_served"

    def test_arbitrary_bad_chars_rewritten(self):
        assert prometheus_name("a-b c/d") == "a_b_c_d"

    def test_leading_digit_gets_prefixed(self):
        name = prometheus_name("2fast")
        assert not name[0].isdigit()

    def test_help_escaping(self):
        assert escape_help("back\\slash\nnewline") == \
            "back\\\\slash\\nnewline"


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        text = to_prometheus(_populated_registry())
        assert "# TYPE delivery_slots_served counter" in text
        assert "delivery_slots_served 7" in text
        assert "# TYPE pool_level gauge" in text
        assert "pool_level 2.5" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = to_prometheus(_populated_registry())
        assert 'auction_contenders_bucket{le="0"} 1' in text
        assert 'auction_contenders_bucket{le="5"} 2' in text
        assert 'auction_contenders_bucket{le="+Inf"} 2' in text
        assert "auction_contenders_sum 3" in text
        assert "auction_contenders_count 2" in text

    def test_help_lines_escaped(self):
        reg = MetricsRegistry()
        reg.counter("weird", help="line one\nline \\ two").inc()
        text = to_prometheus(reg)
        assert "# HELP weird line one\\nline \\\\ two" in text
        assert "\nline one" not in text  # no raw newline mid-help

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestJsonlAndTable:
    def test_jsonl_is_strict_json_per_line(self):
        lines = to_jsonl(_populated_registry()).splitlines()
        records = [json.loads(line) for line in lines]
        byname = {r["name"]: r for r in records}
        assert byname["delivery.slots_served"]["value"] == 7
        assert byname["auction.contenders"]["buckets"][-1][0] == "+Inf"

    def test_table_lists_every_instrument(self):
        table = to_table(_populated_registry(), title="t")
        assert "delivery.slots_served" in table
        assert "histogram" in table
        assert "n=2" in table

    def test_table_empty_registry(self):
        assert "no metrics recorded" in to_table(MetricsRegistry())


class TestConcurrentMergeSnapshot:
    """Exporters racing registry.merge_state must never tear.

    The telemetry plane merges worker states on one thread while
    ``--metrics-out`` renders Prometheus text and ``repro top`` takes
    dict snapshots on others. Structural registry ops are serialized
    on the registry lock and histogram merges replace the bucket list
    in a single assignment, so every read must see internally-ordered,
    monotonically advancing values — never a half-merged bucket list.
    """

    BUCKETS = (0.001, 0.01, 0.1, 1.0)
    ROUNDS = 150

    def _worker_state(self):
        reg = MetricsRegistry("worker")
        reg.counter("serve.requests_served").inc(3)
        hist = reg.histogram("serve.service_time_s",
                             buckets=self.BUCKETS)
        for value in (0.0005, 0.005, 0.05, 0.5, 2.0):
            hist.observe(value)
        return reg.to_state()

    def test_snapshots_stay_monotone_under_merge(self):
        import threading

        target = MetricsRegistry("parent")
        target.counter("serve.requests_served")
        target.histogram("serve.service_time_s", buckets=self.BUCKETS)
        state = self._worker_state()
        start = threading.Barrier(3)
        done = threading.Event()
        errors = []

        def merger():
            start.wait()
            for _ in range(self.ROUNDS):
                target.merge_state(state)
            done.set()

        def dict_reader():
            start.wait()
            last_value = 0.0
            last_buckets = None
            while not done.is_set():
                snap = snapshot_dict(target)
                value = snap["serve.requests_served"]["value"]
                if value < last_value:
                    errors.append(("counter went backwards",
                                   value, last_value))
                if value % 3 != 0:
                    errors.append(("torn counter", value))
                last_value = value
                pairs = snap["serve.service_time_s"]["buckets"]
                counts = [count for _, count in pairs]
                if counts != sorted(counts):
                    errors.append(("non-cumulative buckets", counts))
                if last_buckets is not None and any(
                        now < before for now, before
                        in zip(counts, last_buckets)):
                    errors.append(("bucket went backwards",
                                   counts, last_buckets))
                last_buckets = counts

        def prometheus_reader():
            start.wait()
            last_count = 0
            while not done.is_set():
                text = to_prometheus(target)
                for line in text.splitlines():
                    if line.startswith("serve_service_time_s_count "):
                        count = int(line.split()[-1])
                        if count < last_count:
                            errors.append(("prom count backwards",
                                           count, last_count))
                        last_count = count

        threads = [threading.Thread(target=fn) for fn in
                   (merger, dict_reader, prometheus_reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        final = snapshot_dict(target)
        assert final["serve.requests_served"]["value"] \
            == 3 * self.ROUNDS
        assert final["serve.service_time_s"]["count"] \
            == 5 * self.ROUNDS
        # +Inf cumulative bucket equals the total observation count.
        assert final["serve.service_time_s"]["buckets"][-1][1] \
            == 5 * self.ROUNDS
