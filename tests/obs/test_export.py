"""Tests for the Prometheus/JSONL/table exporters."""

import json

from repro.obs.export import (
    escape_help,
    prometheus_name,
    to_jsonl,
    to_prometheus,
    to_table,
)
from repro.obs.metrics import MetricsRegistry


def _populated_registry():
    reg = MetricsRegistry("export-test")
    reg.counter("delivery.slots_served").inc(7)
    reg.gauge("pool.level").set(2.5)
    hist = reg.histogram("auction.contenders")
    hist.observe(0)
    hist.observe(3)
    return reg


class TestPrometheusNames:
    def test_dots_become_underscores(self):
        assert prometheus_name("delivery.slots_served") == \
            "delivery_slots_served"

    def test_arbitrary_bad_chars_rewritten(self):
        assert prometheus_name("a-b c/d") == "a_b_c_d"

    def test_leading_digit_gets_prefixed(self):
        name = prometheus_name("2fast")
        assert not name[0].isdigit()

    def test_help_escaping(self):
        assert escape_help("back\\slash\nnewline") == \
            "back\\\\slash\\nnewline"


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        text = to_prometheus(_populated_registry())
        assert "# TYPE delivery_slots_served counter" in text
        assert "delivery_slots_served 7" in text
        assert "# TYPE pool_level gauge" in text
        assert "pool_level 2.5" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = to_prometheus(_populated_registry())
        assert 'auction_contenders_bucket{le="0"} 1' in text
        assert 'auction_contenders_bucket{le="5"} 2' in text
        assert 'auction_contenders_bucket{le="+Inf"} 2' in text
        assert "auction_contenders_sum 3" in text
        assert "auction_contenders_count 2" in text

    def test_help_lines_escaped(self):
        reg = MetricsRegistry()
        reg.counter("weird", help="line one\nline \\ two").inc()
        text = to_prometheus(reg)
        assert "# HELP weird line one\\nline \\\\ two" in text
        assert "\nline one" not in text  # no raw newline mid-help

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestJsonlAndTable:
    def test_jsonl_is_strict_json_per_line(self):
        lines = to_jsonl(_populated_registry()).splitlines()
        records = [json.loads(line) for line in lines]
        byname = {r["name"]: r for r in records}
        assert byname["delivery.slots_served"]["value"] == 7
        assert byname["auction.contenders"]["buckets"][-1][0] == "+Inf"

    def test_table_lists_every_instrument(self):
        table = to_table(_populated_registry(), title="t")
        assert "delivery.slots_served" in table
        assert "histogram" in table
        assert "n=2" in table

    def test_table_empty_registry(self):
        assert "no metrics recorded" in to_table(MetricsRegistry())
