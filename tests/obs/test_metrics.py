"""Tests for counters, gauges, histograms, and the registry."""

import pytest

from repro.obs import metrics as metrics_mod
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    bind,
    registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_snapshot(self):
        counter = Counter("c")
        counter.inc(2)
        assert counter.snapshot() == {"kind": "counter", "name": "c",
                                      "value": 2}


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == pytest.approx(11.5)

    def test_can_go_negative(self):
        gauge = Gauge("g")
        gauge.dec(3.0)
        assert gauge.value == pytest.approx(-3.0)


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        hist = Histogram("h", buckets=(1, 5, 10))
        for value in (0, 1, 1.5, 5, 7, 10, 11):
            hist.observe(value)
        # value == bound lands in that bound's bucket (inclusive upper).
        assert hist.bucket_counts() == (
            (1, 2),                 # 0, 1
            (5, 4),                 # + 1.5, 5 (cumulative)
            (10, 6),                # + 7, 10
            (float("inf"), 7),      # + 11
        )

    def test_count_sum_mean(self):
        hist = Histogram("h", buckets=(10,))
        hist.observe(2)
        hist.observe(4)
        assert hist.count == 2
        assert hist.sum == pytest.approx(6.0)
        assert hist.mean == pytest.approx(3.0)

    def test_mean_of_empty_is_zero(self):
        assert Histogram("h", buckets=(1,)).mean == 0.0

    def test_snapshot_serializes_inf_as_string(self):
        hist = Histogram("h", buckets=(1,))
        hist.observe(99)
        snapshot = hist.snapshot()
        assert snapshot["buckets"][-1] == ["+Inf", 1]

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(5, 1))

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1, 1, 5))

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_interns_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_help_and_buckets_default_from_catalog(self):
        reg = MetricsRegistry()
        counter = reg.counter("delivery.slots_served")
        assert "slot" in counter.help.lower()
        hist = reg.histogram("auction.clearing_price_cpm")
        assert hist.buckets[0] == pytest.approx(0.5)

    def test_value_accessor(self):
        reg = MetricsRegistry()
        assert reg.value("never.touched") == 0
        reg.counter("c").inc(3)
        reg.histogram("h", buckets=(1,)).observe(0)
        assert reg.value("c") == 3
        assert reg.value("h") == 1  # histogram -> observation count

    def test_reset_drops_instruments(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.names() == ()
        assert reg.value("c") == 0

    def test_snapshot_is_sorted_and_json_shaped(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        assert list(reg.snapshot()) == ["a", "b"]


class TestGlobals:
    def test_use_registry_scopes_the_swap(self):
        scoped = MetricsRegistry("scoped")
        before = registry()
        with use_registry(scoped):
            assert registry() is scoped
        assert registry() is before

    def test_set_registry_works_before_first_registry_call(self, monkeypatch):
        # Regression: set_registry used to call registry() while holding
        # the (non-reentrant) module lock, deadlocking any process whose
        # first metrics call was a swap — exactly what the CLI does.
        monkeypatch.setattr(metrics_mod, "_current", None)
        previous = set_registry(MetricsRegistry("fresh"))
        assert previous is not None
        set_registry(previous)

    def test_bind_rebinds_on_registry_swap(self):
        resolve = bind(lambda reg: reg.counter("bound.counter"))
        first_reg = MetricsRegistry("one")
        second_reg = MetricsRegistry("two")
        with use_registry(first_reg):
            resolve().inc()
            assert resolve() is first_reg.counter("bound.counter")
            with use_registry(second_reg):
                resolve().inc(2)
        assert first_reg.value("bound.counter") == 1
        assert second_reg.value("bound.counter") == 2


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_returns_shared_inert_instruments(self):
        reg = NullRegistry()
        counter = reg.counter("a")
        assert counter is reg.counter("b")
        counter.inc(100)
        assert counter.value == 0
        gauge = reg.gauge("g")
        gauge.set(5)
        gauge.inc()
        gauge.dec()
        assert gauge.value == 0
        hist = reg.histogram("h")
        hist.observe(3)
        assert hist.count == 0

    def test_nothing_interned(self):
        reg = NullRegistry()
        reg.counter("a")
        reg.histogram("h")
        assert reg.instruments() == {}


class TestMergeAndState:
    """Cross-process merge: two registries' worth of samples must look
    exactly like one registry that saw everything (the process-backend
    merge-back contract)."""

    def test_counter_state_round_trip_and_merge(self):
        counter = Counter("c", help="h")
        counter.inc(3)
        clone = Counter.from_state(counter.to_state())
        assert clone.value == 3 and clone.name == "c"
        clone.merge(counter)
        assert clone.value == 6

    def test_counter_merge_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Counter("a").merge(Counter("b"))

    def test_gauge_merge_sums(self):
        left, right = Gauge("g"), Gauge("g")
        left.set(2.5)
        right.set(-1.0)
        left.merge(right)
        assert left.value == pytest.approx(1.5)
        assert Gauge.from_state(left.to_state()).value \
            == pytest.approx(1.5)

    def test_histogram_state_round_trip(self):
        hist = Histogram("h", buckets=(1, 5, 10))
        for value in (0.5, 3, 7, 42):
            hist.observe(value)
        clone = Histogram.from_state(hist.to_state())
        assert clone.bucket_counts() == hist.bucket_counts()
        assert clone.sum == pytest.approx(hist.sum)
        assert clone.count == hist.count

    def test_histogram_merge_bounds_mismatch_rejected(self):
        with pytest.raises(ValueError, match="bucket"):
            Histogram("h", buckets=(1, 2)).merge(
                Histogram("h", buckets=(1, 3)))

    def test_merged_quantiles_match_single_registry(self):
        """The satellite acceptance: split a sample stream across two
        histograms, merge, and every quantile agrees exactly with one
        histogram that observed the whole stream."""
        buckets = (0.001, 0.01, 0.1, 1.0, 10.0)
        whole = Histogram("h", buckets=buckets)
        left = Histogram("h", buckets=buckets)
        right = Histogram("h", buckets=buckets)
        samples = [0.0005 * i for i in range(1, 200)] \
            + [0.5, 2.0, 20.0, 0.009]
        for index, value in enumerate(samples):
            whole.observe(value)
            (left if index % 2 else right).observe(value)
        left.merge(right)
        for q in (0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert left.quantile(q) == pytest.approx(whole.quantile(q)), q
        assert left.percentiles() == whole.percentiles()
        assert left.count == whole.count
        assert left.sum == pytest.approx(whole.sum)

    def test_empty_bucket_interpolation_returns_lower_edge(self):
        """A rank landing on a cumulative boundary of an empty bucket
        resolves to the bucket's lower edge — the value that a merged
        and an unmerged histogram agree on."""
        hist = Histogram("h", buckets=(1, 2, 4))
        hist.observe(0.5)
        hist.observe(0.5)
        # rank 2 of 2 sits at the top of bucket (<=1); quantile beyond
        # must not wander into the empty (1, 2] bucket's upper bound
        assert hist.quantile(1.0) == pytest.approx(1.0)

    def test_registry_state_round_trip_and_merge(self):
        parent = MetricsRegistry("parent")
        parent.counter("hits").inc(2)
        parent.histogram("lat", buckets=(1, 10)).observe(0.5)
        worker = MetricsRegistry("worker")
        worker.counter("hits").inc(3)
        worker.counter("worker_only").inc(1)
        worker.histogram("lat", buckets=(1, 10)).observe(5.0)

        # pre-resolved references must see merged totals afterwards
        hits = parent.counter("hits")
        parent.merge_state(worker.to_state())
        assert hits.value == 5
        assert parent.counter("worker_only").value == 1
        merged_lat = parent.histogram("lat", buckets=(1, 10))
        assert merged_lat.count == 2
        assert merged_lat.sum == pytest.approx(5.5)

    def test_null_registry_state_is_inert(self):
        assert NULL_REGISTRY.to_state() == []
        NULL_REGISTRY.merge_state(
            [{"kind": "counter", "name": "x", "help": "", "value": 9}])
        assert NULL_REGISTRY.counter("x").value == 0
