"""Tests for the typed event bus and its JSONL sink."""

import io

import pytest

from repro.obs.events import (
    AdSubmitted,
    EventBus,
    ImpressionDelivered,
    JsonlSink,
    TreadsLaunched,
    bus,
    event_from_record,
    load_jsonl_events,
)


def _impression(seq=0):
    return ImpressionDelivered(ad_id="ad-1", account_id="acct-1",
                               user_id="u-1", price=0.002,
                               impression_seq=seq)


class TestEventBus:
    def test_inactive_without_subscribers(self):
        fresh = EventBus()
        assert not fresh.active
        fresh.emit(_impression())  # no-op, must not raise

    def test_capture_collects_in_order(self):
        fresh = EventBus()
        with fresh.capture() as collected:
            assert fresh.active
            fresh.emit(_impression(0))
            fresh.emit(_impression(1))
        assert [e.impression_seq for e in collected] == [0, 1]
        assert not fresh.active

    def test_unsubscribe_detaches(self):
        fresh = EventBus()
        seen = []
        unsubscribe = fresh.subscribe(seen.append)
        fresh.emit(_impression())
        unsubscribe()
        unsubscribe()  # idempotent
        fresh.emit(_impression())
        assert len(seen) == 1

    def test_subscriber_exceptions_propagate(self):
        fresh = EventBus()

        def broken(event):
            raise RuntimeError("sink bug")

        fresh.subscribe(broken)
        with pytest.raises(RuntimeError):
            fresh.emit(_impression())

    def test_process_bus_is_shared(self):
        assert bus() is bus()


class TestRecords:
    def test_record_puts_kind_first(self):
        record = _impression().record()
        assert list(record)[0] == "kind"
        assert record["kind"] == "impression_delivered"
        assert record["price"] == pytest.approx(0.002)

    def test_round_trip_typed(self):
        original = AdSubmitted(ad_id="ad-2", account_id="acct-9",
                               approved=False, review_note="too narrow")
        assert event_from_record(original.record()) == original

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_record({"kind": "mystery"})

    def test_unexpected_fields_rejected(self):
        record = _impression().record()
        record["bogus"] = 1
        with pytest.raises(ValueError):
            event_from_record(record)


class TestJsonlSink:
    def test_writes_one_line_per_event_and_loads_back(self):
        fresh = EventBus()
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        fresh.subscribe(sink)
        events = [_impression(0),
                  TreadsLaunched(provider="tp", launched=3, rejected=1)]
        for event in events:
            fresh.emit(event)
        assert sink.records_written == 2
        assert load_jsonl_events(buffer.getvalue()) == events

    def test_load_skips_blank_lines(self):
        assert load_jsonl_events("\n\n") == []

    def test_load_accepts_line_iterables(self):
        lines = [_impression(0).record(), _impression(1).record()]
        import json
        text_lines = [json.dumps(record) for record in lines]
        events = load_jsonl_events(text_lines)
        assert [e.impression_seq for e in events] == [0, 1]
