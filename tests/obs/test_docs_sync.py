"""Diffs docs/observability.md against the repro.obs.names catalog.

Both directions: every registered metric/span/event must appear in the
doc, and every instrument-shaped name the doc mentions must exist in
the catalog — adding an instrument without documenting it (or
documenting a phantom) fails here.
"""

import re
from pathlib import Path

import pytest

from repro.obs import names

DOC_PATH = Path(__file__).resolve().parents[2] / "docs" / "observability.md"

#: Backticked tokens that look like instrument names: dotted lowercase
#: words (metrics, spans) — `serve_slot`-style spans and event kinds are
#: matched separately because bare snake_case collides with field names.
_DOTTED = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)`")


@pytest.fixture(scope="module")
def doc_text():
    return DOC_PATH.read_text(encoding="utf-8")


def _section(doc_text, heading):
    """The doc text between ``heading`` and the next same-level heading."""
    pattern = re.compile(
        rf"^## {re.escape(heading)}$(.*?)(?=^## |\Z)",
        re.MULTILINE | re.DOTALL,
    )
    match = pattern.search(doc_text)
    assert match, f"docs/observability.md lost its '{heading}' section"
    return match.group(1)


class TestMetricCatalog:
    def test_every_metric_documented(self, doc_text):
        section = _section(doc_text, "Metric catalog")
        missing = [name for name in names.METRICS
                   if f"`{name}`" not in section]
        assert not missing, f"metrics missing from docs: {missing}"

    def test_no_phantom_metrics_documented(self, doc_text):
        section = _section(doc_text, "Metric catalog")
        documented = set(_DOTTED.findall(section))
        phantoms = documented - set(names.METRICS)
        assert not phantoms, f"docs mention unknown metrics: {phantoms}"

    def test_documented_kinds_match_catalog(self, doc_text):
        section = _section(doc_text, "Metric catalog")
        for line in section.splitlines():
            match = re.match(r"\| `([a-z0-9_.]+)` \| (\w+) \|", line)
            if not match:
                continue
            name, kind = match.groups()
            assert names.METRICS[name].kind == kind, (
                f"{name} documented as {kind}, "
                f"registered as {names.METRICS[name].kind}"
            )


class TestSpanAndEventCatalogs:
    def test_every_span_documented(self, doc_text):
        section = _section(doc_text, "Span names")
        missing = [name for name in names.SPANS
                   if f"`{name}`" not in section]
        assert not missing, f"spans missing from docs: {missing}"

    def test_no_phantom_spans_documented(self, doc_text):
        section = _section(doc_text, "Span names")
        documented = {m.group(1) for m in
                      re.finditer(r"^\| `([a-z0-9_.]+)` \|", section,
                                  re.MULTILINE)}
        phantoms = documented - set(names.SPANS)
        assert not phantoms, f"docs mention unknown spans: {phantoms}"

    def test_every_event_documented(self, doc_text):
        section = _section(doc_text, "Event schema")
        missing = [kind for kind in names.EVENTS
                   if f"`{kind}`" not in section]
        assert not missing, f"event kinds missing from docs: {missing}"

    def test_no_phantom_events_documented(self, doc_text):
        section = _section(doc_text, "Event schema")
        documented = {m.group(1) for m in
                      re.finditer(r"^\| `([a-z0-9_.]+)` \|", section,
                                  re.MULTILINE)}
        phantoms = documented - set(names.EVENTS)
        assert not phantoms, f"docs mention unknown events: {phantoms}"

    def test_documented_event_fields_match_dataclasses(self, doc_text):
        from dataclasses import fields
        from repro.obs import events as events_mod

        by_kind = {cls.kind: cls for cls in
                   (events_mod.ImpressionDelivered,
                    events_mod.ClickRecorded,
                    events_mod.AdSubmitted,
                    events_mod.BudgetExhausted,
                    events_mod.TreadsLaunched)}
        section = _section(doc_text, "Event schema")
        rows = re.findall(r"^\| `([a-z0-9_]+)` \| [^|]+ \| ([^|]+) \|",
                          section, re.MULTILINE)
        assert rows, "event schema table not found"
        for kind, field_cell in rows:
            documented = {f.strip() for f in field_cell.split(",")}
            actual = {f.name for f in fields(by_kind[kind])}
            assert documented == actual, (
                f"{kind}: docs say {sorted(documented)}, "
                f"dataclass has {sorted(actual)}"
            )

    def test_catalog_tables_reference_each_other(self, doc_text):
        # The doc must name its enforcement test and the names module,
        # so a reader knows where the authoritative tables live.
        assert "repro.obs.names" in doc_text
        assert "test_docs_sync" in doc_text


class TestServingInstrumentation:
    """The serving runtime's instruments exist and are documented.

    The generic both-direction diffs above already catch drift; these
    pins name the serve instruments explicitly so a refactor that drops
    them (or renames the layer prefix) fails with a message that says
    which serving signal vanished.
    """

    SERVE_METRICS = (
        "serve.requests_submitted",
        "serve.requests_served",
        "serve.requests_shed",
        "serve.requests_timeout",
        "serve.requests_errored",
        "serve.errors",
        "serve.queue_depth",
        "serve.batch_size",
        "serve.request_latency_s",
        "serve.service_time_s",
        "serve.ipc_batches",
        "serve.ipc_bytes",
        "serve.workers_lost",
        "serve.telemetry_polls",
        "serve.trace_spans_merged",
        "slo.availability",
        "slo.error_budget_burn_rate",
    )
    SERVE_SPANS = ("serve.batch", "serve.request", "serve.queue_wait",
                   "serve.engine", "serve.ipc_roundtrip", "loadgen.run")

    def test_serve_metrics_registered(self):
        for name in self.SERVE_METRICS:
            assert name in names.METRICS, f"{name} left the catalog"

    def test_serve_metrics_documented(self, doc_text):
        section = _section(doc_text, "Metric catalog")
        for name in self.SERVE_METRICS:
            assert f"`{name}`" in section, f"{name} undocumented"

    def test_serve_spans_registered_and_documented(self, doc_text):
        section = _section(doc_text, "Span names")
        for name in self.SERVE_SPANS:
            assert name in names.SPANS, f"{name} left the catalog"
            assert f"`{name}`" in section, f"{name} undocumented"

    def test_latency_histogram_uses_latency_buckets(self):
        spec = names.METRICS["serve.request_latency_s"]
        assert spec.kind == names.HISTOGRAM
        assert spec.buckets == names.LATENCY_BUCKETS
