"""Legacy setup shim: the offline environment lacks the `wheel` package,
so `pip install -e .` (PEP 660) cannot build an editable wheel; `python
setup.py develop` installs the same editable package without it."""
from setuptools import setup

setup()
