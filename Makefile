PYTHON ?= python
export PYTHONPATH := src:.

.PHONY: test equivalence bench bench-perf check service-smoke scale-smoke

## Tier-1 test suite (the gate every change must keep green).
test:
	$(PYTHON) -m pytest -q

## Compiled-vs-interpreted targeting equivalence suite on its own —
## the property the delivery fast path rests on.
equivalence:
	$(PYTHON) -m pytest -q tests/platform/test_targeting_compile.py

## Paper-reproduction benchmarks, single run each (fast, shape checks).
bench:
	$(PYTHON) -m pytest -q benchmarks/ --benchmark-disable

## Delivery throughput tiers with real pytest-benchmark statistics.
bench-perf:
	$(PYTHON) -m pytest benchmarks/bench_perf_throughput.py --benchmark-only

## The columnar scale tiers: the 100k-user scalar sweep and the 100k
## batch-sweep comparison (byte-identical reports, >=3x impressions/s)
## CI runs under a hard RSS ceiling; the full million-user proof is
## REPRO_SCALE_1M=1 (numbers land in perf_trajectory.json scale_1m).
scale-smoke:
	$(PYTHON) -m pytest -q \
		benchmarks/bench_scale_1m.py::test_scale_100k_columnar_sweep \
		benchmarks/bench_scale_1m.py::test_scale_100k_batch_sweep \
		--benchmark-disable
	$(PYTHON) -m repro populate --users 100000 --columnar --stats

## The gateway kill drill + 60s HTTP/in-process equivalence soak, both
## serving backends (what the CI service-smoke matrix runs).
service-smoke:
	$(PYTHON) benchmarks/service_smoke.py --backend thread \
		--out-dir service-smoke-thread
	$(PYTHON) benchmarks/service_smoke.py --backend process \
		--out-dir service-smoke-process

## What CI runs: tier-1 suite (includes the equivalence tests) plus the
## benchmark shape checks.
check: test bench
