"""E8 — deployment cost vs correlation-based auditing (section 5).

Paper: prior outside-in systems (XRay, Sunlight, AdReveal) "can also be
challenging to deploy, requiring either a large diverse population to
sign-up ... or a large number of (fake) control accounts ... to make
statistically significant claims. Our approach is complementary ... and
potentially simpler to deploy". Measured: the correlation auditor's
inference accuracy for 30 single-attribute mystery ads as the number of
control accounts grows, against Treads' exact reveal with ONE advertiser
account and zero fake accounts.
"""

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.baselines.correlation import CorrelationAuditor
from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.platform.ads import AdCreative
from repro.platform.web import WebDirectory

CONTROL_COUNTS = (1, 3, 10, 30, 100)
HYPOTHESIS_POOL_SIZE = 30


def run_correlation_curve():
    rows = []
    for control_count in CONTROL_COUNTS:
        platform = make_platform(name=f"e8c{control_count}",
                                 partner_count=25)
        pool = [a for a in platform.catalog.platform_attributes()
                if a.is_binary][:HYPOTHESIS_POOL_SIZE]
        auditor = CorrelationAuditor(platform, seed=41)
        auditor.create_controls(control_count, pool, set_probability=0.5)
        account = platform.create_ad_account("mystery", budget=500.0)
        campaign = platform.create_campaign(account.account_id, "m")
        truth = {}
        for attr in pool:
            ad = platform.submit_ad(
                account.account_id, campaign.campaign_id,
                AdCreative("h", f"promo {attr.attr_id}"),
                f"attr:{attr.attr_id} & country:US", bid_cap_cpm=10.0,
            )
            truth[ad.ad_id] = attr.attr_id
        platform.run_until_saturated()
        rows.append((
            control_count,
            auditor.accuracy(truth, pool),
            auditor.significant_inferences(truth, pool, alpha=0.05),
        ))
    return rows


def run_treads_reference():
    """Treads on the same task shape: 1 provider account, exact reveals."""
    platform = make_platform(name="e8t", partner_count=25)
    web = WebDirectory()
    pool = [a for a in platform.catalog.platform_attributes()
            if a.is_binary][:HYPOTHESIS_POOL_SIZE]
    provider = TransparencyProvider(platform, web, budget=200.0)
    users = []
    for index in range(20):
        user = platform.register_user()
        for attr in pool[index % 3::3]:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        users.append(user)
    provider.launch_attribute_sweep(pool)
    provider.run_delivery()
    pack = provider.publish_decode_pack()
    exact = all(
        TreadClient(u.user_id, platform, pack).sync().set_attributes
        == {a.attr_id for a in pool if u.has_attribute(a.attr_id)}
        for u in users
    )
    return exact


def test_e8_baselines(benchmark):
    curve = benchmark.pedantic(run_correlation_curve, rounds=1,
                               iterations=1)
    treads_exact = run_treads_reference()
    rows = [
        (f"correlation, {k} control accounts", "noisy below significance",
         f"{accuracy:.0%} of 30 ads", f"{significant}/30")
        for k, accuracy, significant in curve
    ]
    rows.append(("Treads, 1 advertiser account, 0 fakes",
                 "exact by construction",
                 "100% exact" if treads_exact else "NOT exact",
                 "(not statistical)"))
    record_table(format_table(
        ("mechanism / deployment cost", "paper (sec 5)", "correct",
         "significant at a=0.05"),
        rows,
        title="E8  Inference accuracy vs deployment cost: correlation "
              "auditing vs Treads",
    ))
    accuracies = {k: accuracy for k, accuracy, _ in curve}
    significants = {k: significant for k, _, significant in curve}
    # the Sunlight point: with 1-3 fakes NOTHING reaches significance
    assert significants[1] == 0
    assert significants[3] == 0
    assert significants[100] >= 25
    assert accuracies[1] < 0.75           # ambiguous at 1 account
    assert accuracies[100] >= accuracies[1]
    assert accuracies[100] >= 0.9         # converges with many accounts
    assert treads_exact
