"""E12 — transparency completeness: status quo vs Treads (sections 1-2).

Paper: the platform's own mechanisms "present an incomplete view of the
information being collected" — specifically, Facebook revealed NO
broker-sourced information and at most ONE targeting attribute per ad
explanation, while advertisers could target all 507 partner attributes.
Measured over a 200-user persona-mixed population: partner-attribute
completeness (revealed / truly-set) of the ad-preferences + explanations
baseline vs a Treads campaign, plus the broker-shutdown ablation (paper
footnote 2) showing Treads' reach disappears with the targeting surface.
"""

from benchmarks.conftest import make_platform, record_table
from repro.analysis.metrics import mechanism_completeness
from repro.analysis.tables import format_table
from repro.baselines.platform_transparency import status_quo_view
from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.platform.databroker import shutdown_partner_categories
from repro.platform.web import WebDirectory
from repro.workloads.personas import (
    AVERAGE_CONSUMER,
    ESTABLISHED_PROFESSIONAL,
    PRIVACY_MINIMALIST,
    RECENT_ARRIVAL_GRAD_STUDENT,
    RETIREE,
    YOUNG_PARENT,
)
from repro.workloads.population import (
    PopulationBuilder,
    ground_truth_partner_attrs,
)

USER_COUNT = 200


def run_completeness():
    platform = make_platform(name="e12", partner_count=120)
    web = WebDirectory()
    builder = PopulationBuilder(platform, seed=53)
    population = builder.spawn_mix(
        (ESTABLISHED_PROFESSIONAL, RECENT_ARRIVAL_GRAD_STUDENT,
         AVERAGE_CONSUMER, PRIVACY_MINIMALIST, RETIREE, YOUNG_PARENT),
        count=USER_COUNT,
    )
    builder.finalize()
    user_ids = [u.user_id for u in population]
    truth = ground_truth_partner_attrs(platform, user_ids)

    provider = TransparencyProvider(platform, web, budget=5000.0)
    for user in population:
        provider.optin.via_page_like(user.user_id)
    provider.launch_partner_sweep()
    provider.run_delivery(max_rounds=200)
    pack = provider.publish_decode_pack()

    treads_revealed = {
        user_id: TreadClient(user_id, platform, pack).sync().set_attributes
        for user_id in user_ids
    }
    status_quo_revealed = {
        user_id: status_quo_view(platform, user_id).revealed_attributes
        for user_id in user_ids
    }
    treads_score = mechanism_completeness(treads_revealed, truth)
    status_quo_score = mechanism_completeness(status_quo_revealed, truth)
    total_partner_facts = sum(len(a) for a in truth.values())

    # ablation: partner categories shut down BEFORE the campaign
    ablated_platform = make_platform(name="e12s", partner_count=120)
    ablated_web = WebDirectory()
    ablated_builder = PopulationBuilder(ablated_platform, seed=53)
    ablated_pop = ablated_builder.spawn(AVERAGE_CONSUMER, 50)
    ablated_builder.finalize()
    shutdown_partner_categories(
        ablated_platform.catalog, ablated_platform.users,
        ablated_platform.brokers,
    )
    ablated_provider = TransparencyProvider(ablated_platform, ablated_web,
                                            budget=500.0)
    for user in ablated_pop:
        ablated_provider.optin.via_page_like(user.user_id)
    ablated_report = ablated_provider.launch_partner_sweep()

    return (treads_score, status_quo_score, total_partner_facts,
            len(ablated_report.treads))


def test_e12_completeness(benchmark):
    (treads_score, status_quo_score, total_facts,
     ablated_ads) = benchmark.pedantic(run_completeness, rounds=1,
                                       iterations=1)
    record_table(format_table(
        ("quantity", "paper", "measured"),
        [
            ("partner facts held by platform (200 users)", "(population)",
             total_facts),
            ("status quo completeness (ad prefs + explanations)",
             "0% of partner data", f"{status_quo_score:.1%}"),
            ("Treads completeness", "all targetable attrs",
             f"{treads_score:.1%}"),
            ("sweep size after partner-category shutdown",
             "mechanism loses its targeting surface (fn 2)",
             f"{ablated_ads} ad(s) (control only)"),
        ],
        title="E12 Completeness: platform-driven transparency vs Treads",
    ))
    assert status_quo_score == 0.0
    assert treads_score == 1.0
    assert ablated_ads == 1
