"""Scale-out tier: the process backend's multi-core throughput claim.

The thread backend shards state, not CPU — every worker contends for
one GIL, so adding shards never raises aggregate delivery throughput.
The process backend moves each shard's engine into its own process;
with enough cores, 8 shards must deliver at least 3x the aggregate
throughput of 1 shard on the same saturation workload.

Measurement shape: a fixed request count pre-submitted as fast as the
admission plane accepts it (a saturation drive, not an open-loop
schedule — wall clock here measures the engines, not the arrival
process), throughput = served / wall. The 1-shard and 8-shard runs use
identically seeded worlds and identical request sequences.

The >=3x assertion is gated on visible cores: on a 1-2 core container
the workers time-share one CPU and the honest result is ~1x (plus IPC
overhead), which is recorded in the summary table either way. The
overload tier proves the other half of the design — shed load costs
the worker processes zero work, measured from the workers' own
merged ``delivery.slots_served`` counter.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import format_table
from repro.obs import metrics as _metrics
from repro.serve import (
    AdRequest,
    KeyedCompetition,
    RuntimeConfig,
    ServingRuntime,
)
from benchmarks.bench_perf_throughput import _serving_world

SCALEOUT_USERS = 200
SCALEOUT_ROUNDS = 8
SCALEOUT_SLOTS = 2
SCALEOUT_SHARD_CONFIGS = (1, 8)

#: Aggregate throughput per shard count, filled across the param runs.
_SCALEOUT_RESULTS: dict = {}


def _visible_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _saturation_drive(runtime, platform):
    """Submit a fixed request sequence as fast as admission accepts it
    and wait for every result; returns (served, wall_s)."""
    requests = [
        AdRequest(user_id=user_id, slots=SCALEOUT_SLOTS)
        for _ in range(SCALEOUT_ROUNDS)
        for user_id in sorted(platform.users.user_ids())
    ]
    start = time.perf_counter()
    results = runtime.serve_and_wait(requests, timeout=300.0)
    wall_s = time.perf_counter() - start
    served = sum(1 for result in results if result.ok)
    assert served == len(requests), "saturation drive must fully serve"
    return served, wall_s


@pytest.mark.parametrize("shards", SCALEOUT_SHARD_CONFIGS)
def test_serve_scaleout_process_throughput(benchmark, shards):
    """Aggregate delivery throughput, process backend, 1 vs 8 shards."""
    platform = _serving_world(f"scaleout{shards}", users=SCALEOUT_USERS)
    runtime = ServingRuntime(
        platform,
        RuntimeConfig(num_shards=shards, backend="process",
                      queue_capacity=8192, max_batch=64),
        competition=KeyedCompetition(seed=7),
    )

    def run():
        with runtime:
            return _saturation_drive(runtime, platform)

    served, wall_s = benchmark.pedantic(run, rounds=1, iterations=1)
    throughput = served / wall_s
    _SCALEOUT_RESULTS[shards] = throughput

    if len(_SCALEOUT_RESULTS) == len(SCALEOUT_SHARD_CONFIGS):
        base = _SCALEOUT_RESULTS[SCALEOUT_SHARD_CONFIGS[0]]
        top = _SCALEOUT_RESULTS[SCALEOUT_SHARD_CONFIGS[-1]]
        speedup = top / base
        cores = _visible_cores()
        rows = [
            (f"{n} shard proc(s)", f"{rate:.0f} req/s",
             f"{rate / base:.2f}x")
            for n, rate in sorted(_SCALEOUT_RESULTS.items())
        ]
        rows.append(("visible cores", str(cores), "-"))
        record_table(format_table(
            ("config", "aggregate throughput", "vs 1 shard"),
            rows,
            title=f"PERF — serve_scaleout: process backend, "
                  f"{SCALEOUT_USERS} users x {SCALEOUT_ROUNDS} rounds",
        ))
        if cores >= 4:
            assert speedup >= 3.0, (
                f"8-shard process backend must reach >=3x 1-shard "
                f"throughput on {cores} cores; got {speedup:.2f}x")


def test_serve_scaleout_overload_zero_worker_cost(benchmark):
    """Shed load never reaches a worker process.

    Admission without consumers: queues fill to capacity, the rest of
    the burst sheds at submit. Then workers spawn and drain. The
    workers' own merged ``delivery.slots_served`` counter must equal
    slots for exactly the *served* requests — the shed excess cost the
    subprocesses zero delivery work, and shed exactly the excess.
    """
    capacity = 64
    burst = 400
    registry = _metrics.MetricsRegistry("scaleout-overload")
    with _metrics.use_registry(registry):
        platform = _serving_world("scaleoutshed", users=SCALEOUT_USERS)
        runtime = ServingRuntime(
            platform,
            RuntimeConfig(num_shards=1, backend="process",
                          queue_capacity=capacity, max_batch=64),
            competition=KeyedCompetition(seed=7),
        )
        user_ids = sorted(platform.users.user_ids())
        requests = [
            AdRequest(user_id=user_ids[i % len(user_ids)], slots=1)
            for i in range(burst)
        ]

        def run():
            runtime.start(spawn_workers=False)
            futures = [runtime.submit(request) for request in requests]
            runtime.spawn_workers()
            results = [future.result(timeout=120.0)
                       for future in futures]
            runtime.stop()
            return results

        results = benchmark.pedantic(run, rounds=1, iterations=1)
    served = sum(1 for result in results if result.ok)
    shed = sum(1 for result in results
               if result.status.name == "SHED")
    assert served == capacity, "exactly the queue capacity is served"
    assert shed == burst - capacity, "exactly the excess is shed"
    # The workers' merged counter saw only the served slots: shed
    # requests never crossed the socket, let alone an engine.
    assert registry.counter("delivery.slots_served").value == served
    record_table(format_table(
        ("overload tier", "value"),
        [
            ("burst / capacity", f"{burst} / {capacity}"),
            ("served", served),
            ("shed (zero worker cost)", shed),
            ("worker slots_served", served),
        ],
        title="PERF — serve_scaleout: overload sheds at zero "
              "subprocess cost",
    ))
