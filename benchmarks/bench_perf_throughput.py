"""Performance benchmarks: simulator throughput on realistic shapes.

Unlike the E*/A* benches (which reproduce paper results and run their
scenario once), these measure raw component throughput with real
pytest-benchmark statistics — the numbers a user sizing a larger
simulation study cares about.
"""

import time

import pytest

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.platform.catalog import build_us_catalog
from repro.platform.web import WebDirectory
from repro.serve import (
    AdRequest,
    KeyedCompetition,
    LoadConfig,
    LoadGenerator,
    RuntimeConfig,
    ServingRuntime,
)
from repro.workloads.personas import AVERAGE_CONSUMER
from repro.workloads.population import PopulationBuilder


def test_perf_catalog_build(benchmark):
    """Full 1,121-attribute US catalog generation."""
    catalog = benchmark(build_us_catalog)
    assert len(catalog) == 1121


def test_perf_population_build(benchmark):
    """100 persona users incl. PII attachment and broker staging."""
    def build():
        platform = make_platform(name="perfpop", partner_count=120)
        builder = PopulationBuilder(platform, seed=1)
        builder.spawn(AVERAGE_CONSUMER, 100)
        builder.finalize()
        return platform

    platform = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(platform.users) == 100


def test_perf_sweep_launch(benchmark):
    """Rendering + review + submission of a 507-ad partner sweep."""
    def launch():
        platform = make_platform(name="perflaunch")
        web = WebDirectory()
        provider = TransparencyProvider(platform, web, budget=100.0)
        return provider.launch_partner_sweep()

    report = benchmark.pedantic(launch, rounds=3, iterations=1)
    assert len(report.treads) == 508


def test_perf_delivery_throughput(benchmark):
    """Saturating delivery: 50 users x (20 attrs + control) = 1,050
    impressions against a 21-ad campaign."""
    def run():
        platform = make_platform(name="perfdeliver", partner_count=25)
        web = WebDirectory()
        provider = TransparencyProvider(platform, web, budget=500.0)
        attrs = platform.catalog.partner_attributes()[:20]
        for _ in range(50):
            user = platform.register_user()
            for attr in attrs:
                user.set_attribute(attr)
            provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep(attrs)
        provider.run_delivery()
        return provider

    provider = benchmark.pedantic(run, rounds=3, iterations=1)
    assert provider.total_impressions() == 50 * 21


def test_perf_delivery_scale(benchmark):
    """Scale tier: 2,000 users x the full 508-ad partner sweep.

    Each user carries 10 rotating partner attributes, so saturation
    delivers exactly 2,000 x (10 matched Treads + 1 control) = 22,000
    impressions. Before the compiled-targeting + candidate-index fast
    path this shape took ~71 s (every slot interpreted all 508 specs);
    it must now land in single-digit seconds. Population setup happens
    outside the timed region; delivery mutates state, so one round.
    """
    platform = make_platform(name="perfscale")
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=5000.0)
    attrs = platform.catalog.partner_attributes()
    for i in range(2000):
        user = platform.register_user()
        for k in range(10):
            user.set_attribute(attrs[(i * 10 + k) % len(attrs)])
        provider.optin.via_page_like(user.user_id)
    provider.launch_partner_sweep()

    start = time.perf_counter()
    cpu_start = time.process_time()
    benchmark.pedantic(provider.run_delivery, rounds=1, iterations=1)
    cpu_elapsed = time.process_time() - cpu_start
    elapsed = time.perf_counter() - start

    # Deliver-iff-match invariant at scale: every user gets exactly
    # their 10 matched Treads plus the control ad, nothing else.
    assert provider.total_impressions() == 2000 * 11
    # stats is None under --benchmark-disable; fall back to wall clock.
    seconds = benchmark.stats["mean"] if benchmark.stats else elapsed
    record_table(format_table(
        ("tier", "seed (s)", "wall (s)", "cpu (s)", "speedup"),
        [
            ("50 users x 21 ads", "0.0745", "(see pytest-benchmark)",
             "-", "-"),
            ("2,000 users x 508 ads", "71.3", f"{seconds:.2f}",
             f"{cpu_elapsed:.2f}", f"{71.3 / seconds:.0f}x"),
        ],
        title="PERF — compiled targeting + candidate index delivery",
    ))
    assert seconds < 10.0, "scale tier must stay single-digit seconds"


def _serving_world(name: str, users: int = 300):
    """A populated platform with a launched sweep for the serve tiers."""
    platform = make_platform(name=name, partner_count=60)
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=5000.0)
    builder = PopulationBuilder(platform, seed=1)
    builder.spawn(AVERAGE_CONSUMER, users)
    builder.finalize()
    for user_id in platform.users.user_ids():
        provider.optin.via_page_like(user_id)
    provider.launch_partner_sweep()
    return platform


#: Shard-scaling results accumulated across the parametrized runs so
#: the summary table prints all configs side by side.
_SERVE_RESULTS: dict = {}

SERVE_RPS = 1500.0
SERVE_DURATION_S = 1.0
SERVE_SHARD_CONFIGS = (1, 4, 8)


@pytest.mark.parametrize("shards", SERVE_SHARD_CONFIGS)
def test_perf_serve_loadgen(benchmark, shards):
    """Serve tier: open-loop loadgen at a fixed RPS vs shard count.

    The offered load is identical for every shard count (same seed,
    same schedule), so the latency quantiles isolate what sharding
    buys. Wall clock is pinned by the open-loop duration; the numbers
    that matter are the p50/p95/p99 recorded in the summary table and
    ``perf_trajectory.json``.
    """
    platform = _serving_world(f"perfserve{shards}")
    runtime = ServingRuntime(
        platform,
        RuntimeConfig(num_shards=shards, queue_capacity=4096),
        competition=KeyedCompetition(seed=7),
    )
    generator = LoadGenerator(
        runtime, platform.users.user_ids(),
        LoadConfig(rps=SERVE_RPS, duration_s=SERVE_DURATION_S, seed=1),
    )

    def run():
        with runtime:
            return generator.run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.tally.errors == 0
    assert report.tally.served == report.offered, \
        "uncontended load must be fully served (nothing shed)"
    quantiles = report.percentiles()
    _SERVE_RESULTS[shards] = (report, quantiles)
    if len(_SERVE_RESULTS) == len(SERVE_SHARD_CONFIGS):
        rows = [
            (f"{n} shard(s)", result.offered,
             f"{result.achieved_rps:.0f}",
             f"{qs['p50'] * 1000:.2f}",
             f"{qs['p95'] * 1000:.2f}",
             f"{qs['p99'] * 1000:.2f}")
            for n, (result, qs) in sorted(_SERVE_RESULTS.items())
        ]
        record_table(format_table(
            ("config", "offered", "rps", "p50 ms", "p95 ms", "p99 ms"),
            rows,
            title=f"PERF — serve tier: {SERVE_RPS:.0f} rps open-loop, "
                  f"{SERVE_DURATION_S:.0f}s, 300 users",
        ))


def test_perf_serve_overload_sheds(benchmark):
    """Overload tier: a burst beyond queue capacity must shed, not queue.

    One shard, a 32-deep queue, and a 400-request pre-spawned burst:
    exactly ``queue_capacity`` requests are served, the rest are SHED
    at admission with zero work done — bounded queues are the proof
    that overload cannot grow latency without bound.
    """
    platform = _serving_world("perfserveovl", users=200)
    capacity = 32
    runtime = ServingRuntime(
        platform, RuntimeConfig(num_shards=1, queue_capacity=capacity)
    )
    user_ids = platform.users.user_ids()
    requests = [AdRequest(user_ids[i % len(user_ids)])
                for i in range(400)]

    def burst():
        runtime.start(spawn_workers=False)
        futures = [runtime.submit(request) for request in requests]
        runtime.spawn_workers()
        results = [future.result(timeout=30.0) for future in futures]
        runtime.stop()
        return results

    results = benchmark.pedantic(burst, rounds=1, iterations=1)
    shed = sum(1 for r in results if r.status.name == "SHED")
    served = sum(1 for r in results if r.ok)
    assert shed == len(requests) - capacity
    assert served == capacity
    assert all(r.latency_s == 0.0 for r in results
               if r.status.name == "SHED"), "shed must cost no work"
    record_table(format_table(
        ("outcome", "requests"),
        [("offered burst", len(requests)),
         (f"served (= queue capacity {capacity})", served),
         ("shed at admission", shed)],
        title="PERF — serve overload: bounded queue sheds the excess",
    ))


def test_perf_client_decode(benchmark):
    """Decoding a 21-Tread feed (codebook tokens) client-side."""
    platform = make_platform(name="perfdecode", partner_count=25)
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=100.0)
    attrs = platform.catalog.partner_attributes()[:20]
    user = platform.register_user()
    for attr in attrs:
        user.set_attribute(attr)
    provider.optin.via_page_like(user.user_id)
    provider.launch_attribute_sweep(attrs)
    provider.run_delivery()
    pack = provider.publish_decode_pack()

    def decode():
        return TreadClient(user.user_id, platform, pack).sync()

    profile = benchmark(decode)
    assert len(profile.set_attributes) == 20
