"""Performance benchmarks: simulator throughput on realistic shapes.

Unlike the E*/A* benches (which reproduce paper results and run their
scenario once), these measure raw component throughput with real
pytest-benchmark statistics — the numbers a user sizing a larger
simulation study cares about.
"""

import time

import pytest

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.platform.catalog import build_us_catalog
from repro.platform.web import WebDirectory
from repro.workloads.personas import AVERAGE_CONSUMER
from repro.workloads.population import PopulationBuilder


def test_perf_catalog_build(benchmark):
    """Full 1,121-attribute US catalog generation."""
    catalog = benchmark(build_us_catalog)
    assert len(catalog) == 1121


def test_perf_population_build(benchmark):
    """100 persona users incl. PII attachment and broker staging."""
    def build():
        platform = make_platform(name="perfpop", partner_count=120)
        builder = PopulationBuilder(platform, seed=1)
        builder.spawn(AVERAGE_CONSUMER, 100)
        builder.finalize()
        return platform

    platform = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(platform.users) == 100


def test_perf_sweep_launch(benchmark):
    """Rendering + review + submission of a 507-ad partner sweep."""
    def launch():
        platform = make_platform(name="perflaunch")
        web = WebDirectory()
        provider = TransparencyProvider(platform, web, budget=100.0)
        return provider.launch_partner_sweep()

    report = benchmark.pedantic(launch, rounds=3, iterations=1)
    assert len(report.treads) == 508


def test_perf_delivery_throughput(benchmark):
    """Saturating delivery: 50 users x (20 attrs + control) = 1,050
    impressions against a 21-ad campaign."""
    def run():
        platform = make_platform(name="perfdeliver", partner_count=25)
        web = WebDirectory()
        provider = TransparencyProvider(platform, web, budget=500.0)
        attrs = platform.catalog.partner_attributes()[:20]
        for _ in range(50):
            user = platform.register_user()
            for attr in attrs:
                user.set_attribute(attr)
            provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep(attrs)
        provider.run_delivery()
        return provider

    provider = benchmark.pedantic(run, rounds=3, iterations=1)
    assert provider.total_impressions() == 50 * 21


def test_perf_delivery_scale(benchmark):
    """Scale tier: 2,000 users x the full 508-ad partner sweep.

    Each user carries 10 rotating partner attributes, so saturation
    delivers exactly 2,000 x (10 matched Treads + 1 control) = 22,000
    impressions. Before the compiled-targeting + candidate-index fast
    path this shape took ~71 s (every slot interpreted all 508 specs);
    it must now land in single-digit seconds. Population setup happens
    outside the timed region; delivery mutates state, so one round.
    """
    platform = make_platform(name="perfscale")
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=5000.0)
    attrs = platform.catalog.partner_attributes()
    for i in range(2000):
        user = platform.register_user()
        for k in range(10):
            user.set_attribute(attrs[(i * 10 + k) % len(attrs)])
        provider.optin.via_page_like(user.user_id)
    provider.launch_partner_sweep()

    start = time.perf_counter()
    benchmark.pedantic(provider.run_delivery, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    # Deliver-iff-match invariant at scale: every user gets exactly
    # their 10 matched Treads plus the control ad, nothing else.
    assert provider.total_impressions() == 2000 * 11
    # stats is None under --benchmark-disable; fall back to wall clock.
    seconds = benchmark.stats["mean"] if benchmark.stats else elapsed
    record_table(format_table(
        ("tier", "seed (s)", "measured (s)", "speedup"),
        [
            ("50 users x 21 ads", "0.0745", "(see pytest-benchmark)", "-"),
            ("2,000 users x 508 ads", "71.3", f"{seconds:.2f}",
             f"{71.3 / seconds:.0f}x"),
        ],
        title="PERF — compiled targeting + candidate index delivery",
    ))
    assert seconds < 10.0, "scale tier must stay single-digit seconds"


def test_perf_client_decode(benchmark):
    """Decoding a 21-Tread feed (codebook tokens) client-side."""
    platform = make_platform(name="perfdecode", partner_count=25)
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=100.0)
    attrs = platform.catalog.partner_attributes()[:20]
    user = platform.register_user()
    for attr in attrs:
        user.set_attribute(attr)
    provider.optin.via_page_like(user.user_id)
    provider.launch_attribute_sweep(attrs)
    provider.run_delivery()
    pack = provider.publish_decode_pack()

    def decode():
        return TreadClient(user.user_id, platform, pack).sync()

    profile = benchmark(decode)
    assert len(profile.set_attributes) == 20
