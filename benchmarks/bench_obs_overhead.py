"""Observability overhead: instrumented delivery, enabled vs no-op.

Runs the small perf tier's delivery body under (a) a live
``MetricsRegistry`` and (b) the shared ``NULL_REGISTRY``, and reports
the ratio. The acceptance bound from the instrumentation work is that
no-op mode stays within ~5% of the pre-instrumentation baseline; here
we additionally record what *enabled* metrics cost, since that is the
default mode. Tracing stays off in both arms (it is opt-in).

Set ``REPRO_OBS_DUMP=FILE`` to also write the enabled arm's metrics
snapshot as JSONL — the CI smoke job uploads that file as an artifact.
"""

import os
import time

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.provider import TransparencyProvider
from repro.obs import export
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY, use_registry
from repro.platform.web import WebDirectory

_ROUNDS = 3


def _delivery_run():
    """The 50 x 21 perf-tier body (setup + saturating delivery)."""
    platform = make_platform(name="obs-overhead", partner_count=25)
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=500.0)
    attrs = platform.catalog.partner_attributes()[:20]
    for _ in range(50):
        user = platform.register_user()
        for attr in attrs:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
    provider.launch_attribute_sweep(attrs)
    provider.run_delivery()
    return provider


def _timed_run(registry):
    with use_registry(registry):
        start = time.perf_counter()
        provider = _delivery_run()
        elapsed = time.perf_counter() - start
    assert provider.total_impressions() == 50 * 21
    return elapsed


def test_obs_overhead_enabled_vs_noop():
    enabled_times = []
    noop_times = []
    enabled_registry = None
    for _ in range(_ROUNDS):
        registry = MetricsRegistry("bench-enabled")
        enabled_times.append(_timed_run(registry))
        enabled_registry = registry
        noop_times.append(_timed_run(NULL_REGISTRY))

    enabled = min(enabled_times)
    noop = min(noop_times)
    ratio = enabled / noop if noop else float("inf")
    record_table(format_table(
        ("mode", "best of 3 (s)", "vs no-op"),
        [
            ("metrics enabled", f"{enabled:.4f}", f"{ratio:.3f}x"),
            ("no-op registry", f"{noop:.4f}", "1.000x"),
        ],
        title="OBS — instrumentation overhead, 50x21 delivery tier",
    ))

    # Sanity on both arms, not a hard perf gate (CI machines are noisy):
    # the enabled arm recorded real numbers, the noop arm recorded none.
    assert enabled_registry.value("delivery.slots_served") > 0
    assert enabled_registry.value("delivery.impressions_delivered") == 1050
    assert NULL_REGISTRY.instruments() == {}

    dump_path = os.environ.get("REPRO_OBS_DUMP")
    if dump_path:
        with open(dump_path, "w", encoding="utf-8") as stream:
            stream.write(export.to_jsonl(enabled_registry))

    # Generous ceiling so real regressions (accidental per-event dict
    # lookups, event construction without a subscriber check) still
    # fail loudly without flaking on shared runners.
    assert ratio < 2.0, (
        f"metrics-enabled delivery {ratio:.2f}x slower than no-op"
    )
