"""Service-mode smoke drill: kill -9 recovery + HTTP/in-process equivalence.

Two phases, run for one backend per invocation (CI runs a matrix):

* **Phase A — kill drill.** Start `repro gateway` as a subprocess,
  create an org and a campaign over HTTP, drive `repro httpgen`
  against it, then SIGKILL the whole gateway process group mid-run.
  Fold the surviving journals back into a fresh world twice,
  independently — both folds must be byte-identical, every impression
  record in the journals must appear in the recovered state exactly
  once (no charge lost, none doubled), and the tenancy journal must
  replay to the acknowledged mutations. Restart the gateway over the
  same directory: its live `/v1/state` must equal the fold, the org
  and campaign must be back, and a fresh httpgen run must exit 0.

* **Phase B — equivalence soak.** A fresh gateway, a seeded httpgen
  soak (>= 60 s by default, one pipelined connection), a clean
  SIGTERM — then the same seeded schedule run in-process against a
  world rebuilt from the same manifest. The gateway's
  `final_report.json` must be byte-identical to the in-process run's
  canonical state report.

Exits non-zero on the first failed assertion. Artifacts (gateway
logs, httpgen histograms, reports) land in ``--out-dir``.

Usage::

    PYTHONPATH=src:. python benchmarks/service_smoke.py \
        --backend thread --out-dir service-smoke-thread
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from typing import List, Optional, Tuple

from repro.gateway import (
    WorldManifest,
    build_runtime,
    build_world,
    fetch_json,
    load_manifest,
    open_tenancy_store,
    recover_runtime_shards,
    tenancy_journal_path,
)
from repro.gateway.httpgen import _parse_base
from repro.gateway.tenancy import TenantRegistry
from repro.serve import LoadConfig, LoadGenerator
from repro.store import JournalStore
from repro.store.audit import canonical_json, state_report
from repro.store.records import ImpressionRecorded

SRC = os.path.join(os.path.dirname(__file__), "..", "src")

USERS = 60
SHARDS = 2
SEED = 11


class Gateway:
    """A `repro gateway` subprocess in its own process group, with its
    output teed to a log file (the CI artifact)."""

    def __init__(self, journal_dir: str, backend: str, log_path: str,
                 *extra: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(SRC)
        self.log_path = log_path
        self._log = open(log_path, "a", encoding="utf-8")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "gateway",
             "--journal-dir", journal_dir, "--port", "0",
             "--backend", backend, "--shards", str(SHARDS),
             "--users", str(USERS), "--seed", str(SEED), *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, start_new_session=True,
        )
        self.url: Optional[str] = None
        self._ready = threading.Event()
        self._tee = threading.Thread(target=self._pump, daemon=True)
        self._tee.start()
        if not self._ready.wait(timeout=120.0):
            self.kill9()
            raise AssertionError(
                f"gateway never became ready; see {log_path}")

    def _pump(self) -> None:
        assert self.process.stdout is not None
        for line in self.process.stdout:
            self._log.write(line)
            self._log.flush()
            if "listening on" in line:
                self.url = line.split("listening on ", 1)[1].split()[0]
                self._ready.set()
        self._ready.set()  # EOF: unblock the waiter with url=None

    def kill9(self) -> None:
        """SIGKILL the whole process group — gateway and, on the
        process backend, its shard workers. No shutdown hooks run."""
        try:
            os.killpg(self.process.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        self.process.wait()
        self._close()

    def sigterm(self) -> int:
        self.process.send_signal(signal.SIGTERM)
        code = self.process.wait(timeout=60.0)
        self._close()
        return code

    def _close(self) -> None:
        self._tee.join(timeout=10.0)
        if self.process.stdout is not None:
            self.process.stdout.close()
        self._log.close()


def httpgen(url: str, out_dir: str, name: str, *, rps: float,
            duration: float, seed: int, slo: Optional[str] = None,
            background: bool = False):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC)
    cmd = [sys.executable, "-m", "repro", "httpgen", "--url", url,
           "--rps", str(rps), "--duration", str(duration),
           "--seed", str(seed), "--connections", "1",
           "--histogram-out", os.path.join(out_dir, f"{name}.json")]
    if slo is not None:
        cmd += ["--slo", slo]
    log = open(os.path.join(out_dir, f"{name}.log"), "w",
               encoding="utf-8")
    process = subprocess.Popen(cmd, stdout=log, stderr=subprocess.STDOUT,
                               env=env)
    if background:
        return process, log
    code = process.wait()
    log.close()
    return code


def http_post(url: str, path: str, payload: dict) -> dict:
    host, port = _parse_base(url)
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        conn.request("POST", path, body=json.dumps(payload),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        body = response.read()
        if response.status >= 300:
            raise AssertionError(
                f"POST {path} -> {response.status}: {body!r}")
        return json.loads(body)
    finally:
        conn.close()


def fold_journals(journal_dir: str) -> Tuple[str, int, dict]:
    """Rebuild the world from the on-disk manifest and fold every
    journal into it (always in-process on the thread backend — the
    cross-backend byte-identity is part of what the drill checks).
    Returns (canonical state report, recovered impressions, tenancy
    state)."""
    manifest = load_manifest(journal_dir)
    assert manifest is not None, f"no manifest in {journal_dir}"
    fold = WorldManifest(**dict(manifest.to_dict(), backend="thread"))
    platform = build_world(fold)
    runtime = build_runtime(platform, fold, journal_dir=journal_dir)
    recovered = recover_runtime_shards(runtime, journal_dir, fold)
    assert recovered, "no shard journals to recover"
    report = canonical_json(state_report(runtime.router))
    impressions = runtime.router.total_impressions()
    store = open_tenancy_store(journal_dir + "-fold-scratch")
    tenants = TenantRegistry(platform, store)
    for record in JournalStore.read(tenancy_journal_path(journal_dir)):
        tenants.apply_record(record)
    tenancy = tenants.state_dump()
    store.close()
    for shard in runtime.router.shards:
        shard.store.close()
    return report, impressions, tenancy


def journaled_impressions(journal_dir: str, shards: int) -> int:
    from repro.serve import shard_journal_path

    count = 0
    for index in range(shards):
        path = shard_journal_path(journal_dir, index, shards)
        if os.path.exists(path):
            count += sum(1 for record in JournalStore.read(path)
                         if isinstance(record, ImpressionRecorded))
    return count


def phase_a_kill_drill(backend: str, out_dir: str) -> None:
    print(f"[phase A] kill -9 drill ({backend} backend)", flush=True)
    journal_dir = os.path.join(out_dir, "killdrill")
    gateway = Gateway(journal_dir, backend,
                      os.path.join(out_dir, "gateway-killdrill.log"))
    assert gateway.url is not None
    org = http_post(gateway.url, "/v1/orgs",
                    {"name": "acme", "budget": 40.0})
    campaign = http_post(
        gateway.url, f"/v1/orgs/{org['org_id']}/campaigns",
        {"name": "launch"})
    load, load_log = httpgen(gateway.url, out_dir, "killdrill-httpgen",
                             rps=200, duration=10.0, seed=7,
                             background=True)
    time.sleep(3.0)
    gateway.kill9()
    print("[phase A] gateway killed mid-run", flush=True)
    load_code = load.wait(timeout=120.0)
    load_log.close()
    assert load_code != 0, \
        "httpgen should report errors after the gateway died"

    report1, impressions1, tenancy1 = fold_journals(journal_dir)
    report2, impressions2, tenancy2 = fold_journals(journal_dir)
    assert report1 == report2, "independent folds disagree"
    assert tenancy1 == tenancy2
    on_disk = journaled_impressions(journal_dir, SHARDS)
    assert impressions1 == on_disk, (
        f"charge conservation violated: {on_disk} impression records "
        f"journaled, {impressions1} recovered")
    assert impressions1 > 0, "the drill served nothing before the kill"
    replayed_orgs = [entry["org_id"] for entry in tenancy1["orgs"]]
    assert org["org_id"] in replayed_orgs, \
        "acknowledged org lost in replay"
    with open(os.path.join(out_dir, "killdrill-fold-report.json"), "w",
              encoding="utf-8") as stream:
        stream.write(report1)
        stream.write("\n")
    print(f"[phase A] folds agree: {impressions1} impressions, "
          f"{len(tenancy1['orgs'])} org(s)", flush=True)

    gateway = Gateway(journal_dir, backend,
                      os.path.join(out_dir, "gateway-restart.log"))
    assert gateway.url is not None
    try:
        live_state = fetch_json(gateway.url, "/v1/state")
        assert canonical_json(live_state) == report1, (
            "restarted gateway state differs from the journal fold")
        recovered_org = fetch_json(gateway.url,
                                   f"/v1/orgs/{org['org_id']}")
        assert recovered_org["name"] == "acme"
        assert recovered_org["campaigns"] == 1
        recovered_campaign = fetch_json(
            gateway.url,
            f"/v1/orgs/{org['org_id']}/campaigns"
            f"/{campaign['campaign_id']}")
        assert recovered_campaign["name"] == "launch"
        code = httpgen(gateway.url, out_dir, "restart-httpgen",
                       rps=150, duration=1.5, seed=9,
                       slo="availability=99%")
        assert code == 0, "post-restart httpgen failed"
    finally:
        code = gateway.sigterm()
    assert code == 0, "restarted gateway did not shut down cleanly"
    assert os.path.exists(os.path.join(journal_dir,
                                       "final_report.json"))
    print("[phase A] restart serves the recovered world; drill ok",
          flush=True)


def phase_b_equivalence_soak(backend: str, out_dir: str,
                             soak_s: float, rps: float) -> None:
    print(f"[phase B] {soak_s:.0f}s equivalence soak "
          f"({backend} backend, {rps:.0f} rps)", flush=True)
    journal_dir = os.path.join(out_dir, "soak")
    trace_path = os.path.join(out_dir, "soak-gateway-trace.json")
    gateway = Gateway(journal_dir, backend,
                      os.path.join(out_dir, "gateway-soak.log"),
                      "--trace-out", trace_path,
                      "--trace-format", "chrome")
    assert gateway.url is not None
    try:
        code = httpgen(gateway.url, out_dir, "soak-httpgen",
                       rps=rps, duration=soak_s, seed=21,
                       slo="availability=99.9%")
        assert code == 0, "soak httpgen failed (errors or SLO miss)"
    finally:
        code = gateway.sigterm()
    assert code == 0, "soaked gateway did not shut down cleanly"
    with open(trace_path, encoding="utf-8") as stream:
        trace = json.load(stream)
    assert isinstance(trace, list) and trace, \
        "soak gateway wrote an empty trace"
    assert any(event["name"] == "gateway.request" for event in trace)
    with open(os.path.join(journal_dir, "final_report.json"),
              encoding="utf-8") as stream:
        http_state = stream.read().rstrip("\n")

    manifest = load_manifest(journal_dir)
    assert manifest is not None
    arm = WorldManifest(**dict(manifest.to_dict(), backend="thread"))
    platform = build_world(arm)
    runtime = build_runtime(platform, arm)
    runtime.start()
    report = LoadGenerator(
        runtime, list(platform.users.user_ids()),
        config=LoadConfig(rps=rps, duration_s=soak_s, seed=21),
    ).run()
    runtime.stop()
    assert report.tally.errors == 0
    in_process_state = canonical_json(state_report(runtime.router))
    with open(os.path.join(out_dir, "soak-inprocess-report.json"), "w",
              encoding="utf-8") as stream:
        stream.write(in_process_state)
        stream.write("\n")
    assert http_state == in_process_state, (
        "HTTP soak state differs from the in-process run of the same "
        "seeded schedule")
    print(f"[phase B] byte-identical after "
          f"{report.tally.submitted} requests; soak ok", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("thread", "process"),
                        default="thread")
    parser.add_argument("--out-dir", default="service-smoke")
    parser.add_argument("--soak-duration", type=float, default=60.0)
    parser.add_argument("--soak-rps", type=float, default=150.0)
    parser.add_argument("--skip-soak", action="store_true",
                        help="run only the kill drill (fast local check)")
    args = parser.parse_args(argv)
    os.makedirs(args.out_dir, exist_ok=True)
    phase_a_kill_drill(args.backend, args.out_dir)
    if not args.skip_soak:
        phase_b_equivalence_soak(args.backend, args.out_dir,
                                 args.soak_duration, args.soak_rps)
    print(f"service smoke ok ({args.backend} backend)", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
