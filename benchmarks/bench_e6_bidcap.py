"""E6 — the bid-cap elevation (section 3.1, "Validation").

Paper: "we set the bid cap for each ad to be $10 per thousand impressions
... five times its default value of $2 CPM for U.S. users — to increase
the chances of these ads winning the ad auction". Measured: the
delivery-probability-vs-bid curve against log-normal competition with
median $2 CPM (the curve crosses ~50% at the recommended bid, and the 5x
elevation buys near-certain delivery), plus an end-to-end ablation — the
same two-user validation campaign run at $2 vs $10 — showing the coverage
gap the elevation closes. The peak/off-peak market ablation shows the
elevation also rides out demand spikes.
"""

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.platform.web import WebDirectory
from repro.workloads.competition import (
    lognormal_competition,
    peak_offpeak_competition,
    win_rate,
)

BIDS = (0.5, 1.0, 2.0, 4.0, 10.0, 20.0)


def run_win_rate_curves():
    calm = [(bid, win_rate(bid, lognormal_competition(seed=31),
                           trials=20_000)) for bid in BIDS]
    spiky = [(bid, win_rate(bid, peak_offpeak_competition(seed=31),
                            trials=20_000)) for bid in BIDS]
    return calm, spiky


def run_delivery_ablation(bid_cpm):
    """The validation campaign at one bid cap, one round of slots per ad
    opportunity (limited retries — a too-low bid loses slots for good)."""
    platform = make_platform(
        name=f"e6b{bid_cpm}", partner_count=120,
        competing_draw=lognormal_competition(median_cpm=2.0, seed=37),
    )
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=200.0,
                                    bid_cap_cpm=bid_cpm)
    attrs = platform.catalog.partner_attributes()[:20]
    user = platform.register_user()
    for attr in attrs:
        user.set_attribute(attr)
    provider.optin.via_page_like(user.user_id)
    provider.launch_attribute_sweep(attrs)
    # limited browsing: ~2 slots per wanted impression
    platform.run_delivery(slots_per_user=42)
    profile = TreadClient(user.user_id, platform,
                          provider.publish_decode_pack()).sync()
    return len(profile.set_attributes), len(attrs)


def test_e6_bidcap(benchmark):
    calm, spiky = benchmark.pedantic(run_win_rate_curves, rounds=1,
                                     iterations=1)
    low_cov, total = run_delivery_ablation(0.8)
    high_cov, _ = run_delivery_ablation(10.0)

    curve_rows = [
        (f"${bid:.1f} CPM", f"{rate_calm:.1%}", f"{rate_spiky:.1%}")
        for (bid, rate_calm), (_, rate_spiky) in zip(calm, spiky)
    ]
    record_table(format_table(
        ("bid cap", "win rate (calm market)", "win rate (peaky market)"),
        curve_rows,
        title="E6  Auction win rate vs bid cap (paper: $2 default, "
              "$10 = 5x elevation)",
    ))
    record_table(format_table(
        ("quantity", "paper", "measured"),
        [
            ("win rate at $2 (recommended bid)", "~typical impression",
             f"{dict(calm)[2.0]:.1%}"),
            ("win rate at $10 (validation bid)", "wins ~always",
             f"{dict(calm)[10.0]:.1%}"),
            ("coverage in limited browsing @ $0.8 CPM", "(low)",
             f"{low_cov}/{total}"),
            ("coverage in limited browsing @ $10 CPM", "all Treads land",
             f"{high_cov}/{total}"),
        ],
        title="E6b Why the validation elevated the bid 5x",
    ))
    rates = dict(calm)
    assert 0.45 < rates[2.0] < 0.55
    assert rates[10.0] > 0.98
    assert high_cov == total
    assert low_cov < high_cov
