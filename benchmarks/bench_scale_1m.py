"""Scale tier: the million-user columnar sweep under bounded memory.

The columnar refactor's acceptance bar: 1M users x the full 508-ad
partner sweep (11M impressions) must complete on one core within a
bounded memory budget — the shape the legacy object store cannot reach
(1M ``UserProfile`` objects plus an 11M-entry impression log are
gigabytes before delivery even starts). The columnar run holds the
population in packed numpy columns, delivery state in per-ad shown
bitsets (``compact_delivery``), billing in aggregates, and discards
journal records (:class:`~repro.store.store.NullStore`).

On top of that sits the **batch sweep** tier: the same worlds delivered
through :meth:`~repro.platform.delivery.DeliveryEngine.sweep_slots` —
population-scale delivery as column algebra (mask programs, argmax
auctions over row blocks) instead of the scalar per-user loop. The 100k
tier proves byte-identical reports *and* a >= 3x impressions/s floor on
every CI push; the 1M tier (``REPRO_SCALE_1M=1``) is the occasional
full proof.

Honesty note: the measured numbers in ``perf_trajectory.json`` are one
run on the reference container, single-core CPython — no numba, no
multiprocessing. Wall clock (``perf_counter``) and CPU time
(``process_time``) are both recorded; on an uncontended core they
should nearly coincide, and a large gap flags a noisy measurement.
"""

import dataclasses
import json
import os
import resource
import time

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import format_table
from repro.core.provider import TransparencyProvider
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.store.store import NullStore
from repro.workloads.competition import zero_competition

#: Hard peak-RSS ceilings (MB) per tier — the "bounded memory" claim as
#: an assertion. The 100k tier fits comfortably under half a GB; the 1M
#: tier's budget is dominated by the attribute matrix (64 MB), the
#: per-ad shown bitsets (~63 MB), and transient numpy temporaries.
RSS_CEILING_MB = {100_000: 512.0, 1_000_000: 2048.0}

#: The batch sweep must beat the scalar loop by at least this factor in
#: impressions/s on the 100k CI tier (measured: ~8x; the floor leaves
#: headroom for container noise).
SWEEP_SPEEDUP_FLOOR = 3.0

ATTRS_PER_USER = 10


def _peak_rss_mb() -> float:
    """Linux ``ru_maxrss`` is KB; this is the process's high-water mark
    (not current usage), which is exactly the bound we promise."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run_columnar_sweep(users: int, sweep: bool = False,
                        sweep_workers=None):
    """Build, populate, launch, and saturate one columnar world.

    Returns ``(platform, provider, timings)`` where ``timings`` carries
    wall-clock and CPU seconds for the build and delivery phases.
    """
    t_build = time.perf_counter()
    c_build = time.process_time()
    platform = AdPlatform(
        config=PlatformConfig(name="scale", columnar_users=True,
                              compact_delivery=True),
        catalog=build_us_catalog(),
        competing_draw=zero_competition(),
        store=NullStore(),
    )
    provider = TransparencyProvider(platform, WebDirectory(),
                                    budget=50_000.0)
    attrs = platform.catalog.partner_attributes()
    for i in range(users):
        user = platform.register_user()
        for k in range(ATTRS_PER_USER):
            user.set_attribute(
                attrs[(i * ATTRS_PER_USER + k) % len(attrs)])
        provider.optin.via_page_like(user.user_id)
    provider.launch_partner_sweep()
    timings = {
        "build_s": time.perf_counter() - t_build,
        "build_cpu_s": time.process_time() - c_build,
    }

    t_deliver = time.perf_counter()
    c_deliver = time.process_time()
    provider.run_delivery(sweep=sweep, sweep_workers=sweep_workers)
    timings["deliver_s"] = time.perf_counter() - t_deliver
    timings["deliver_cpu_s"] = time.process_time() - c_deliver
    return platform, provider, timings


def _canonical_reports(platform, account_id: str) -> str:
    reports = [dataclasses.asdict(r) for r in platform.reports(account_id)]
    reports.sort(key=lambda r: r["ad_id"])
    return json.dumps(reports, sort_keys=True)


def _scale_tier(users: int, sweep: bool = False):
    platform, provider, timings = _run_columnar_sweep(users, sweep=sweep)
    peak_mb = _peak_rss_mb()

    # Deliver-iff-match at scale: 10 matched Treads + control, per user.
    assert provider.total_impressions() == users * (ATTRS_PER_USER + 1)
    stats = platform.users.stats()
    assert stats["rows"] == users
    assert stats["dense_ids"], "IdFactory ids must stay dense-predicted"
    assert peak_mb < RSS_CEILING_MB[users], (
        f"peak RSS {peak_mb:.0f} MB exceeds the {RSS_CEILING_MB[users]:.0f}"
        f" MB ceiling for the {users:,}-user tier")

    engine = "batch sweep" if sweep else "scalar loop"
    record_table(format_table(
        ("metric", "value"),
        [
            ("users x ads", f"{users:,} x 508"),
            ("impressions", f"{provider.total_impressions():,}"),
            ("build+populate (s)", f"{timings['build_s']:.1f}"),
            ("delivery wall (s)", f"{timings['deliver_s']:.1f}"),
            ("delivery cpu (s)", f"{timings['deliver_cpu_s']:.1f}"),
            ("impressions/s",
             f"{provider.total_impressions() / timings['deliver_s']:,.0f}"),
            ("user columns (MB)", f"{stats['column_bytes'] / 1e6:.1f}"),
            ("peak RSS (MB)", f"{peak_mb:.0f}"),
        ],
        title=f"SCALE — columnar compact {engine}, {users:,} users "
              f"(single core)",
    ))
    return timings


def test_scale_100k_columnar_sweep():
    """CI's scale-smoke tier: 100k users under a hard RSS ceiling."""
    _scale_tier(100_000)


def test_scale_100k_batch_sweep():
    """CI's batch-sweep tier: same 100k world through the vectorized
    engine — byte-identical reports, >= 3x impressions/s over scalar."""
    scalar_platform, scalar_provider, scalar_t = _run_columnar_sweep(
        100_000, sweep=False)
    batch_platform, batch_provider, batch_t = _run_columnar_sweep(
        100_000, sweep=True)
    peak_mb = _peak_rss_mb()

    impressions = 100_000 * (ATTRS_PER_USER + 1)
    assert scalar_provider.total_impressions() == impressions
    assert batch_provider.total_impressions() == impressions
    assert _canonical_reports(
        scalar_platform, scalar_provider.account.account_id) == \
        _canonical_reports(
            batch_platform, batch_provider.account.account_id), \
        "batch sweep reports must be byte-identical to the scalar loop"
    assert peak_mb < RSS_CEILING_MB[100_000]

    scalar_ips = impressions / scalar_t["deliver_s"]
    batch_ips = impressions / batch_t["deliver_s"]
    speedup = batch_ips / scalar_ips
    record_table(format_table(
        ("engine", "wall (s)", "cpu (s)", "impressions/s"),
        [
            ("scalar loop", f"{scalar_t['deliver_s']:.1f}",
             f"{scalar_t['deliver_cpu_s']:.1f}", f"{scalar_ips:,.0f}"),
            ("batch sweep", f"{batch_t['deliver_s']:.1f}",
             f"{batch_t['deliver_cpu_s']:.1f}", f"{batch_ips:,.0f}"),
            ("speedup", "-", "-", f"{speedup:.1f}x"),
        ],
        title="SCALE — 100k delivery: batch sweep vs scalar loop",
    ))
    assert speedup >= SWEEP_SPEEDUP_FLOOR, (
        f"batch sweep only {speedup:.1f}x over scalar; floor is "
        f"{SWEEP_SPEEDUP_FLOOR:.0f}x")


_SCALE_1M_GATE = pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_1M") != "1",
    reason="minutes-long single-core run; set REPRO_SCALE_1M=1 to enable "
           "(numbers recorded in perf_trajectory.json scale_1m)",
)


@_SCALE_1M_GATE
def test_scale_1m_columnar_sweep():
    """The full million-user tier behind an explicit opt-in."""
    _scale_tier(1_000_000)


@_SCALE_1M_GATE
def test_scale_1m_batch_sweep():
    """The million-user batch sweep: the 336 s scalar delivery as
    column algebra, single-core, bounded to 70 s and the same RSS
    ceiling."""
    timings = _scale_tier(1_000_000, sweep=True)
    assert timings["deliver_s"] <= 70.0, (
        f"1M batch-sweep delivery took {timings['deliver_s']:.1f} s; "
        "the acceptance bound is 70 s single-core")
