"""Scale tier: the million-user columnar sweep under bounded memory.

The columnar refactor's acceptance bar: 1M users x the full 508-ad
partner sweep (11M impressions) must complete on one core within a
bounded memory budget — the shape the legacy object store cannot reach
(1M ``UserProfile`` objects plus an 11M-entry impression log are
gigabytes before delivery even starts). The columnar run holds the
population in packed numpy columns, delivery state in per-ad shown
bitsets (``compact_delivery``), billing in aggregates, and discards
journal records (:class:`~repro.store.store.NullStore`).

Honesty note: the measured numbers in ``perf_trajectory.json`` are one
run on the reference container, single-core CPython — no numba, no
multiprocessing. The tier scales linearly in users, so the 100k tier
(CI's ``scale-smoke`` job, hard RSS ceiling) is the everyday guard and
the 1M tier (``REPRO_SCALE_1M=1``) is the occasional full proof.
"""

import os
import resource
import time

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import format_table
from repro.core.provider import TransparencyProvider
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.store.store import NullStore
from repro.workloads.competition import zero_competition

#: Hard peak-RSS ceilings (MB) per tier — the "bounded memory" claim as
#: an assertion. The 100k tier fits comfortably under half a GB; the 1M
#: tier's budget is dominated by the attribute matrix (64 MB), the
#: per-ad shown bitsets (~63 MB), and transient numpy temporaries.
RSS_CEILING_MB = {100_000: 512.0, 1_000_000: 2048.0}

ATTRS_PER_USER = 10


def _peak_rss_mb() -> float:
    """Linux ``ru_maxrss`` is KB; this is the process's high-water mark
    (not current usage), which is exactly the bound we promise."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run_columnar_sweep(users: int):
    """Build, populate, launch, and saturate one columnar world."""
    t_build = time.perf_counter()
    platform = AdPlatform(
        config=PlatformConfig(name="scale", columnar_users=True,
                              compact_delivery=True),
        catalog=build_us_catalog(),
        competing_draw=zero_competition(),
        store=NullStore(),
    )
    provider = TransparencyProvider(platform, WebDirectory(),
                                    budget=50_000.0)
    attrs = platform.catalog.partner_attributes()
    for i in range(users):
        user = platform.register_user()
        for k in range(ATTRS_PER_USER):
            user.set_attribute(
                attrs[(i * ATTRS_PER_USER + k) % len(attrs)])
        provider.optin.via_page_like(user.user_id)
    provider.launch_partner_sweep()
    built_s = time.perf_counter() - t_build

    t_deliver = time.perf_counter()
    provider.run_delivery()
    deliver_s = time.perf_counter() - t_deliver
    return platform, provider, built_s, deliver_s


def _scale_tier(users: int):
    platform, provider, built_s, deliver_s = _run_columnar_sweep(users)
    peak_mb = _peak_rss_mb()

    # Deliver-iff-match at scale: 10 matched Treads + control, per user.
    assert provider.total_impressions() == users * (ATTRS_PER_USER + 1)
    stats = platform.users.stats()
    assert stats["rows"] == users
    assert stats["dense_ids"], "IdFactory ids must stay dense-predicted"
    assert peak_mb < RSS_CEILING_MB[users], (
        f"peak RSS {peak_mb:.0f} MB exceeds the {RSS_CEILING_MB[users]:.0f}"
        f" MB ceiling for the {users:,}-user tier")

    record_table(format_table(
        ("metric", "value"),
        [
            ("users x ads", f"{users:,} x 508"),
            ("impressions", f"{provider.total_impressions():,}"),
            ("build+populate (s)", f"{built_s:.1f}"),
            ("delivery (s)", f"{deliver_s:.1f}"),
            ("user columns (MB)", f"{stats['column_bytes'] / 1e6:.1f}"),
            ("peak RSS (MB)", f"{peak_mb:.0f}"),
        ],
        title=f"SCALE — columnar compact sweep, {users:,} users "
              f"(single core)",
    ))


def test_scale_100k_columnar_sweep():
    """CI's scale-smoke tier: 100k users under a hard RSS ceiling."""
    _scale_tier(100_000)


@pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_1M") != "1",
    reason="~5 min single-core run; set REPRO_SCALE_1M=1 to enable "
           "(numbers recorded in perf_trajectory.json scale_1m)",
)
def test_scale_1m_columnar_sweep():
    """The full million-user tier behind an explicit opt-in."""
    _scale_tier(1_000_000)
