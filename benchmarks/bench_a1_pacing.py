"""A1 (ablation) — budget pacing vs time-to-coverage.

The paper costs Treads per impression; a deployed provider also chooses a
*daily* budget. This ablation runs the same campaign (20 users x 10
attributes + control at a $2-CPM market) under increasingly tight daily
caps and reports days-to-saturation and total spend: spend is invariant
(every wanted impression is eventually bought at the market price) while
campaign duration scales inversely with the cap — the knob trades
latency, never money or coverage.
"""

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.provider import TransparencyProvider
from repro.core.scheduler import PacedCampaignRunner
from repro.platform.web import WebDirectory
from repro.workloads.browsing import BrowsingModel
from repro.workloads.competition import fixed_competition

DAILY_BUDGETS = (None, 0.20, 0.10, 0.05, 0.02)
USERS = 20
ATTRS = 10
WANTED_IMPRESSIONS = USERS * (ATTRS + 1)


def run_pacing_sweep():
    rows = []
    for daily_budget in DAILY_BUDGETS:
        platform = make_platform(
            name=f"a1-{daily_budget}", partner_count=25,
            competing_draw=fixed_competition(2.0),
        )
        web = WebDirectory()
        provider = TransparencyProvider(platform, web, budget=10.0,
                                        bid_cap_cpm=10.0)
        attrs = platform.catalog.partner_attributes()[:ATTRS]
        for _ in range(USERS):
            user = platform.register_user()
            for attr in attrs:
                user.set_attribute(attr)
            provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep(attrs)
        runner = PacedCampaignRunner(
            provider, daily_budget=daily_budget,
            browsing_model=BrowsingModel(mean_slots=40.0,
                                         heavy_user_fraction=0.0),
            patience=2,
        )
        result = runner.run(max_days=60)
        rows.append((
            daily_budget,
            result.total_days,
            result.total_impressions,
            result.total_spend,
            result.saturated,
        ))
    return rows


def test_a1_pacing(benchmark):
    rows = benchmark.pedantic(run_pacing_sweep, rounds=1, iterations=1)
    table_rows = [
        ("unpaced" if cap is None else f"${cap:.2f}/day",
         days, f"{impressions}/{WANTED_IMPRESSIONS}",
         f"${spend:.3f}", "yes" if saturated else "no")
        for cap, days, impressions, spend, saturated in rows
    ]
    record_table(format_table(
        ("daily budget", "days to saturation", "impressions", "spend",
         "saturated"),
        table_rows,
        title="A1  Ablation: daily-budget pacing trades latency, not "
              "coverage or cost",
    ))
    results = {cap: (days, imps, spend) for cap, days, imps, spend, _
               in rows}
    # every setting reaches full coverage at identical spend
    for days, imps, spend in results.values():
        assert imps == WANTED_IMPRESSIONS
        assert spend == round(WANTED_IMPRESSIONS * 0.002, 10) or \
            abs(spend - WANTED_IMPRESSIONS * 0.002) < 1e-9
    # tighter caps take longer
    assert results[0.02][0] > results[0.20][0] > 0
    assert results[None][0] <= results[0.20][0]
