"""E4 — the scale analysis (section 3.1, "Scale").

Paper claims: m binary attributes need m Treads; an m-valued attribute
needs only ceil(log2 m) Treads under bit-splitting (vs m under value
enumeration), and the user still learns their exact value. Measured: the
ad counts across m, plus an end-to-end bit-split reveal of a 7-valued
attribute (education level) driving real ads through the simulator.
"""

import math

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core import bitsplit
from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.platform.web import WebDirectory


def run_scale_table():
    rows = []
    for m in (2, 8, 97, 1000, 4096):
        rows.append((
            m,
            bitsplit.treads_needed_enumeration(m),
            math.ceil(math.log2(m)),
            bitsplit.bits_needed(m),
        ))
    return rows


def run_end_to_end_bitsplit():
    platform = make_platform(name="e4", partner_count=25)
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=100.0)
    education = platform.catalog.get("pf-education-level")
    users = []
    for index, value in enumerate(education.values):
        user = platform.register_user()
        user.set_attribute(education, value)
        provider.optin.via_page_like(user.user_id)
        users.append((user, value))
    provider.launch_attribute_sweep([])  # control
    launch = provider.launch_value_reveal(education.attr_id,
                                          scheme="bitsplit")
    provider.run_delivery()
    pack = provider.publish_decode_pack()
    correct = sum(
        1 for user, value in users
        if TreadClient(user.user_id, platform, pack).sync()
        .values.get(education.attr_id) == value
    )
    return education, launch, correct, len(users)


def test_e4_scale(benchmark):
    rows = benchmark(run_scale_table)
    table_rows = [
        (f"m = {m}", enum_count, f"log2(m) = {paper_bits}", measured_bits)
        for m, enum_count, paper_bits, measured_bits in rows
    ]
    record_table(format_table(
        ("attribute size", "enumeration ads", "paper (bit-split)",
         "measured"),
        table_rows,
        title="E4  Scale: Treads needed per m-valued attribute (sec 3.1)",
    ))
    for m, _, paper_bits, measured_bits in rows:
        assert measured_bits == paper_bits


def run_age_reveal():
    """The paper's own example: age (97 values) via 7 bit-Treads."""
    platform = make_platform(name="e4age", partner_count=25)
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=100.0)
    sample_ages = (13, 29, 42, 64, 87, 109)
    users = []
    for age in sample_ages:
        user = platform.register_user(age=age)
        provider.optin.via_page_like(user.user_id)
        users.append(user)
    provider.launch_attribute_sweep([])  # control
    launch = provider.launch_age_reveal(13, 109)
    provider.run_delivery()
    pack = provider.publish_decode_pack()
    correct = sum(
        1 for user in users
        if TreadClient(user.user_id, platform, pack).sync()
        .values.get(provider.AGE_ATTR_ID) == str(user.age)
    )
    return launch, correct, len(users)


def test_e4_age_example(benchmark):
    launch, correct, total = benchmark.pedantic(run_age_reveal, rounds=1,
                                                iterations=1)
    record_table(format_table(
        ("quantity", "paper", "measured"),
        [
            ("ads for age (97 values, 13..109)", "log2(97) -> 7",
             len(launch.treads)),
            ("sampled users reconstructing exact age", f"{total}/{total}",
             f"{correct}/{total}"),
        ],
        title="E4c The paper's age example end-to-end (sec 3.1, Scale)",
    ))
    assert len(launch.treads) == 7
    assert correct == total


def test_e4_bitsplit_end_to_end(benchmark):
    education, launch, correct, total = benchmark.pedantic(
        run_end_to_end_bitsplit, rounds=1, iterations=1
    )
    m = len(education.values)
    record_table(format_table(
        ("quantity", "paper", "measured"),
        [
            (f"ads for {m}-valued education attr", f"ceil(log2 {m}) = 3",
             len(launch.treads)),
            ("users reconstructing exact value", f"{total}/{total}",
             f"{correct}/{total}"),
        ],
        title="E4b Bit-split reveal end-to-end (education level, m=7)",
    ))
    assert len(launch.treads) == bitsplit.bits_needed(m)
    assert correct == total
