"""E1 — the paper's validation experiment (section 3.1, "Validation").

Paper setup: a new US advertiser account, two authors opted in by liking
a page, one ad per US binary partner attribute (507) plus a control, all
at a $10 CPM bid cap (5x the $2 default). Paper outcome: both authors got
the control; the broker-profiled author got eleven attribute Treads (net
worth, restaurant/apparel purchase behaviour, job role, home type, likely
auto purchase, ...); the recent-arrival author got none.

Measured here on the simulated platform with realistic log-normal
competition (median $2 CPM) — the elevated bid is what makes per-ad
delivery reliable.
"""

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.platform.web import WebDirectory
from repro.workloads.competition import lognormal_competition

VALIDATION_ATTR_IDS = (
    "pc-networth-005", "pc-restaurants-003", "pc-restaurants-009",
    "pc-apparel-000", "pc-apparel-006", "pc-jobrole-002",
    "pc-hometype-000", "pc-autointent-007", "pc-income-007",
    "pc-credit-000", "pc-segment-042",
)


def run_validation():
    platform = make_platform(
        name="e1",
        competing_draw=lognormal_competition(median_cpm=2.0, seed=17),
    )
    web = WebDirectory()
    profiled = platform.register_user(age=38)
    for attr_id in VALIDATION_ATTR_IDS:
        profiled.set_attribute(platform.catalog.get(attr_id))
    unprofiled = platform.register_user(age=26)

    provider = TransparencyProvider(platform, web, budget=500.0,
                                    bid_cap_cpm=10.0)
    provider.optin.via_page_like(profiled.user_id)
    provider.optin.via_page_like(unprofiled.user_id)
    launch = provider.launch_partner_sweep()
    provider.run_delivery(max_rounds=200)
    pack = provider.publish_decode_pack()
    reveal_profiled = TreadClient(profiled.user_id, platform, pack).sync()
    reveal_unprofiled = TreadClient(unprofiled.user_id, platform,
                                    pack).sync()
    return launch, provider, reveal_profiled, reveal_unprofiled


def test_e1_validation(benchmark):
    launch, provider, profiled, unprofiled = benchmark.pedantic(
        run_validation, rounds=1, iterations=1
    )
    rows = [
        ("Treads run (507 partner + control)", 508, len(launch.treads)),
        ("profiled author: control received", "yes",
         "yes" if profiled.control_received else "no"),
        ("profiled author: attribute Treads", 11,
         len(profiled.set_attributes)),
        ("unprofiled author: control received", "yes",
         "yes" if unprofiled.control_received else "no"),
        ("unprofiled author: attribute Treads", 0,
         len(unprofiled.set_attributes)),
        ("total billed impressions", 13, provider.total_impressions()),
    ]
    record_table(format_table(
        ("quantity", "paper", "measured"), rows,
        title="E1  Validation: 507 partner-category Treads on two authors "
              "(sec 3.1)",
    ))
    assert len(profiled.set_attributes) == 11
    assert len(unprofiled.set_attributes) == 0
    assert profiled.control_received and unprofiled.control_received
