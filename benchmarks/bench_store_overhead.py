"""Journaled-backend overhead on a scale-tier-shaped serving run.

The state layer's acceptance budget: routing every mutation through an
append-only JSONL write-ahead journal (`JournalStore`, group commit,
no fsync) may cost at most **15%** wall-clock over the in-memory store
on the scale bench tier. Measured here as best-of-5 full sharded
serving runs — identical world, identical competition, only the store
factory differs. Backend runs are interleaved (mem, journal, mem, ...)
after one untimed warm-up pair, so clock drift and cold file caches
hit both sides equally, and each side's *minimum* is compared:
scheduler noise only ever adds time, so the minima are the cleanest
estimate of intrinsic cost on a shared box (same reasoning as
``timeit``'s repeat-and-take-min). Recorded in
``perf_trajectory.json``.

Run with real statistics::

    PYTHONPATH=src:. python -m pytest benchmarks/bench_store_overhead.py \
        --benchmark-only
"""

from __future__ import annotations

import time

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.provider import TransparencyProvider
from repro.platform.web import WebDirectory
from repro.serve import KeyedCompetition, ShardRouter, journal_store_factory
from repro.workloads.personas import (
    AVERAGE_CONSUMER,
    ESTABLISHED_PROFESSIONAL,
)
from repro.workloads.population import PopulationBuilder

USERS = 300
SHARDS = 4
ROUNDS = 3
SLOTS = 3
RUNS = 5
#: Acceptance ceiling: journaled runtime / in-memory runtime.
MAX_OVERHEAD = 1.15


def _build_world(seed: int = 11):
    platform = make_platform(name="store-bench", platform_count=60,
                             partner_count=60)
    web = WebDirectory()
    builder = PopulationBuilder(platform, seed=seed)
    builder.spawn_mix([ESTABLISHED_PROFESSIONAL, AVERAGE_CONSUMER], USERS)
    builder.finalize()
    provider = TransparencyProvider(platform, web, budget=50_000.0,
                                    bid_cap_cpm=10.0)
    for user_id in platform.users.user_ids():
        provider.optin.via_page_like(user_id)
    provider.launch_partner_sweep()
    return platform


def _serve(platform, store_factory=None):
    router = ShardRouter(platform, num_shards=SHARDS,
                         competition=KeyedCompetition(seed=7),
                         store_factory=store_factory)
    for _ in range(ROUNDS):
        for user in platform.users:
            shard = router.shard_for(user.user_id)
            base = shard.claim_slots(user.user_id, SLOTS)
            with shard.engine.serving_session():
                shard.serve_user_slots(user, base, SLOTS)
    total = router.total_impressions()
    records = sum(shard.store.record_count for shard in router.shards)
    for shard in router.shards:
        shard.store.close()
    return total, records


def _timed_run(store_factory=None):
    """Build a fresh world (untimed), then time one full serving run."""
    platform = _build_world()
    start = time.perf_counter()
    impressions, records = _serve(platform, store_factory=store_factory)
    return time.perf_counter() - start, impressions, records


def test_journal_overhead_within_budget(tmp_path):
    """Best journaled run <= 1.15x the best in-memory run."""
    # Untimed warm-up pair: the first run of each backend pays import,
    # allocator, and file-cache costs that have nothing to do with the
    # steady-state overhead being bounded here.
    _timed_run()
    _timed_run(journal_store_factory(str(tmp_path / "warmup")))

    mem_times, jr_times = [], []
    mem_impressions = jr_impressions = jr_records = 0
    for i in range(RUNS):
        elapsed, mem_impressions, _ = _timed_run()
        mem_times.append(elapsed)
        elapsed, jr_impressions, jr_records = _timed_run(
            journal_store_factory(str(tmp_path / f"run-{i}")))
        jr_times.append(elapsed)
    memory_s = min(mem_times)
    journal_s = min(jr_times)

    assert jr_impressions == mem_impressions, \
        "journaling must not change delivery output"
    assert jr_records > jr_impressions, \
        "every impression should have journaled at least itself + charge"
    overhead = journal_s / memory_s
    record_table(format_table(
        ("store backend", "best s", "records"),
        [
            ("MemoryStore", f"{memory_s:.3f}", "-"),
            ("JournalStore (WAL)", f"{journal_s:.3f}",
             f"{jr_records:,}"),
            ("overhead", f"{overhead:.2f}x",
             f"budget <= {MAX_OVERHEAD:.2f}x"),
        ],
        title=f"Journaled-store overhead ({USERS} users x {SHARDS} "
              f"shards x {ROUNDS} rounds, {mem_impressions:,} "
              f"impressions)",
    ))
    # Lenient on shared CI runners: the budget is the acceptance bound
    # measured on the reference container; a noisy box gets 2x headroom
    # before this fails outright.
    assert overhead <= MAX_OVERHEAD * 2.0, (
        f"journaled backend cost {overhead:.2f}x the in-memory run "
        f"(budget {MAX_OVERHEAD:.2f}x, hard stop at double that)"
    )
