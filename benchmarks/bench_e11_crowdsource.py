"""E11 — evading shutdown by crowdsourcing (section 4).

Paper: "detection or shutdown of Treads could still be made difficult by
distributing them across a number of advertising accounts ... each
account being responsible for a small subset of the overall set of
targeting attributes". Measured: the full 507-attribute sweep sharded
over k member accounts; the platform's Tread-pattern detector (threshold
50 single-attribute ads per account) flags the k=1 monolith but loses the
sharded co-ops, while the subscriber-side reveal stays exact throughout.
"""

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.client import TreadClient
from repro.core.crowdsource import CrowdsourcedProvider
from repro.platform.policy import TreadPatternDetector
from repro.platform.web import WebDirectory

MEMBER_COUNTS = (1, 2, 5, 10, 25)
DETECTION_THRESHOLD = 50
PROBE_ATTRS = 12


def run_crowdsource_sweep():
    detector = TreadPatternDetector(
        per_account_threshold=DETECTION_THRESHOLD
    )
    rows = []
    for members in MEMBER_COUNTS:
        platform = make_platform(name=f"e11k{members}")
        web = WebDirectory()
        coop = CrowdsourcedProvider(platform, web, members=members,
                                    name=f"coop{members}",
                                    budget_per_member=100.0)
        attrs = platform.catalog.partner_attributes()
        user = platform.register_user()
        for attr in attrs[:PROBE_ATTRS]:
            user.set_attribute(attr)
        coop.optin_everywhere(user.user_id)
        report = coop.launch_sweep(attrs)
        coop.run_delivery()
        flags = detector.audit(coop.ads_by_account())
        profile = TreadClient(user.user_id, platform,
                              coop.publish_decode_pack()).sync()
        rows.append((
            members,
            report.largest_account_footprint,
            len(flags),
            len(profile.set_attributes),
        ))
    return rows


def test_e11_crowdsource(benchmark):
    rows = benchmark.pedantic(run_crowdsource_sweep, rounds=1, iterations=1)
    table_rows = [
        (f"k = {members}", footprint,
         f"{flagged}/{members} flagged",
         f"{revealed}/{PROBE_ATTRS}")
        for members, footprint, flagged, revealed in rows
    ]
    record_table(format_table(
        ("member accounts", "largest footprint (ads)",
         f"detector hits (threshold {DETECTION_THRESHOLD})",
         "user reveal coverage"),
        table_rows,
        title="E11 Crowdsourced provider: 507-attr sweep sharded over k "
              "accounts (sec 4)",
    ))
    by_members = {m: (fp, fl, rv) for m, fp, fl, rv in rows}
    # the monolith is detected; footprints shrink ~1/k; 25-way evades
    assert by_members[1][1] == 1
    assert by_members[25][1] == 0
    assert by_members[25][0] < by_members[1][0] / 20
    # coverage never degrades
    assert all(rv == PROBE_ATTRS for _, _, rv in by_members.values())
