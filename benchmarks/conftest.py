"""Benchmark harness plumbing.

Every benchmark reproduces one paper artifact (see DESIGN.md section 4)
and registers a paper-vs-measured table via :func:`record_table`; the
tables are printed in the terminal summary so ``pytest benchmarks/
--benchmark-only`` emits the full results even with output capture on.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.workloads.competition import zero_competition

_TABLES: List[str] = []


def record_table(text: str) -> None:
    """Queue a result table for the end-of-run summary."""
    _TABLES.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line(
        "TREADS REPRODUCTION — paper-vs-measured results"
    )
    terminalreporter.write_line("=" * 72)
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
    _TABLES.clear()


@pytest.fixture
def web():
    return WebDirectory()


def make_platform(name="bench", platform_count=614, partner_count=507,
                  competing_draw=None, **config_kw):
    """Fresh platform for a bench scenario (deterministic by default)."""
    return AdPlatform(
        config=PlatformConfig(name=name, **config_kw),
        catalog=build_us_catalog(platform_count, partner_count),
        competing_draw=competing_draw or zero_competition(),
    )
