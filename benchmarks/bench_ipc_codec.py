"""IPC codec micro-benchmark: out-of-band framing vs in-band pickling.

The shard-serving framer (:class:`repro.serve.ipc.Framer`) ships
buffer-exporting payloads — numpy bitset deltas from the parallel batch
sweep, bytearray blobs — out-of-band: protocol-5 pickle with a buffer
callback, scatter-gather ``sendmsg``, and ``recv_into`` preallocated
receive buffers. The baseline it replaced pickled everything in-band
and concatenated one frame bytes object per send, copying every payload
byte twice more per direction.

This bench round-trips a sweep-shaped payload (a dict of uint64 bitset
words) through both codecs over a loopback socketpair and asserts the
out-of-band framer is not slower — the guard that keeps the codec
rewrite honest.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time

import numpy as np

from benchmarks.conftest import record_table
from repro.analysis.tables import format_table
from repro.serve.ipc import Framer

#: One sweep-delta-shaped payload: 32 ads x 256 KiB of bitset words.
_ADS = 32
_WORDS = 32_768


def _payload():
    return {
        f"ad-{i:03d}": ("acct-1", 0,
                        np.full(_WORDS, np.uint64(0x5555555555555555)),
                        _WORDS * 32, 0.0)
        for i in range(_ADS)
    }


class _InbandFramer:
    """The pre-rewrite codec: in-band pickle, one concatenated frame."""

    _HEADER = struct.Struct("!I")

    def __init__(self, sock: socket.socket):
        self._sock = sock

    def send(self, message) -> None:
        payload = pickle.dumps(message, protocol=4)
        self._sock.sendall(self._HEADER.pack(len(payload)) + payload)

    def recv(self):
        header = b""
        while len(header) < self._HEADER.size:
            header += self._sock.recv(self._HEADER.size - len(header))
        (length,) = self._HEADER.unpack(header)
        chunks = []
        remaining = length
        while remaining > 0:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            chunks.append(chunk)
            remaining -= len(chunk)
        return pickle.loads(b"".join(chunks))


def _round_trip_seconds(framer_cls, rounds: int = 5) -> float:
    """Median seconds to ship one payload left-to-right and decode it."""
    message = _payload()
    timings = []
    for _ in range(rounds):
        left_sock, right_sock = socket.socketpair()
        left, right = framer_cls(left_sock), framer_cls(right_sock)
        received = []
        # The payload dwarfs the socketpair kernel buffer (~208 KiB), so
        # a reader thread must drain while the sender writes.
        thread = threading.Thread(target=lambda: received.append(right.recv()),
                                  daemon=True)
        thread.start()
        started = time.perf_counter()
        left.send(message)
        thread.join(timeout=60)
        timings.append(time.perf_counter() - started)
        assert received and received[0].keys() == message.keys()
        sample = received[0]["ad-000"][2]
        assert np.array_equal(sample, message["ad-000"][2])
        left_sock.close()
        right_sock.close()
    timings.sort()
    return timings[len(timings) // 2]


def test_ipc_codec_out_of_band_beats_inband():
    """The codec guard: protocol-5 out-of-band framing must not lose to
    the in-band concat codec it replaced on buffer-heavy payloads."""
    inband = _round_trip_seconds(_InbandFramer)
    outofband = _round_trip_seconds(Framer)
    payload_mib = _ADS * _WORDS * 8 / (1 << 20)
    speedup = inband / outofband

    # Confirm the payload actually travelled out-of-band.
    left_sock, right_sock = socket.socketpair()
    left, right = Framer(left_sock), Framer(right_sock)
    received = []
    thread = threading.Thread(target=lambda: received.append(right.recv()),
                              daemon=True)
    thread.start()
    left.send(_payload())
    thread.join(timeout=60)
    assert left.buffers_sent == _ADS
    assert right.buffers_received == _ADS
    assert right.bytes_received == left.bytes_sent
    left_sock.close()
    right_sock.close()

    record_table(format_table(
        ["codec", "median s", "MiB/s"],
        [
            ["in-band pickle + concat", f"{inband:.4f}",
             f"{payload_mib / inband:,.0f}"],
            ["out-of-band (protocol 5)", f"{outofband:.4f}",
             f"{payload_mib / outofband:,.0f}"],
            ["speedup", f"{speedup:.2f}x", "-"],
        ],
        title="IPC codec round trip (%.0f MiB of bitset words)"
              % payload_mib,
    ))
    # Generous floor: same-machine memcpy costs dominate, but dropping
    # below 0.8x would mean the rewrite regressed real shipping cost.
    assert speedup >= 0.8, (
        f"out-of-band codec slower than in-band baseline: {speedup:.2f}x")
