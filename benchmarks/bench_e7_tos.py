"""E7 — ToS compliance by encoding and placement (section 4).

Paper: explicit in-ad Treads "may violate these ToS"; "Treads where the
information about targeting parameters is obfuscated would appear to meet
the current ToS of platforms, especially if this obfuscated information
is placed on an external landing page". Measured: a 100-attribute sweep
submitted under every supported (encoding, placement) mode on three
platform-alikes with different review strictness, reporting the review
pass rate of each cell.
"""

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.creative import SUPPORTED_MODES
from repro.core.provider import TransparencyProvider
from repro.core.treads import Encoding, Placement, RevealKind
from repro.platform.web import WebDirectory

MODE_LABELS = {
    (Encoding.EXPLICIT, Placement.IN_AD_TEXT): "explicit, in ad (Fig 1a)",
    (Encoding.CODEBOOK, Placement.IN_AD_TEXT): "codebook, in ad (Fig 1b)",
    (Encoding.STEGANOGRAPHIC, Placement.IN_AD_IMAGE): "stego, in image",
    (Encoding.EXPLICIT, Placement.LANDING_PAGE): "explicit, landing page",
    (Encoding.CODEBOOK, Placement.LANDING_PAGE): "codebook, landing page",
}

PAPER_EXPECTATION = {
    (Encoding.EXPLICIT, Placement.IN_AD_TEXT): "violates ToS",
    (Encoding.CODEBOOK, Placement.IN_AD_TEXT): "passes",
    (Encoding.STEGANOGRAPHIC, Placement.IN_AD_IMAGE): "passes",
    (Encoding.EXPLICIT, Placement.LANDING_PAGE): "passes",
    (Encoding.CODEBOOK, Placement.LANDING_PAGE): "passes",
}


def run_tos_matrix():
    results = {}
    for strictness in ("lenient", "standard", "strict"):
        for mode in SUPPORTED_MODES:
            encoding, placement = mode
            platform = make_platform(
                name=f"e7-{strictness}-{encoding.value[:4]}-"
                     f"{placement.value[:4]}",
                partner_count=100,
                policy_strictness=strictness,
            )
            web = WebDirectory()
            provider = TransparencyProvider(
                platform, web, budget=100.0,
                encoding=encoding, placement=placement,
            )
            report = provider.launch_partner_sweep()
            attribute_treads = [
                t for t in report.treads
                if t.payload.kind is RevealKind.ATTRIBUTE_SET
            ]
            passed = sum(1 for t in attribute_treads if not t.rejected)
            results[(strictness, mode)] = (passed, len(attribute_treads))
    return results


def test_e7_tos(benchmark):
    results = benchmark.pedantic(run_tos_matrix, rounds=1, iterations=1)
    rows = []
    for mode in SUPPORTED_MODES:
        cells = []
        for strictness in ("lenient", "standard", "strict"):
            passed, total = results[(strictness, mode)]
            cells.append(f"{passed}/{total}")
        rows.append((MODE_LABELS[mode], PAPER_EXPECTATION[mode], *cells))
    record_table(format_table(
        ("Tread mode", "paper (sec 4)", "lenient", "standard", "strict"),
        rows,
        title="E7  ToS review pass rate: 100-attribute sweep x review "
              "strictness",
    ))
    # paper shape under the standard (2018-like) reviewer:
    explicit_in_ad = results[("standard",
                              (Encoding.EXPLICIT, Placement.IN_AD_TEXT))]
    assert explicit_in_ad[0] == 0  # all rejected
    for mode, expectation in PAPER_EXPECTATION.items():
        if expectation == "passes":
            passed, total = results[("standard", mode)]
            assert passed == total, mode
    # even a strict reviewer cannot touch landing-page/stego Treads
    for mode in ((Encoding.STEGANOGRAPHIC, Placement.IN_AD_IMAGE),
                 (Encoding.EXPLICIT, Placement.LANDING_PAGE),
                 (Encoding.CODEBOOK, Placement.LANDING_PAGE)):
        passed, total = results[("strict", mode)]
        assert passed == total, mode
