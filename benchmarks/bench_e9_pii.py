"""E9 — PII reveals (section 3.1, "Supporting PII").

Paper: users hand the provider *hashed* PII; the provider builds a
PII-based audience per batch and runs one Tread at it; "If a user sees
the Tread, it means that the advertising platform has the particular
piece of PII they provided". Measured: a population where the platform
holds phones for some users and emails for others; each user learns
exactly which of their PII kinds the platform holds, and the provider's
stored state contains only SHA-256 digests.
"""

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.hashing import is_hashed
from repro.platform.pii import record_from_raw
from repro.platform.web import WebDirectory


def run_pii_experiment():
    platform = make_platform(name="e9", partner_count=25)
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=200.0)

    # 60 users; platform holds: phone for 0-39, email for 20-59.
    expected = {}
    users = []
    for index in range(60):
        user = platform.register_user()
        phone = f"617555{index:04d}"
        email = f"user{index}@e9.example"
        holds = set()
        if index < 40:
            platform.users.attach_pii(user.user_id, "phone", phone)
            holds.add("phone")
        if index >= 20:
            platform.users.attach_pii(user.user_id, "email", email)
            holds.add("email")
        provider.optin.via_page_like(user.user_id)
        provider.optin.submit_hashed_pii([
            record_from_raw("phone", phone),
            record_from_raw("email", email),
        ])
        expected[user.user_id] = holds
        users.append(user)

    launch = provider.launch_pii_reveals()
    provider.run_delivery()
    pack = provider.publish_decode_pack()

    correct = 0
    for user in users:
        profile = TreadClient(user.user_id, platform, pack).sync()
        if profile.pii_present == expected[user.user_id]:
            correct += 1

    all_hashed = all(
        is_hashed(record.digest)
        for kind in provider.optin.pii_kinds()
        for record in provider.optin.pii_batch(kind)
    )
    return launch, correct, len(users), all_hashed


def test_e9_pii(benchmark):
    launch, correct, total, all_hashed = benchmark.pedantic(
        run_pii_experiment, rounds=1, iterations=1
    )
    record_table(format_table(
        ("quantity", "paper", "measured"),
        [
            ("Treads run (one per PII kind batch)", 2, len(launch.treads)),
            ("users learning exactly their held PII kinds",
             f"{total}/{total}", f"{correct}/{total}"),
            ("provider stores only hashed PII", "yes (hashed form)",
             "yes" if all_hashed else "NO"),
        ],
        title="E9  PII reveals: hashed opt-in, exact per-user knowledge "
              "(sec 3.1)",
    ))
    assert len(launch.treads) == 2
    assert correct == total
    assert all_hashed
