"""A2 (ablation) — exclusion Treads: information vs cost.

Section 3.1 notes a Tread that *excludes* users with an attribute reveals
to its recipients that the attribute is "either set to false, or is
missing". Running the sweep WITH exclusion Treads answers every
attribute definitively for every user — but each user now receives one
impression per catalog attribute (set -> inclusion Tread, unset ->
exclusion Tread), so per-user cost grows from (attributes set) x CPM/1000
to (attributes total) x CPM/1000. This ablation measures both sides.
"""

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.platform.web import WebDirectory
from repro.workloads.competition import fixed_competition

ATTRS = 20
SET_PER_USER = 6
USERS = 10


def run_variant(include_exclusions):
    platform = make_platform(
        name=f"a2-{include_exclusions}", partner_count=25,
        competing_draw=fixed_competition(2.0),
    )
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=10.0,
                                    bid_cap_cpm=10.0)
    attrs = platform.catalog.partner_attributes()[:ATTRS]
    users = []
    for index in range(USERS):
        user = platform.register_user()
        for attr in attrs[index % 3:index % 3 + SET_PER_USER]:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        users.append(user)
    provider.launch_attribute_sweep(
        attrs, include_exclusions=include_exclusions
    )
    provider.run_delivery(max_rounds=100)
    pack = provider.publish_decode_pack()

    answered = 0
    exact = 0
    for user in users:
        profile = TreadClient(user.user_id, platform, pack).sync()
        decided = profile.set_attributes | profile.false_or_missing
        answered += len(decided & {a.attr_id for a in attrs})
        truth = {a.attr_id for a in attrs if user.has_attribute(a.attr_id)}
        if profile.set_attributes == truth:
            exact += 1
    return {
        "ads": len(provider.treads),
        "impressions": provider.total_impressions(),
        "spend": provider.total_spend(),
        "answered": answered,
        "exact": exact,
    }


def test_a2_exclusion(benchmark):
    plain = benchmark.pedantic(run_variant, args=(False,), rounds=1,
                               iterations=1)
    full = run_variant(True)
    questions = USERS * ATTRS
    rows = [
        ("ads run", plain["ads"], full["ads"]),
        ("impressions (user pays)", plain["impressions"],
         full["impressions"]),
        ("spend", f"${plain['spend']:.3f}", f"${full['spend']:.3f}"),
        ("attribute questions answered definitively",
         f"{plain['answered']}/{questions}",
         f"{full['answered']}/{questions}"),
        ("users with exact positive reveal", f"{plain['exact']}/{USERS}",
         f"{full['exact']}/{USERS}"),
    ]
    record_table(format_table(
        ("quantity", "inclusion only", "with exclusion Treads"),
        rows,
        title="A2  Ablation: exclusion Treads answer every attribute, at "
              "full-catalog cost (sec 3.1)",
    ))
    # inclusion-only answers exactly the set attributes
    assert plain["answered"] == USERS * SET_PER_USER
    # exclusions answer EVERYTHING
    assert full["answered"] == questions
    # and cost one impression per (user, attribute) plus controls
    assert full["impressions"] == USERS * (ATTRS + 1)
    assert plain["impressions"] == USERS * (SET_PER_USER + 1)
    assert plain["exact"] == full["exact"] == USERS
