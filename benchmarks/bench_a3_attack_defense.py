"""A3 (ablation) — the inference-attack/Treads tension (section 5).

The paper's privacy analysis assumes the platform "would not leak
information about individual users to advertisers" and that known leaks
(Korolova [21], Venkatadri et al. [36]) "will be patched". This ablation
measures what that patching costs Treads:

* the size-estimate attack is already dead (reach floor);
* the delivery/billing attack works on the undefended (2018-like)
  platform and dies under the ``min_delivery_match_count`` defense;
* the same defense silences Treads for opted-in groups smaller than the
  threshold — attack and mechanism exploit the same deliver-iff-match
  contract, so the defense knob trades one against the other.
"""

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.attacks import DeliveryInferenceAttack, SizeEstimateAttack
from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.platform.web import WebDirectory

VICTIM_EMAIL = "victim@example.com"
GROUP_SIZES = (2, 5, 10, 20, 50)
DEFENSE_THRESHOLD = 20


def _attack_run(min_match, has_attr, label):
    platform = make_platform(
        name=f"a3-{label}", partner_count=25,
        min_delivery_match_count=min_match,
    )
    victim = platform.register_user()
    platform.users.attach_pii(victim.user_id, "email", VICTIM_EMAIL)
    attr = platform.catalog.partner_attributes()[0]
    if has_attr:
        victim.set_attribute(attr)
    size_outcome = SizeEstimateAttack(platform, label=f"s-{label}").run(
        VICTIM_EMAIL, attr.attr_id, ground_truth=has_attr
    )
    delivery_outcome = DeliveryInferenceAttack(
        platform, label=f"d-{label}"
    ).run(VICTIM_EMAIL, attr.attr_id, ground_truth=has_attr)
    return size_outcome, delivery_outcome


def _treads_coverage(min_match, group_size):
    platform = make_platform(
        name=f"a3t-{min_match}-{group_size}", partner_count=25,
        min_delivery_match_count=min_match,
    )
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=100.0)
    attr = platform.catalog.partner_attributes()[0]
    users = []
    for _ in range(group_size):
        user = platform.register_user()
        user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        users.append(user)
    provider.launch_attribute_sweep([attr], include_control=False)
    provider.run_delivery()
    pack = provider.publish_decode_pack()
    revealed = sum(
        1 for user in users
        if attr.attr_id in TreadClient(user.user_id, platform,
                                       pack).sync().set_attributes
    )
    return revealed, group_size


def run_ablation():
    size_pos, delivery_pos = _attack_run(0, True, "undef-pos")
    _, delivery_pos_defended = _attack_run(DEFENSE_THRESHOLD, True,
                                           "def-pos")
    treads_rows = []
    for defended in (0, DEFENSE_THRESHOLD):
        for group in GROUP_SIZES:
            revealed, total = _treads_coverage(defended, group)
            treads_rows.append((defended, group, revealed, total))
    return size_pos, delivery_pos, delivery_pos_defended, treads_rows


def test_a3_attack_defense(benchmark):
    (size_pos, delivery_pos, delivery_pos_defended,
     treads_rows) = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    record_table(format_table(
        ("attack channel", "platform", "attacker learns victim's bit?"),
        [
            ("audience-size estimate", "2018 defaults",
             "no — " + size_pos.observable),
            ("delivery/billing probe", "2018 defaults (undefended)",
             "YES — " + delivery_pos.observable),
            ("delivery/billing probe",
             f"min-match defense ({DEFENSE_THRESHOLD})",
             "no — " + delivery_pos_defended.observable),
        ],
        title="A3  Single-victim inference attacks vs platform defenses "
              "(sec 5)",
    ))
    record_table(format_table(
        ("defense", "opted-in users w/ attribute", "Treads revealed"),
        [
            ("off" if defense == 0 else f"min-match {defense}",
             group, f"{revealed}/{total}")
            for defense, group, revealed, total in treads_rows
        ],
        title="A3b The defense's cost to Treads: coverage vs group size",
    ))

    assert size_pos.inferred_bit is None
    assert delivery_pos.inferred_bit is True and delivery_pos.correct
    assert delivery_pos_defended.inferred_bit is None
    by_key = {(d, g): (r, t) for d, g, r, t in treads_rows}
    # undefended: Treads always work
    for group in GROUP_SIZES:
        revealed, total = by_key[(0, group)]
        assert revealed == total
    # defended: silence below threshold, full coverage at/above it
    for group in GROUP_SIZES:
        revealed, total = by_key[(DEFENSE_THRESHOLD, group)]
        if group < DEFENSE_THRESHOLD:
            assert revealed == 0
        else:
            assert revealed == total
