"""CI trace-smoke validator: prove a ``--trace-out`` Chrome trace and
a ``--metrics-out`` Prometheus snapshot are real and connected.

Usage::

    python benchmarks/validate_trace.py <backend> <trace.json> <metrics.prom>

Checks, in order:

1. The trace file is a loadable Chrome trace-event JSON array of
   complete (``"ph": "X"``) events.
2. Every non-null ``parent_id`` resolves to a span in the same file —
   on the process backend that includes links that cross the process
   boundary (worker-origin child, parent-origin request span).
3. At least one SERVED request has its complete chain:
   ``serve.request`` with both ``serve.queue_wait`` and
   ``serve.engine`` children sharing its trace id.
4. On the process backend, engine spans carry a nonzero origin
   (rendered as distinct ``pid`` tracks), i.e. they were recorded in
   worker processes and merged over IPC.
5. The metrics snapshot carries the served counter and the telemetry
   poll counter (the streaming plane actually ran).

Exits non-zero with a message on the first failed check.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict


def fail(message: str) -> None:
    print(f"trace-smoke FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def main(argv) -> int:
    if len(argv) != 4:
        fail(f"usage: validate_trace.py <backend> <trace.json> "
             f"<metrics.prom> (got {argv[1:]})")
    backend, trace_path, metrics_path = argv[1], argv[2], argv[3]

    with open(trace_path, encoding="utf-8") as stream:
        events = json.load(stream)
    if not events:
        fail("chrome trace is empty")
    if not all(event.get("ph") == "X" for event in events):
        fail("trace carries non-complete (ph != 'X') events")

    span_ids = {event["args"]["span_id"] for event in events}
    dangling = [event for event in events
                if event["args"].get("parent_id") is not None
                and event["args"]["parent_id"] not in span_ids]
    if dangling:
        fail(f"{len(dangling)} events have unresolved parent_ids, "
             f"first: {dangling[0]['name']}")

    children = defaultdict(set)
    for event in events:
        parent = event["args"].get("parent_id")
        if parent is not None:
            children[parent].add(event["name"])
    requests = [event for event in events
                if event["name"] == "serve.request"]
    if not requests:
        fail("no serve.request spans in trace")
    complete = [
        event for event in requests
        if {"serve.queue_wait", "serve.engine"}
        <= children[event["args"]["span_id"]]
    ]
    if not complete:
        fail("no serve.request has a complete "
             "queue_wait + engine child chain")

    origins = sorted({event["pid"] for event in events})
    if backend == "process":
        engine_origins = {event["pid"] for event in events
                          if event["name"] == "serve.engine"}
        if engine_origins == {0}:
            fail("process backend but every serve.engine span has "
                 "origin 0 — nothing was merged across the boundary")

    with open(metrics_path, encoding="utf-8") as stream:
        text = stream.read()
    served = None
    polls = None
    for line in text.splitlines():
        if line.startswith("serve_requests_served "):
            served = float(line.split()[-1])
        elif line.startswith("serve_telemetry_polls "):
            polls = float(line.split()[-1])
    if not served:
        fail("metrics snapshot: serve_requests_served missing or zero")
    if not polls:
        fail("metrics snapshot: serve_telemetry_polls missing or zero "
             "— the streaming plane never ticked")

    print(f"trace-smoke OK [{backend}]: {len(events)} spans, "
          f"{len(complete)}/{len(requests)} complete request chains, "
          f"origins={origins}, served={served:.0f}, polls={polls:.0f}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
