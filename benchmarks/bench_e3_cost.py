"""E3 — the cost analysis (section 3.1, "Cost").

Paper figures: $0.002 per attribute at the recommended $2 CPM; $0.01 at
the validation's $10 CPM (footnote 4); $0.10 for a 50-attribute user;
zero for unset attributes; ~one impression per user for an m-valued
attribute. Measured two ways: the analytic model, and the realised cost
of an actual simulated campaign billed by the platform's ledger.
"""

import pytest

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.costs import CampaignCostSummary, CostModel
from repro.core.provider import TransparencyProvider
from repro.platform.web import WebDirectory
from repro.workloads.competition import fixed_competition


def run_measured_campaign(cpm_bid, competing_cpm, user_count, attrs_per_user):
    """A campaign billed at exactly the competing price (second-price
    auction with fixed competition just below the bid)."""
    platform = make_platform(
        name=f"e3-{cpm_bid}", partner_count=120,
        competing_draw=fixed_competition(competing_cpm),
    )
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=500.0,
                                    bid_cap_cpm=cpm_bid)
    partner = platform.catalog.partner_attributes()
    for _ in range(user_count):
        user = platform.register_user()
        for attr in partner[:attrs_per_user]:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
    provider.launch_partner_sweep()
    provider.run_delivery(max_rounds=300)
    return CampaignCostSummary(
        total_spend=provider.total_spend(),
        impressions=provider.total_impressions(),
        treads_launched=len(provider.treads),
        users_opted_in=user_count,
    )


def test_e3_cost(benchmark):
    summary = benchmark.pedantic(
        run_measured_campaign,
        kwargs=dict(cpm_bid=2.5, competing_cpm=2.0, user_count=4,
                    attrs_per_user=50),
        rounds=1, iterations=1,
    )
    model_default = CostModel(cpm=2.0)
    model_elevated = CostModel(cpm=10.0)
    expected_impressions = 4 * 51  # 50 attrs + control each

    rows = [
        ("per-attribute cost @ $2 CPM (model)", "$0.002",
         f"${model_default.per_attribute():.3f}"),
        ("per-attribute cost @ $10 CPM (model)", "$0.01",
         f"${model_elevated.per_attribute():.3f}"),
        ("50-attribute user @ $2 CPM (model)", "$0.10",
         f"${model_default.full_profile(50):.2f}"),
        ("unset attribute cost", "$0 (never shown)",
         f"${model_default.unset_attribute():.2f}"),
        ("campaign impressions (4 users x 50+1)", expected_impressions,
         summary.impressions),
        ("campaign effective CPM (2nd price at $2 market)", "$2.00",
         f"${summary.effective_cpm:.2f}"),
        ("campaign cost per user", "$0.102",
         f"${summary.cost_per_user:.3f}"),
    ]
    record_table(format_table(
        ("quantity", "paper", "measured"), rows,
        title="E3  Cost analysis (sec 3.1): model and measured campaign",
    ))
    assert model_default.per_attribute() == pytest.approx(0.002)
    assert model_elevated.per_attribute() == pytest.approx(0.01)
    assert summary.impressions == expected_impressions
    assert summary.effective_cpm == pytest.approx(2.0)
    # 50 attrs + control, at the $2 market price
    assert summary.cost_per_user == pytest.approx(51 * 0.002)


def test_e3_zero_cost_for_unset_attributes(benchmark):
    """A user with NO partner attributes generates exactly one impression
    (the control) no matter how many Treads the sweep runs."""
    def run():
        platform = make_platform(name="e3z", partner_count=120,
                                 competing_draw=fixed_competition(2.0))
        web = WebDirectory()
        provider = TransparencyProvider(platform, web, budget=100.0,
                                        bid_cap_cpm=10.0)
        user = platform.register_user()
        provider.optin.via_page_like(user.user_id)
        provider.launch_partner_sweep()
        provider.run_delivery(max_rounds=300)
        return provider

    provider = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(format_table(
        ("quantity", "paper", "measured"),
        [
            ("Treads run", 121, len(provider.treads)),
            ("impressions billed for unprofiled user", 1,
             provider.total_impressions()),
            ("spend on the 120 unset attributes", "$0",
             f"${provider.total_spend() - 0.002:.4f} + control"),
        ],
        title="E3b Zero cost for unset attributes (sec 3.1)",
    ))
    assert provider.total_impressions() == 1
