"""E10 — custom attributes via per-attribute pixel opt-in (section 3.1).

Paper: for attributes outside the pre-selected list, the provider gives
each attribute "a distinct web-page on which they have placed a distinct
tracking pixel", and runs a Tread targeting "the audience of visitors to
this page ... who also have the corresponding attribute" — users stay
anonymous to the provider throughout. Measured: 30 custom attributes,
100 users with random interest subsets, per-attribute opt-in by 25+ users
each; every opted-in user learns exactly their matching custom attrs, and
the provider's web logs contain no platform identities.
"""

import random

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.client import TreadClient
from repro.core.provider import TransparencyProvider
from repro.platform.web import WebDirectory

CUSTOM_COUNT = 30
USER_COUNT = 100


def run_custom_experiment():
    platform = make_platform(name="e10", partner_count=25)
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=500.0)
    rng = random.Random(47)

    pool = [a for a in platform.catalog.platform_attributes()
            if a.is_binary][:CUSTOM_COUNT]
    labels = {a.attr_id: f"custom search: {a.name}" for a in pool}

    users, expected = [], {}
    for _ in range(USER_COUNT):
        user = platform.register_user()
        browser = platform.browser_for(user.user_id)
        mine = set()
        for attr in pool:
            if rng.random() < 0.3:
                user.set_attribute(attr)
            # independent decision to opt into learning this attribute
            if rng.random() < 0.6:
                provider.optin.via_custom_pixel(browser, labels[attr.attr_id])
                if user.has_attribute(attr.attr_id):
                    mine.add(labels[attr.attr_id])
        users.append(user)
        expected[user.user_id] = mine

    launched = 0
    for attr in pool:
        report = provider.launch_custom_attribute(
            labels[attr.attr_id], f"attr:{attr.attr_id}"
        )
        launched += len(report.launched)
    provider.run_delivery(max_rounds=100)

    pack = provider.publish_decode_pack()
    correct = sum(
        1 for user in users
        if TreadClient(user.user_id, platform, pack).sync().custom_matches
        == expected[user.user_id]
    )
    log_blob = str(provider.website.access_log)
    anonymous = not any(u.user_id in log_blob for u in users)
    return launched, correct, anonymous


def test_e10_custom(benchmark):
    launched, correct, anonymous = benchmark.pedantic(
        run_custom_experiment, rounds=1, iterations=1
    )
    record_table(format_table(
        ("quantity", "paper", "measured"),
        [
            ("custom-attribute Treads launched", CUSTOM_COUNT, launched),
            ("users learning exactly their matches",
             f"{USER_COUNT}/{USER_COUNT}", f"{correct}/{USER_COUNT}"),
            ("users anonymous in provider web logs", "yes (pixel opt-in)",
             "yes" if anonymous else "NO"),
        ],
        title="E10 Custom attributes via per-attribute pixels (sec 3.1)",
    ))
    assert launched == CUSTOM_COUNT
    assert correct == USER_COUNT
    assert anonymous
