"""Telemetry-plane overhead: streaming + tracing vs the plane at rest.

Three arms of the identical saturation drive (process backend, fixed
request sequence, identically seeded worlds), interleaved, best-of-N:

- **off** — telemetry streaming disabled (``telemetry_interval_s=None``)
  and the ambient ``NULL_TRACER``. This is the default serving mode;
  its distance from the pre-telemetry tree is the "no-op" budget
  (<= ~3%) recorded in ``benchmarks/perf_trajectory.json``.
- **streaming** — 100 ms worker polls into the runtime's time-series
  buffer (the ``repro top`` / ``--metrics-out`` mode). Budget: <= ~8%
  over the off arm on the reference container.
- **tracing** — a live ``Tracer``, so every request grows its
  admission -> queue -> engine span chain and worker spans merge back
  over IPC. Opt-in mode; recorded, not budgeted.

Wall clock covers only the drive (world build excluded). The hard
assertions are deliberately looser than the recorded budgets so shared
CI runners don't flake, while real regressions (per-request span cost
with tracing *off*, a poll loop that blocks admission) still fail.
"""

from __future__ import annotations

import time

from benchmarks.conftest import record_table
from benchmarks.bench_perf_throughput import _serving_world
from repro.analysis.tables import format_table
from repro.obs import tracing as _tracing
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.serve import (
    AdRequest,
    KeyedCompetition,
    RuntimeConfig,
    ServingRuntime,
)

USERS = 150
ROUNDS = 24
SLOTS = 2
SHARDS = 2
BEST_OF = 3
STREAM_INTERVAL_S = 0.1


def _drive(arm: str, telemetry_interval_s=None, traced=False):
    """One saturation run; returns (wall_s, registry, tracer, samples)."""
    registry = MetricsRegistry(f"bench-telemetry-{arm}")
    tracer = _tracing.Tracer() if traced else _tracing.NULL_TRACER
    with use_registry(registry), _tracing.use_tracer(tracer):
        platform = _serving_world(f"telemetry-{arm}", users=USERS)
        runtime = ServingRuntime(
            platform,
            RuntimeConfig(num_shards=SHARDS, backend="process",
                          queue_capacity=8192, max_batch=64,
                          telemetry_interval_s=telemetry_interval_s),
            competition=KeyedCompetition(seed=7),
        )
        requests = [
            AdRequest(user_id=user_id, slots=SLOTS)
            for _ in range(ROUNDS)
            for user_id in sorted(platform.users.user_ids())
        ]
        with runtime:
            start = time.perf_counter()
            results = runtime.serve_and_wait(requests, timeout=300.0)
            wall_s = time.perf_counter() - start
        samples = runtime.telemetry.appended
    served = sum(1 for result in results if result.ok)
    assert served == len(requests), f"{arm} arm must fully serve"
    return wall_s, registry, tracer, samples


def test_telemetry_overhead_within_budget():
    walls = {"off": [], "streaming": [], "tracing": []}
    last = {}
    for _ in range(BEST_OF):
        for arm, kwargs in (
            ("off", {}),
            ("streaming", {"telemetry_interval_s": STREAM_INTERVAL_S}),
            ("tracing", {"traced": True}),
        ):
            wall_s, registry, tracer, samples = _drive(arm, **kwargs)
            walls[arm].append(wall_s)
            last[arm] = (registry, tracer, samples)

    requests = USERS * ROUNDS
    off = min(walls["off"])
    streaming = min(walls["streaming"])
    tracing = min(walls["tracing"])
    record_table(format_table(
        ("arm", f"best of {BEST_OF} (s)", "req/s", "vs off"),
        [
            ("telemetry off", f"{off:.4f}",
             f"{requests / off:.0f}", "1.000x"),
            (f"streaming {STREAM_INTERVAL_S * 1000:.0f}ms",
             f"{streaming:.4f}", f"{requests / streaming:.0f}",
             f"{streaming / off:.3f}x"),
            ("tracing on", f"{tracing:.4f}",
             f"{requests / tracing:.0f}", f"{tracing / off:.3f}x"),
        ],
        title=f"OBS — telemetry plane overhead, {USERS} users x "
              f"{ROUNDS} rounds, process backend x{SHARDS}",
    ))

    # Each arm did what its mode promises.
    off_registry, off_tracer, off_samples = last["off"]
    assert off_registry.value("serve.requests_served") == requests
    assert off_samples == 0, "off arm must stream nothing mid-run"
    assert list(off_tracer.spans) == []

    stream_registry, _, stream_samples = last["streaming"]
    assert stream_samples >= 1, "streaming arm never sampled"
    assert stream_registry.value("serve.telemetry_polls") >= 1

    _, traced_tracer, _ = last["tracing"]
    names = {span.name for span in traced_tracer.spans}
    assert {"serve.request", "serve.queue_wait", "serve.engine"} <= names
    assert any(span.span_id >> _tracing.ORIGIN_SHIFT
               for span in traced_tracer.spans
               if span.name == "serve.engine"), (
        "no engine span carried a worker origin — cross-process "
        "merge is broken")

    # Loose ceilings (recorded budgets: streaming <= ~1.08x; see
    # perf_trajectory.json). A blocking poll loop or per-request
    # tracing cost in the off arm trips these even on noisy runners.
    assert streaming / off < 1.5, (
        f"100ms streaming cost {streaming / off:.2f}x the quiet plane")
    assert tracing / off < 2.5, (
        f"tracing cost {tracing / off:.2f}x the quiet plane")
