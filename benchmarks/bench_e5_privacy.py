"""E5 — the privacy analysis (section 3.1, "Privacy analysis").

Paper claims, measured on a 200-user campaign:

1. the provider CAN estimate how many opted-in users have each attribute
   (aggregate counts accurate);
2. the provider CANNOT learn which users have which attributes — its
   best aggregate-only inference attack has zero advantage over the
   trivial baseline;
3. with in-ad placement there is no provider-side channel at all; with
   landing pages, the provider's first-party cookies link a clicking
   user's Treads together — unless cookies are cleared (the paper's
   mitigation), which collapses every linkage profile to one visit.

Ablation: quantizing reported reach (the platform's aggregation knob)
degrades the provider's aggregate estimates but the individual-level
attack stays at zero advantage either way.
"""

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.client import TreadClient
from repro.core.privacy import (
    AggregateKnowledge,
    aggregate_inference_attack,
    landing_page_linkage,
    reach_quantization_error,
)
from repro.core.provider import TransparencyProvider
from repro.core.treads import Placement
from repro.platform.reporting import ReportingConfig
from repro.platform.web import WebDirectory
from repro.workloads.personas import AVERAGE_CONSUMER
from repro.workloads.population import (
    PopulationBuilder,
    ground_truth_partner_attrs,
)


def _campaign(reach_quantum=1, users=200, partner_count=60):
    platform = make_platform(
        name=f"e5q{reach_quantum}", partner_count=partner_count,
        reporting=ReportingConfig(reach_quantum=reach_quantum),
    )
    web = WebDirectory()
    builder = PopulationBuilder(platform, seed=23)
    population = builder.spawn(AVERAGE_CONSUMER, users)
    builder.finalize()
    provider = TransparencyProvider(platform, web, budget=2000.0)
    for user in population:
        provider.optin.via_page_like(user.user_id)
    provider.launch_partner_sweep()
    provider.run_delivery(max_rounds=200)
    return platform, provider, population


def run_privacy():
    platform, provider, population = _campaign()
    user_ids = [u.user_id for u in population]
    counts = provider.aggregate_attribute_counts()
    truth_by_user = ground_truth_partner_attrs(platform, user_ids)
    true_counts = {}
    truth_by_attr = {}
    for user_id, attrs in truth_by_user.items():
        for attr_id in attrs:
            truth_by_attr.setdefault(attr_id, set()).add(user_id)
            true_counts[attr_id] = true_counts.get(attr_id, 0) + 1
    knowledge = AggregateKnowledge(optin_count=len(user_ids),
                                   attribute_counts=counts)
    attack = aggregate_inference_attack(knowledge, user_ids, truth_by_attr)
    count_error = reach_quantization_error(true_counts, counts)
    return attack, count_error


def run_quantization_ablation():
    platform, provider, population = _campaign(reach_quantum=10, users=120)
    user_ids = [u.user_id for u in population]
    counts = provider.aggregate_attribute_counts()
    truth_by_user = ground_truth_partner_attrs(platform, user_ids)
    true_counts = {}
    for attrs in truth_by_user.values():
        for attr_id in attrs:
            true_counts[attr_id] = true_counts.get(attr_id, 0) + 1
    return reach_quantization_error(true_counts, counts)


def run_cookie_linkage():
    """Landing-page placement: sticky cookies vs the clear-cookies
    mitigation."""
    def one(clear_cookies):
        platform = make_platform(name=f"e5c{clear_cookies}",
                                 partner_count=25)
        web = WebDirectory()
        provider = TransparencyProvider(platform, web, budget=100.0,
                                        placement=Placement.LANDING_PAGE)
        attrs = platform.catalog.partner_attributes()[:10]
        user = platform.register_user()
        for attr in attrs:
            user.set_attribute(attr)
        provider.optin.via_page_like(user.user_id)
        provider.launch_attribute_sweep(attrs)
        provider.run_delivery()
        browser = platform.browser_for(user.user_id)
        client = TreadClient(
            user.user_id, platform, provider.publish_decode_pack(),
            web=web, browser=browser, follow_landing=True,
            clear_cookies_first=clear_cookies,
        )
        client.sync()
        paths = [t.landing_path for t in provider.treads if t.landing_path]
        return landing_page_linkage(provider.website, paths)

    return one(clear_cookies=False), one(clear_cookies=True)


def test_e5_privacy(benchmark):
    attack, count_error = benchmark.pedantic(run_privacy, rounds=1,
                                             iterations=1)
    sticky, cleared = run_cookie_linkage()
    ablated_error = run_quantization_ablation()
    rows = [
        ("aggregate counts accurate (MAE)", "yes (exact reports)",
         f"MAE = {count_error:.2f}"),
        ("individual attack advantage over baseline", "0 (cannot learn "
         "which users)", f"{attack.advantage:+.4f}"),
        ("attack accuracy / baseline", "equal",
         f"{attack.attack_accuracy:.3f} / {attack.baseline_accuracy:.3f}"),
        ("landing-page linkage, sticky cookie", "profile of all visits",
         f"largest profile = {sticky.largest_profile}"),
        ("landing-page linkage, cookies cleared", "unlinkable",
         f"largest profile = {cleared.largest_profile}"),
        ("ablation: reach quantized to 10 (MAE)", "estimates coarsen",
         f"MAE = {ablated_error:.2f}"),
    ]
    record_table(format_table(
        ("quantity", "paper", "measured"), rows,
        title="E5  Privacy: provider learns aggregates, not individuals "
              "(sec 3.1)",
    ))
    assert abs(attack.advantage) < 1e-9
    assert count_error == 0.0
    assert sticky.largest_profile == 11  # 10 attrs + landing control
    assert cleared.largest_profile == 1
    assert ablated_error > 0.0
