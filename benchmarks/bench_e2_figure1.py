"""E2 — Figure 1: explicit vs obfuscated Treads for "net worth over $2M".

Figure 1a shows a Tread explicitly revealing its targeting; Figure 1b
shows the same Tread obfuscated, "encoding the parameter as part of the
ad ('2,830,120')". The measured claims: the explicit rendering asserts a
personal attribute and fails the platform's ToS review, the obfuscated
one passes review AND still decodes exactly client-side, and both carry
the same underlying payload.
"""

from benchmarks.conftest import make_platform, record_table
from repro.analysis.tables import format_table
from repro.core.client import TreadClient
from repro.core.codebook import Codebook
from repro.core.creative import render
from repro.core.provider import TransparencyProvider
from repro.core.treads import Encoding, Placement, RevealKind, RevealPayload
from repro.platform.web import WebDirectory


def run_figure1():
    platform = make_platform(name="e2")
    net_worth_2m = next(
        a for a in platform.catalog.partner_attributes()
        if "Over $2M" in a.name
    )
    payload = RevealPayload(
        kind=RevealKind.ATTRIBUTE_SET,
        attr_id=net_worth_2m.attr_id,
        display=net_worth_2m.name,
    )
    book = Codebook(salt="figure1")
    explicit = render(payload, Encoding.EXPLICIT, Placement.IN_AD_TEXT, book)
    obfuscated = render(payload, Encoding.CODEBOOK, Placement.IN_AD_TEXT,
                        book)
    explicit_review = platform.policy.review(explicit.creative)
    obfuscated_review = platform.policy.review(obfuscated.creative)

    # end-to-end check: the obfuscated Tread delivers and decodes
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=50.0)
    user = platform.register_user()
    user.set_attribute(net_worth_2m)
    provider.optin.via_page_like(user.user_id)
    provider.launch_attribute_sweep([net_worth_2m], include_control=False)
    provider.run_delivery()
    revealed = TreadClient(user.user_id, platform,
                           provider.publish_decode_pack()).sync()
    return (net_worth_2m, obfuscated, explicit_review, obfuscated_review,
            revealed)


def test_e2_figure1(benchmark):
    (attr, obfuscated, explicit_review, obfuscated_review,
     revealed) = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    token = obfuscated.token
    rows = [
        ("explicit Tread (Fig 1a) passes review", "no (ToS)",
         "yes" if explicit_review.approved else "no (ToS)"),
        ("obfuscated Tread (Fig 1b) passes review", "yes",
         "yes" if obfuscated_review.approved else "no"),
        ("obfuscated token format", "2,830,120-style", token),
        ("client decodes obfuscated Tread", "yes",
         "yes" if attr.attr_id in revealed.set_attributes else "no"),
    ]
    record_table(format_table(
        ("quantity", "paper", "measured"), rows,
        title="E2  Figure 1: explicit vs obfuscated net-worth-$2M+ Tread",
    ))
    assert not explicit_review.approved
    assert obfuscated_review.approved
    assert attr.attr_id in revealed.set_attributes
