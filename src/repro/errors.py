"""Exception hierarchy for the Treads reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch package failures with a single ``except`` clause while
still distinguishing platform-side rejections (e.g. a creative failing ad
review) from caller bugs (e.g. targeting an attribute that does not exist).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CatalogError(ReproError):
    """An attribute or attribute value was not found in a catalog."""


class TargetingError(ReproError):
    """A targeting specification is malformed or references unknown data."""


class TargetingSyntaxError(TargetingError):
    """The compact targeting-spec string could not be parsed."""


class AudienceError(ReproError):
    """An audience operation failed (unknown audience, wrong owner, ...)."""


class AudienceTooSmallError(AudienceError):
    """The platform refused an audience below its minimum-size gate.

    Real platforms refuse to run ads against very small custom audiences to
    make single-user targeting harder; the simulator enforces the same gate.
    """


class AccountError(ReproError):
    """An ad-account operation failed (unknown account, not authorised)."""


class BudgetError(ReproError):
    """An ad account has insufficient budget for the requested spend."""


class PolicyViolationError(ReproError):
    """A creative was rejected by the platform's ToS review.

    The paper (section 4) quotes the relevant policy text: ads "must not
    contain content that asserts or implies personal attributes".
    """

    def __init__(self, message: str, rule_id: str = "personal-attributes"):
        super().__init__(message)
        self.rule_id = rule_id


class CampaignError(ReproError):
    """A campaign operation failed (paused campaign, unknown ad, ...)."""


class PIIError(ReproError):
    """A PII record is malformed or was submitted unhashed where hashes
    are required."""


class EncodingError(ReproError):
    """A Tread payload could not be encoded or decoded."""


class OptInError(ReproError):
    """An opt-in flow failed (duplicate opt-in, unknown user, ...)."""


class ProviderError(ReproError):
    """A transparency-provider operation failed."""


class StoreError(ReproError):
    """A state-store operation failed (corrupt journal, snapshot version
    mismatch, unknown record kind, owner-name clash, ...)."""
