"""Differential-correlation auditing (the XRay / Sunlight baseline).

Paper section 5: prior outside-in transparency systems "work by
correlating information about users with the ads that they see, in order
to determine whether ads are targeted and how. ... they can also be
challenging to deploy, requiring either a large diverse population to
sign-up ... or a large number of (fake) control accounts ... to make
statistically significant claims."

The auditor here is a faithful miniature of that methodology: it creates
``k`` control accounts whose attribute assignments it fully controls,
lets delivery run, and then — for each observed ad — infers the targeted
attribute as the one whose presence best separates receivers from
non-receivers. Benchmark E8 traces inference accuracy against ``k`` and
sets it beside Treads' exact, single-account reveal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.platform.attributes import Attribute
from repro.platform.platform import AdPlatform
from repro.platform.users import UserProfile


@dataclass(frozen=True)
class InferenceOutcome:
    """The auditor's verdict for one ad."""

    ad_id: str
    inferred_attr_id: Optional[str]
    #: Separation score of the winning hypothesis in [0, 1].
    confidence: float


class CorrelationAuditor:
    """An XRay/Sunlight-style auditor running fake control accounts."""

    def __init__(self, platform: AdPlatform, seed: int = 13):
        self._platform = platform
        self._rng = random.Random(seed)
        self.controls: List[UserProfile] = []
        #: Auditor-side ground truth: user_id -> set of planted attr ids.
        self.planted: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------

    def create_controls(
        self,
        count: int,
        attribute_pool: Sequence[Attribute],
        set_probability: float = 0.5,
    ) -> List[UserProfile]:
        """Create ``count`` fake accounts with random known attributes.

        Each control independently gets each pool attribute with
        ``set_probability`` — the randomized design the correlation test
        needs for identifiability.
        """
        created = []
        for _ in range(count):
            user = self._platform.register_user(
                age=self._rng.randint(21, 60),
                gender=self._rng.choice(("male", "female")),
            )
            mine: Set[str] = set()
            for attribute in attribute_pool:
                if self._rng.random() < set_probability:
                    user.set_attribute(attribute)
                    mine.add(attribute.attr_id)
            self.planted[user.user_id] = mine
            self.controls.append(user)
            created.append(user)
        return created

    # ------------------------------------------------------------------

    def receivers_of(self, ad_id: str) -> Set[str]:
        """Which control accounts saw an ad (auditor-observable: the
        auditor owns these accounts and reads their feeds)."""
        receivers = set()
        for control in self.controls:
            feed = self._platform.feed(control.user_id)
            if any(delivered.ad_id == ad_id for delivered in feed):
                receivers.add(control.user_id)
        return receivers

    def infer_targeting(
        self,
        ad_id: str,
        hypothesis_pool: Sequence[Attribute],
    ) -> InferenceOutcome:
        """Best-separating-attribute inference for one ad.

        For each hypothesis attribute, score how well "control received ad
        iff control has attribute" matches observations (balanced
        accuracy). Noise — auction losses among receivers-to-be — makes
        the rule imperfect, which is why few controls yield ambiguous
        verdicts.
        """
        receivers = self.receivers_of(ad_id)
        best_attr: Optional[str] = None
        best_score = -1.0
        for attribute in hypothesis_pool:
            have = {
                user_id for user_id, attrs in self.planted.items()
                if attribute.attr_id in attrs
            }
            lack = set(self.planted) - have
            true_pos = len(receivers & have)
            true_neg = len(lack - receivers)
            sensitivity = true_pos / len(have) if have else 0.0
            specificity = true_neg / len(lack) if lack else 0.0
            score = (sensitivity + specificity) / 2.0
            # Deterministic tie-break by id keeps runs reproducible; a tie
            # is genuine ambiguity and typically a wrong answer at small k.
            if score > best_score or (
                score == best_score
                and best_attr is not None
                and attribute.attr_id < best_attr
            ):
                best_attr = attribute.attr_id
                best_score = score
        return InferenceOutcome(
            ad_id=ad_id,
            inferred_attr_id=best_attr,
            confidence=max(best_score, 0.0),
        )

    def accuracy(
        self,
        ads_truth: Dict[str, str],
        hypothesis_pool: Sequence[Attribute],
    ) -> float:
        """Fraction of ads whose targeted attribute was inferred right.

        ``ads_truth`` maps ad_id -> truly targeted attr_id (experiment
        harness ground truth).
        """
        if not ads_truth:
            return 0.0
        correct = 0
        for ad_id, truth in ads_truth.items():
            outcome = self.infer_targeting(ad_id, hypothesis_pool)
            if outcome.inferred_attr_id == truth:
                correct += 1
        return correct / len(ads_truth)

    @property
    def accounts_used(self) -> int:
        """Deployment cost in fake accounts (Treads: one real account)."""
        return len(self.controls)

    def significance(self, ad_id: str, attr_id: str) -> float:
        """Fisher-exact p-value for "ad delivery depends on attribute".

        Sunlight's whole contribution (paper section 5) is attaching
        statistical confidence to such claims — which "requir[es] ... a
        large number of (fake) control accounts to make statistically
        significant claims". The 2x2 table is (has attribute) x (received
        ad) over the control population; with one or two controls the
        p-value cannot drop below conventional thresholds no matter how
        clean the data, which is exactly the deployment-cost point.
        """
        from scipy.stats import fisher_exact

        receivers = self.receivers_of(ad_id)
        have = {user_id for user_id, attrs in self.planted.items()
                if attr_id in attrs}
        lack = set(self.planted) - have
        table = [
            [len(receivers & have), len(have - receivers)],
            [len(receivers & lack), len(lack - receivers)],
        ]
        _, p_value = fisher_exact(table, alternative="greater")
        return float(p_value)

    def significant_inferences(
        self,
        ads_truth: Dict[str, str],
        hypothesis_pool: Sequence[Attribute],
        alpha: float = 0.05,
    ) -> int:
        """How many ads get a CORRECT inference that is also significant
        at level ``alpha`` — the Sunlight-style success criterion."""
        count = 0
        for ad_id, truth in ads_truth.items():
            outcome = self.infer_targeting(ad_id, hypothesis_pool)
            if outcome.inferred_attr_id != truth:
                continue
            if self.significance(ad_id, truth) <= alpha:
                count += 1
        return count
