"""The status-quo baseline: platform-driven transparency only.

What can a user learn *without* Treads? Exactly two surfaces (paper
section 2.2):

1. the **ad-preferences page** — their platform-computed attributes (never
   the partner/data-broker ones) and the advertisers holding them in
   custom audiences;
2. the **per-ad explanations** of ads they happened to receive — at most
   one (platform-sourced, most-prevalent) attribute each.

:func:`status_quo_view` aggregates both into the same "set of revealed
attribute ids" shape the Treads client produces, so
:mod:`repro.analysis.metrics` can score the two mechanisms head-to-head
(benchmark E12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.platform.platform import AdPlatform


@dataclass
class StatusQuoView:
    """Everything platform-driven transparency shows one user."""

    user_id: str
    #: Attribute ids from the ad-preferences page.
    preferences_attributes: Set[str] = field(default_factory=set)
    #: Attribute ids surfaced by explanations of received ads.
    explanation_attributes: Set[str] = field(default_factory=set)
    #: Advertiser accounts disclosed as holding the user in audiences.
    advertisers: Set[str] = field(default_factory=set)

    @property
    def revealed_attributes(self) -> Set[str]:
        return self.preferences_attributes | self.explanation_attributes


def status_quo_view(platform: AdPlatform, user_id: str) -> StatusQuoView:
    """Collect what the platform's own surfaces reveal to one user.

    The user checks their ad-preferences page and clicks "Why am I seeing
    this?" on every ad in their feed — the maximal status-quo effort.
    """
    view = StatusQuoView(user_id=user_id)
    preferences = platform.ad_preferences_for(user_id)
    view.preferences_attributes = set(preferences.shown_attribute_ids)
    view.advertisers = set(preferences.advertisers_with_custom_audiences)
    for delivered in platform.feed(user_id):
        explanation = platform.explain_ad(user_id, delivered.ad_id)
        if explanation.revealed_attribute is not None:
            view.explanation_attributes.add(explanation.revealed_attribute)
    return view


def status_quo_views(
    platform: AdPlatform, user_ids: Sequence[str]
) -> Dict[str, StatusQuoView]:
    return {
        user_id: status_quo_view(platform, user_id) for user_id in user_ids
    }
