"""Baselines Treads is compared against.

* :mod:`~repro.baselines.platform_transparency` — the status quo: what a
  user learns from the platform's own ad-preferences page and per-ad
  explanations (section 2.2; incomplete by construction).
* :mod:`~repro.baselines.correlation` — outside-in auditing in the style
  of XRay / Sunlight (section 5): correlate ad deliveries across many
  control accounts to infer targeting; needs a large account population
  for statistical confidence, where Treads need one advertiser account.
"""

from repro.baselines.correlation import CorrelationAuditor
from repro.baselines.platform_transparency import status_quo_view

__all__ = ["CorrelationAuditor", "status_quo_view"]
