"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``catalog stats``
    Catalog composition (the 614 + 507 split, per-source, per-broker).
``catalog search <keyword>``
    Keyword search over the advertiser-facing catalog, like the ads UI.
``demo``
    The quickstart scenario: one user, full partner sweep, decoded reveal.
``validate``
    The paper's section 3.1 validation (two authors, 507 Treads, $10 CPM)
    with the paper-vs-measured summary table.
``cost``
    The section 3.1 cost table for a given CPM and attribute counts.
``scale``
    Enumeration-vs-bit-split ad counts for m-valued attributes.
``attack``
    The section 5 single-victim inference probe, with and without the
    narrow-targeting defense, plus the defense's cost to Treads.
``stats``
    Run a scenario against a fresh metrics registry and dump every
    instrument (table, Prometheus text format, or JSONL).
``serve``
    Start the sharded serving runtime over a persona-mix world and
    drive it with generated traffic for a fixed duration; prints the
    outcome tally, latency quantiles, and per-shard balance.
``loadgen``
    The same world and runtime, reported from the load generator's
    side: offered vs achieved RPS, shed/timeout counts, and optionally
    the full latency histogram as JSON (``--histogram-out``).

Global flags: ``-v`` / ``-vv`` attach a stderr handler to the
``repro.*`` loggers (INFO / DEBUG); ``--version`` prints the package
version; ``--trace-out FILE`` on the delivery-running commands
(``demo``, ``validate``, ``stats``, ``serve``, ``loadgen``) writes span
JSONL for the run.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import logging
import sys
from typing import List, Optional, Sequence, Tuple

from repro import __version__
from repro.analysis.tables import format_table
from repro.obs import export as obs_export
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.tracing import Tracer, use_tracer
from repro.core.bitsplit import bits_needed, treads_needed_enumeration
from repro.core.client import TreadClient
from repro.core.costs import CostModel
from repro.core.provider import TransparencyProvider
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.serve import (
    KeyedCompetition,
    LoadConfig,
    LoadGenerator,
    LoadReport,
    RuntimeConfig,
    ServingRuntime,
)
from repro.workloads.competition import lognormal_competition
from repro.workloads.personas import (
    AVERAGE_CONSUMER,
    ESTABLISHED_PROFESSIONAL,
    RECENT_ARRIVAL_GRAD_STUDENT,
)
from repro.workloads.population import PopulationBuilder


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Treads (HotNets 2018) reproduction: transparency-enhancing "
            "ads on a simulated ad platform."
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log repro.* to stderr (-v INFO, -vv DEBUG)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    catalog = commands.add_parser("catalog", help="inspect the attribute "
                                                  "catalog")
    catalog_sub = catalog.add_subparsers(dest="catalog_command",
                                         required=True)
    catalog_sub.add_parser("stats", help="catalog composition")
    search = catalog_sub.add_parser("search", help="keyword search")
    search.add_argument("keyword")
    search.add_argument("--limit", type=int, default=15)

    demo = commands.add_parser("demo", help="quickstart scenario")
    _add_trace_out(demo)

    validate = commands.add_parser(
        "validate", help="the paper's section 3.1 validation"
    )
    validate.add_argument("--seed", type=int, default=7)
    validate.add_argument("--bid-cpm", type=float, default=10.0)
    _add_trace_out(validate)

    stats = commands.add_parser(
        "stats", help="run a scenario and dump its metrics"
    )
    stats.add_argument("--scenario", choices=("demo", "validate"),
                       default="demo")
    stats.add_argument("--format", dest="stats_format",
                       choices=("table", "prometheus", "jsonl"),
                       default="table")
    _add_trace_out(stats)

    cost = commands.add_parser("cost", help="section 3.1 cost table")
    cost.add_argument("--cpm", type=float, default=2.0)
    cost.add_argument("--attributes", type=int, nargs="+",
                      default=[1, 10, 50, 100])

    scale = commands.add_parser("scale", help="section 3.1 scale table")
    scale.add_argument("--m", type=int, nargs="+",
                       default=[2, 8, 97, 1000, 4096])

    attack = commands.add_parser(
        "attack", help="section 5 inference attack vs defenses"
    )
    attack.add_argument("--defense-threshold", type=int, default=20)

    serve = commands.add_parser(
        "serve", help="run the sharded serving runtime under generated "
                      "traffic"
    )
    loadgen = commands.add_parser(
        "loadgen", help="open-loop load generation against the serving "
                        "runtime"
    )
    for sub in (serve, loadgen):
        sub.add_argument("--shards", type=int, default=4,
                         help="user shards (engines + queues)")
        sub.add_argument("--workers", type=int, default=1,
                         help="worker threads per shard (1 = "
                              "deterministic replay)")
        sub.add_argument("--duration", type=float, default=2.0,
                         help="offered-load duration, seconds")
        sub.add_argument("--rps", type=float,
                         default=200.0 if sub is serve else 500.0,
                         help="target offered load, requests/second")
        sub.add_argument("--users", type=int, default=200,
                         help="persona-mix population size")
        sub.add_argument("--seed", type=int, default=42,
                         help="seed for population, arrivals, and "
                              "competing bids")
        sub.add_argument("--slots", type=int, default=1,
                         help="ad slots per request")
        sub.add_argument("--deadline-ms", type=float, default=None,
                         help="per-request latency budget; stale "
                              "requests TIMEOUT unserved")
        sub.add_argument("--queue-capacity", type=int, default=256,
                         help="bounded per-shard queue; overflow is "
                              "SHED")
        _add_trace_out(sub)
    loadgen.add_argument("--histogram-out", metavar="FILE", default=None,
                        help="write the latency histogram + tally JSON "
                             "to FILE")
    return parser


def _add_trace_out(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write span JSONL for this run to FILE",
    )


def _configure_logging(verbosity: int) -> None:
    """Attach a stderr handler to the ``repro`` logger tree.

    Idempotent: the handler is tagged so repeated ``main()`` calls in
    one process (the test suite) adjust the level instead of stacking
    duplicate handlers. Verbosity 0 leaves the library silent.
    """
    if verbosity <= 0:
        return
    logger = logging.getLogger("repro")
    handler = next(
        (h for h in logger.handlers
         if getattr(h, "_repro_cli_handler", False)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        handler._repro_cli_handler = True
        logger.addHandler(handler)
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    handler.setLevel(level)
    logger.setLevel(level)


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------

def _cmd_catalog_stats() -> int:
    catalog = build_us_catalog()
    partner = catalog.partner_attributes()
    platform_attrs = catalog.platform_attributes()
    by_broker: dict = {}
    for attribute in partner:
        by_broker[attribute.broker] = by_broker.get(attribute.broker, 0) + 1
    rows = [
        ("platform-computed attributes", len(platform_attrs)),
        ("  of which multi-valued",
         sum(1 for a in platform_attrs if not a.is_binary)),
        ("partner (data-broker) attributes", len(partner)),
    ]
    rows += [(f"  from {broker}", count)
             for broker, count in sorted(by_broker.items())]
    rows.append(("total", len(catalog)))
    print(format_table(("segment", "attributes"), rows,
                       title="US targeting catalog (early-2018 shape)"))
    return 0


def _cmd_catalog_search(keyword: str, limit: int) -> int:
    catalog = build_us_catalog()
    hits = catalog.search(keyword)
    if not hits:
        print(f"no attributes match {keyword!r}")
        return 1
    rows = [
        (a.attr_id, a.name, a.source.value,
         a.broker or "-")
        for a in hits[:limit]
    ]
    print(format_table(("id", "name", "source", "broker"), rows,
                       title=f"{len(hits)} match(es) for {keyword!r}"))
    if len(hits) > limit:
        print(f"... and {len(hits) - limit} more (raise --limit)")
    return 0


def _cmd_demo() -> int:
    platform = AdPlatform()
    web = WebDirectory()
    user = platform.register_user(age=34)
    hidden = ["pc-networth-006", "pc-jobrole-000", "pc-autointent-007"]
    for attr_id in hidden:
        user.set_attribute(platform.catalog.get(attr_id))
    provider = TransparencyProvider(platform, web, budget=100.0,
                                    bid_cap_cpm=10.0)
    provider.optin.via_page_like(user.user_id)
    provider.launch_partner_sweep()
    provider.run_delivery()
    profile = TreadClient(user.user_id, platform,
                          provider.publish_decode_pack()).sync()
    print("ad-preferences page shows: "
          f"{len(platform.ad_preferences_for(user.user_id).shown_attributes)}"
          " attributes (partner data hidden)")
    print(f"Treads revealed {len(profile.set_attributes)}:")
    for attr_id in sorted(profile.set_attributes):
        print(f"  - {platform.catalog.get(attr_id).name}")
    print(f"spend: ${provider.total_spend():.4f} for "
          f"{provider.total_impressions()} impressions")
    return 0 if profile.set_attributes == set(hidden) else 1


def _cmd_validate(seed: int, bid_cpm: float) -> int:
    platform = AdPlatform(
        config=PlatformConfig(name="fbsim"),
        competing_draw=lognormal_competition(median_cpm=2.0, seed=seed),
    )
    web = WebDirectory()
    builder = PopulationBuilder(platform, seed=seed)
    profiled = builder.spawn(ESTABLISHED_PROFESSIONAL, 1)[0]
    unprofiled = builder.spawn(RECENT_ARRIVAL_GRAD_STUDENT, 1)[0]
    builder.finalize()
    provider = TransparencyProvider(platform, web, budget=500.0,
                                    bid_cap_cpm=bid_cpm)
    provider.optin.via_page_like(profiled.user_id)
    provider.optin.via_page_like(unprofiled.user_id)
    launch = provider.launch_partner_sweep()
    provider.run_delivery(max_rounds=200)
    pack = provider.publish_decode_pack()
    reveal_a = TreadClient(profiled.user_id, platform, pack).sync()
    reveal_b = TreadClient(unprofiled.user_id, platform, pack).sync()
    truth_a = {a for a in profiled.binary_attrs if a.startswith("pc-")}
    rows = [
        ("Treads run", 508, len(launch.treads)),
        ("profiled author reveals", "11 (paper)",
         len(reveal_a.set_attributes)),
        ("profiled author exact vs ground truth", "yes",
         "yes" if reveal_a.set_attributes == truth_a else "NO"),
        ("unprofiled author reveals", 0, len(reveal_b.set_attributes)),
        ("both received control", "yes",
         "yes" if reveal_a.control_received and reveal_b.control_received
         else "NO"),
        ("total spend", "(2nd-price)",
         f"${provider.total_spend():.4f}"),
    ]
    print(format_table(("quantity", "paper", "measured"), rows,
                       title=f"Section 3.1 validation (seed {seed}, "
                             f"bid ${bid_cpm:.0f} CPM)"))
    ok = (reveal_a.set_attributes == truth_a
          and not reveal_b.set_attributes
          and reveal_a.control_received and reveal_b.control_received)
    return 0 if ok else 1


def _cmd_cost(cpm: float, attribute_counts: Sequence[int]) -> int:
    model = CostModel(cpm=cpm)
    rows = [("one attribute", f"${model.per_attribute():.4f}")]
    rows += [
        (f"user with {count} set attributes",
         f"${model.full_profile(count):.4f}")
        for count in attribute_counts
    ]
    rows.append(("any unset attribute", "$0.0000 (never delivered)"))
    print(format_table(("reveal", "cost"), rows,
                       title=f"Treads cost at ${cpm:.2f} CPM (sec 3.1)"))
    return 0


def _cmd_scale(ms: Sequence[int]) -> int:
    rows = [
        (m, treads_needed_enumeration(m), bits_needed(m))
        for m in ms
    ]
    print(format_table(
        ("m (values)", "enumeration ads", "bit-split ads (ceil log2 m)"),
        rows, title="Treads needed per m-valued attribute (sec 3.1)",
    ))
    return 0


def _cmd_attack(defense_threshold: int) -> int:
    from repro.attacks import DeliveryInferenceAttack, SizeEstimateAttack
    from repro.workloads.competition import zero_competition

    def fresh(min_match):
        platform = AdPlatform(
            config=PlatformConfig(name=f"cli-atk{min_match}",
                                  min_delivery_match_count=min_match),
            catalog=build_us_catalog(60, 30),
            competing_draw=zero_competition(),
        )
        victim = platform.register_user()
        platform.users.attach_pii(victim.user_id, "email",
                                  "victim@example.com")
        attr = platform.catalog.partner_attributes()[0]
        victim.set_attribute(attr)
        return platform, attr

    platform, attr = fresh(0)
    size = SizeEstimateAttack(platform).run(
        "victim@example.com", attr.attr_id, ground_truth=True
    )
    delivery = DeliveryInferenceAttack(platform).run(
        "victim@example.com", attr.attr_id, ground_truth=True
    )
    patched_platform, patched_attr = fresh(defense_threshold)
    patched = DeliveryInferenceAttack(patched_platform).run(
        "victim@example.com", patched_attr.attr_id, ground_truth=True
    )
    rows = [
        ("size estimate, 2018 defaults",
         str(size.inferred_bit), size.observable),
        ("delivery probe, 2018 defaults",
         str(delivery.inferred_bit), delivery.observable),
        (f"delivery probe, min-match {defense_threshold}",
         str(patched.inferred_bit), patched.observable),
    ]
    print(format_table(
        ("attack channel / platform", "bit learned", "observable"),
        rows, title="Section 5 single-victim inference attack",
    ))
    return 0


def _cmd_stats(scenario: str, stats_format: str) -> int:
    """Run a scenario against a fresh registry and dump every metric.

    The registry swap must happen *before* the scenario constructs its
    platform — delivery/billing resolve their instruments at
    construction time — which is why this re-runs the scenario rather
    than reading whatever a previous command left behind. The
    scenario's own stdout is swallowed; only the metrics dump prints.
    """
    registry = MetricsRegistry("cli-stats")
    with use_registry(registry), \
            contextlib.redirect_stdout(io.StringIO()):
        if scenario == "demo":
            _cmd_demo()
        else:
            _cmd_validate(seed=7, bid_cpm=10.0)
    if stats_format == "prometheus":
        sys.stdout.write(obs_export.to_prometheus(registry))
    elif stats_format == "jsonl":
        sys.stdout.write(obs_export.to_jsonl(registry))
    else:
        print(obs_export.to_table(
            registry, title=f"metrics after {scenario!r} scenario"
        ))
    return 0


def _run_serving_world(args: argparse.Namespace
                       ) -> Tuple[ServingRuntime, LoadReport]:
    """Build a persona-mix world with a full Tread sweep and load it.

    Shared engine room for ``serve`` and ``loadgen`` — same world, same
    runtime, same generator; the two commands differ only in which side
    of the run they report.
    """
    platform = AdPlatform(config=PlatformConfig(name="serve"))
    web = WebDirectory()
    builder = PopulationBuilder(platform, seed=args.seed)
    builder.spawn_mix(
        [ESTABLISHED_PROFESSIONAL, AVERAGE_CONSUMER,
         RECENT_ARRIVAL_GRAD_STUDENT],
        args.users,
    )
    builder.finalize()
    provider = TransparencyProvider(platform, web, budget=10_000.0,
                                    bid_cap_cpm=10.0)
    for user_id in platform.users.user_ids():
        provider.optin.via_page_like(user_id)
    provider.launch_partner_sweep()
    runtime = ServingRuntime(
        platform,
        RuntimeConfig(
            num_shards=args.shards,
            workers_per_shard=args.workers,
            queue_capacity=args.queue_capacity,
        ),
        competition=KeyedCompetition(seed=args.seed),
    )
    generator = LoadGenerator(
        runtime,
        platform.users.user_ids(),
        LoadConfig(
            rps=args.rps,
            duration_s=args.duration,
            slots=args.slots,
            deadline_s=(args.deadline_ms / 1000.0
                        if args.deadline_ms is not None else None),
            seed=args.seed,
        ),
    )
    with runtime:
        report = generator.run()
    return runtime, report


def _cmd_serve(args: argparse.Namespace) -> int:
    runtime, report = _run_serving_world(args)
    quantiles = report.percentiles()
    tally = report.tally
    rows = [
        ("shards x workers", f"{args.shards} x {args.workers}"),
        ("offered / achieved rps",
         f"{report.config.rps:.0f} / {report.achieved_rps:.0f}"),
        ("served", tally.served),
        ("shed (queue full)", tally.shed),
        ("timeout (deadline)", tally.timeout),
        ("errors", tally.errors),
        ("impressions delivered", tally.impressions),
        ("latency p50 / p95 / p99 (ms)",
         " / ".join(f"{quantiles[p] * 1000:.2f}"
                    for p in ("p50", "p95", "p99"))),
    ]
    for stats in runtime.router.snapshot_stats():
        rows.append((f"  {stats['engine_id']}",
                     f"{stats['impressions']} impressions, "
                     f"{stats['users_with_feeds']} users"))
    print(format_table(("serving runtime", "value"), rows,
                       title=f"repro serve: {args.users} users, "
                             f"{args.duration:.0f}s at {args.rps:.0f} rps"))
    return 0 if tally.errors == 0 else 1


def _cmd_loadgen(args: argparse.Namespace) -> int:
    _, report = _run_serving_world(args)
    quantiles = report.percentiles()
    tally = report.tally
    rows = [
        ("offered", report.offered),
        ("target / achieved rps",
         f"{report.config.rps:.0f} / {report.achieved_rps:.0f}"),
        ("served", tally.served),
        ("shed (queue full)", tally.shed),
        ("timeout (deadline)", tally.timeout),
        ("errors", tally.errors),
        ("p50 (ms)", f"{quantiles['p50'] * 1000:.3f}"),
        ("p95 (ms)", f"{quantiles['p95'] * 1000:.3f}"),
        ("p99 (ms)", f"{quantiles['p99'] * 1000:.3f}"),
    ]
    print(format_table(("load generation", "value"), rows,
                       title=f"repro loadgen: {args.rps:.0f} rps for "
                             f"{args.duration:.1f}s, seed {args.seed}"))
    if args.histogram_out is not None:
        with open(args.histogram_out, "w", encoding="utf-8") as stream:
            json.dump(report.record(), stream, indent=2)
            stream.write("\n")
        print(f"wrote latency histogram to {args.histogram_out}",
              file=sys.stderr)
    return 0 if tally.errors == 0 and tally.served > 0 else 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "catalog":
        if args.catalog_command == "stats":
            return _cmd_catalog_stats()
        return _cmd_catalog_search(args.keyword, args.limit)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "validate":
        return _cmd_validate(args.seed, args.bid_cpm)
    if args.command == "stats":
        return _cmd_stats(args.scenario, args.stats_format)
    if args.command == "cost":
        return _cmd_cost(args.cpm, args.attributes)
    if args.command == "scale":
        return _cmd_scale(args.m)
    if args.command == "attack":
        return _cmd_attack(args.defense_threshold)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    _configure_logging(args.verbose)
    trace_out = getattr(args, "trace_out", None)
    if trace_out is None:
        return _dispatch(args)
    run_tracer = Tracer()
    with use_tracer(run_tracer):
        code = _dispatch(args)
    with open(trace_out, "w", encoding="utf-8") as stream:
        written = run_tracer.write_jsonl(stream)
    print(f"wrote {written} spans to {trace_out}", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
