"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``catalog stats``
    Catalog composition (the 614 + 507 split, per-source, per-broker).
``catalog search <keyword>``
    Keyword search over the advertiser-facing catalog, like the ads UI.
``demo``
    The quickstart scenario: one user, full partner sweep, decoded reveal.
``validate``
    The paper's section 3.1 validation (two authors, 507 Treads, $10 CPM)
    with the paper-vs-measured summary table.
``cost``
    The section 3.1 cost table for a given CPM and attribute counts.
``scale``
    Enumeration-vs-bit-split ad counts for m-valued attributes.
``attack``
    The section 5 single-victim inference probe, with and without the
    narrow-targeting defense, plus the defense's cost to Treads.
``stats``
    Run a scenario against a fresh metrics registry and dump every
    instrument (table, Prometheus text format, or JSONL).
``serve``
    Start the sharded serving runtime over a persona-mix world and
    drive it with generated traffic for a fixed duration; prints the
    outcome tally, latency quantiles, and per-shard balance.
``loadgen``
    The same world and runtime, reported from the load generator's
    side: offered vs achieved RPS, shed/timeout counts, and optionally
    the full latency histogram as JSON (``--histogram-out``). With
    ``--slo p99=5ms,availability=99%`` the run is scored against the
    objectives and the exit code says whether they held.
``top``
    The same run as ``loadgen``, watched live: a redrawing terminal
    view of per-shard rps, queue depth, shed/timeout rates, and
    latency quantiles out of the streaming telemetry plane.
``gateway``
    Serve the runtime over HTTP: ad requests, the durable multi-tenant
    campaign/audience API, live metrics, and SLO verdicts — all from
    one asyncio front. The world is rebuilt from the journal
    directory's manifest on restart and every shard journal plus the
    tenancy journal is replayed, so ``kill -9`` loses nothing
    acknowledged.
``httpgen``
    HTTP-mode load generation against a running gateway: the same
    seeded open-loop schedule as ``loadgen``, offered over pipelined
    keep-alive connections, with the same summary table, ``--slo``
    exit gate, and ``--histogram-out`` record.
``checkpoint``
    Serve a deterministic sharded scenario with per-shard journaling,
    snapshot every shard mid-run, keep serving, and write the journals,
    snapshots, a manifest, and the final canonical state report to a
    directory.
``restore``
    Rebuild the same world from a ``checkpoint`` directory via
    snapshot + journal-suffix replay and verify the recovered state is
    byte-identical to the recorded final report (exit 0 iff it is).
``replay``
    Rebuild the same world by folding each shard's *full* journal onto
    a fresh state — no snapshot — and verify the same byte-identity.

Global flags: ``-v`` / ``-vv`` attach a stderr handler to the
``repro.*`` loggers (INFO / DEBUG); ``--version`` prints the package
version; ``--trace-out FILE`` on the delivery-running commands
(``demo``, ``validate``, ``stats``, ``serve``, ``loadgen``, ``top``)
writes the run's spans — on the process backend the merged
cross-process trace — as JSONL or, with ``--trace-format chrome``, a
``chrome://tracing`` JSON array.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import logging
import os
import sys
import threading
from typing import List, Optional, Sequence, Tuple

from repro import __version__
from repro.analysis.tables import format_table
from repro.obs import export as obs_export
from repro.obs.metrics import MetricsRegistry, registry, use_registry
from repro.obs.slo import SLOSpec, parse_slo
from repro.obs.tracing import Tracer, use_tracer
from repro.core.bitsplit import bits_needed, treads_needed_enumeration
from repro.core.client import TreadClient
from repro.core.costs import CostModel
from repro.core.provider import TransparencyProvider
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.serve import (
    KeyedCompetition,
    LoadConfig,
    LoadGenerator,
    LoadReport,
    RuntimeConfig,
    ServingRuntime,
)
from repro.workloads.competition import lognormal_competition
from repro.workloads.personas import (
    AVERAGE_CONSUMER,
    ESTABLISHED_PROFESSIONAL,
    RECENT_ARRIVAL_GRAD_STUDENT,
)
from repro.workloads.population import PopulationBuilder


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Treads (HotNets 2018) reproduction: transparency-enhancing "
            "ads on a simulated ad platform."
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log repro.* to stderr (-v INFO, -vv DEBUG)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    catalog = commands.add_parser("catalog", help="inspect the attribute "
                                                  "catalog")
    catalog_sub = catalog.add_subparsers(dest="catalog_command",
                                         required=True)
    catalog_sub.add_parser("stats", help="catalog composition")
    search = catalog_sub.add_parser("search", help="keyword search")
    search.add_argument("keyword")
    search.add_argument("--limit", type=int, default=15)

    demo = commands.add_parser("demo", help="quickstart scenario")
    _add_trace_out(demo)

    validate = commands.add_parser(
        "validate", help="the paper's section 3.1 validation"
    )
    validate.add_argument("--seed", type=int, default=7)
    validate.add_argument("--bid-cpm", type=float, default=10.0)
    _add_trace_out(validate)

    stats = commands.add_parser(
        "stats", help="run a scenario and dump its metrics"
    )
    stats.add_argument("--scenario", choices=("demo", "validate"),
                       default="demo")
    stats.add_argument("--format", dest="stats_format",
                       choices=("table", "prometheus", "jsonl"),
                       default="table")
    _add_trace_out(stats)

    cost = commands.add_parser("cost", help="section 3.1 cost table")
    cost.add_argument("--cpm", type=float, default=2.0)
    cost.add_argument("--attributes", type=int, nargs="+",
                      default=[1, 10, 50, 100])

    scale = commands.add_parser("scale", help="section 3.1 scale table")
    scale.add_argument("--m", type=int, nargs="+",
                       default=[2, 8, 97, 1000, 4096])

    attack = commands.add_parser(
        "attack", help="section 5 inference attack vs defenses"
    )
    attack.add_argument("--defense-threshold", type=int, default=20)

    serve = commands.add_parser(
        "serve", help="run the sharded serving runtime under generated "
                      "traffic"
    )
    loadgen = commands.add_parser(
        "loadgen", help="open-loop load generation against the serving "
                        "runtime"
    )
    top = commands.add_parser(
        "top", help="loadgen with a live terminal view: per-shard rps, "
                    "queue depth, shed/timeout rates, latency quantiles"
    )
    for sub in (serve, loadgen, top):
        sub.add_argument("--shards", type=int, default=4,
                         help="user shards (engines + queues)")
        sub.add_argument("--backend", choices=("thread", "process"),
                         default="thread",
                         help="shard workers: in-process threads "
                              "(default) or one subprocess per shard "
                              "over batched IPC")
        sub.add_argument("--workers", type=int, default=1,
                         help="worker threads per shard (1 = "
                              "deterministic replay; process backend "
                              "requires 1)")
        sub.add_argument("--duration", type=float, default=2.0,
                         help="offered-load duration, seconds")
        sub.add_argument("--rps", type=float,
                         default=200.0 if sub is serve else 500.0,
                         help="target offered load, requests/second")
        sub.add_argument("--users", type=int, default=200,
                         help="persona-mix population size")
        sub.add_argument("--seed", type=int, default=42,
                         help="seed for population, arrivals, and "
                              "competing bids")
        sub.add_argument("--slots", type=int, default=1,
                         help="ad slots per request")
        sub.add_argument("--deadline-ms", type=float, default=None,
                         help="per-request latency budget; stale "
                              "requests TIMEOUT unserved")
        sub.add_argument("--queue-capacity", type=int, default=256,
                         help="bounded per-shard queue; overflow is "
                              "SHED")
        sub.add_argument("--metrics-out", metavar="FILE", default=None,
                         help="write a Prometheus snapshot of the live "
                              "(cross-process) registry to FILE on "
                              "every telemetry tick, atomically, plus "
                              "a final one after the run")
        sub.add_argument("--telemetry-interval", type=float,
                         default=None, metavar="SECONDS",
                         help="streaming worker-telemetry poll period; "
                              "defaults to 0.1 when --metrics-out is "
                              "set (and always streams under 'top'), "
                              "otherwise off")
        _add_trace_out(sub)
    for sub in (loadgen, top):
        sub.add_argument("--slo", metavar="SPEC", default=None,
                         help="comma-separated objectives like "
                              "p99=5ms,availability=99%%; exit 1 when "
                              "the run violates any of them")
    loadgen.add_argument("--histogram-out", metavar="FILE", default=None,
                        help="write the latency histogram + tally JSON "
                             "to FILE")
    top.add_argument("--interval", type=float, default=0.5,
                     metavar="SECONDS",
                     help="redraw period of the live view")

    gateway = commands.add_parser(
        "gateway", help="serve ad requests and the durable campaign "
                        "API over HTTP"
    )
    gateway.add_argument("--host", default="127.0.0.1")
    gateway.add_argument("--port", type=int, default=8080,
                         help="listen port (0 = ephemeral; the bound "
                              "port is printed on the ready line)")
    gateway.add_argument("--journal-dir", required=True, metavar="DIR",
                         help="directory for the world manifest, the "
                              "per-shard journals, and the tenancy "
                              "journal; reusing one recovers it")
    gateway.add_argument("--backend", choices=("thread", "process"),
                         default="thread")
    gateway.add_argument("--shards", type=int, default=4)
    gateway.add_argument("--users", type=int, default=150,
                         help="persona-mix population size")
    gateway.add_argument("--seed", type=int, default=42)
    gateway.add_argument("--queue-capacity", type=int, default=256)
    gateway.add_argument("--deadline-ms", type=float, default=None,
                         help="default per-request latency budget")
    gateway.add_argument("--slo", metavar="SPEC", default=None,
                         help="default objectives for GET /v1/slo")
    gateway.add_argument("--metrics-out", metavar="FILE", default=None,
                         help="write a Prometheus snapshot of the live "
                              "registry to FILE on every telemetry "
                              "tick, atomically")
    gateway.add_argument("--telemetry-interval", type=float,
                         default=None, metavar="SECONDS",
                         help="streaming worker-telemetry poll period; "
                              "defaults to 0.1 when --metrics-out is "
                              "set, otherwise off")
    _add_trace_out(gateway)

    httpgen = commands.add_parser(
        "httpgen", help="open-loop load generation against a running "
                        "gateway, over HTTP"
    )
    httpgen.add_argument("--url", default="http://127.0.0.1:8080",
                         help="base url of the gateway")
    httpgen.add_argument("--rps", type=float, default=500.0)
    httpgen.add_argument("--duration", type=float, default=2.0)
    httpgen.add_argument("--slots", type=int, default=1)
    httpgen.add_argument("--deadline-ms", type=float, default=None)
    httpgen.add_argument("--seed", type=int, default=42)
    httpgen.add_argument("--connections", type=int, default=1,
                         help="pipelined keep-alive connections; "
                              "requests partition by user so per-user "
                              "order is preserved")
    httpgen.add_argument("--slo", metavar="SPEC", default=None,
                         help="comma-separated objectives like "
                              "p99=5ms,availability=99%%; exit 1 when "
                              "the run violates any of them")
    httpgen.add_argument("--histogram-out", metavar="FILE",
                         default=None,
                         help="write the latency histogram + tally "
                              "JSON to FILE")

    populate = commands.add_parser(
        "populate", help="stream a persona-mix population into a "
                         "(optionally columnar) world and report its "
                         "storage footprint"
    )
    populate.add_argument("--users", type=int, default=100_000,
                          help="population size")
    populate.add_argument("--columnar", action="store_true",
                          help="use the packed-numpy columnar user "
                               "store (PlatformConfig.columnar_users)")
    populate.add_argument("--stats", action="store_true",
                          help="print the store's shape/size summary "
                               "after populating")
    populate.add_argument("--seed", type=int, default=42)
    populate.add_argument("--chunk-size", type=int, default=10_000,
                          help="users spawned per streamed chunk")
    populate.add_argument("--sweep", action="store_true",
                          help="after populating, launch the full "
                               "partner sweep and deliver it through "
                               "the vectorized batch sweep engine "
                               "(implies --columnar, compact "
                               "delivery, journal discarded)")
    populate.add_argument("--sweep-workers", type=int, default=None,
                          metavar="N",
                          help="fork N row-range workers for the "
                               "sweep (default: in-process, single "
                               "worker)")

    checkpoint = commands.add_parser(
        "checkpoint", help="journal a deterministic sharded run, "
                           "snapshot mid-run, record the final state"
    )
    checkpoint.add_argument("--out", required=True, metavar="DIR",
                            help="directory for journals, snapshots, "
                                 "manifest, and final report")
    checkpoint.add_argument("--seed", type=int, default=11)
    checkpoint.add_argument("--users", type=int, default=40,
                            help="persona-mix population size")
    checkpoint.add_argument("--shards", type=int, default=4)
    checkpoint.add_argument("--rounds", type=int, default=4,
                            help="full serving rounds over the "
                                 "population")
    checkpoint.add_argument("--checkpoint-after", type=int, default=2,
                            help="take the snapshot after this many "
                                 "rounds (rest lands in the journal "
                                 "suffix)")
    checkpoint.add_argument("--slots", type=int, default=3,
                            help="ad slots per user per round")

    restore = commands.add_parser(
        "restore", help="recover every shard from snapshot + journal "
                        "suffix and diff against the recorded state"
    )
    restore.add_argument("--from", dest="state_dir", required=True,
                         metavar="DIR",
                         help="a directory written by 'repro checkpoint'")

    replay = commands.add_parser(
        "replay", help="fold each shard's full journal onto fresh state "
                       "and diff against the recorded state"
    )
    replay.add_argument("--from", dest="state_dir", required=True,
                        metavar="DIR",
                        help="a directory written by 'repro checkpoint'")
    return parser


def _add_trace_out(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write the run's spans to FILE (on the process backend, "
             "the merged cross-process trace)",
    )
    subparser.add_argument(
        "--trace-format", choices=("jsonl", "chrome"), default="jsonl",
        help="span serialization for --trace-out: JSONL records "
             "(default) or a chrome://tracing JSON array",
    )


def _configure_logging(verbosity: int) -> None:
    """Attach a stderr handler to the ``repro`` logger tree.

    Idempotent: the handler is tagged so repeated ``main()`` calls in
    one process (the test suite) adjust the level instead of stacking
    duplicate handlers. Verbosity 0 leaves the library silent.
    """
    if verbosity <= 0:
        return
    logger = logging.getLogger("repro")
    handler = next(
        (h for h in logger.handlers
         if getattr(h, "_repro_cli_handler", False)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        handler._repro_cli_handler = True
        logger.addHandler(handler)
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    handler.setLevel(level)
    logger.setLevel(level)


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------

def _cmd_catalog_stats() -> int:
    catalog = build_us_catalog()
    partner = catalog.partner_attributes()
    platform_attrs = catalog.platform_attributes()
    by_broker: dict = {}
    for attribute in partner:
        by_broker[attribute.broker] = by_broker.get(attribute.broker, 0) + 1
    rows = [
        ("platform-computed attributes", len(platform_attrs)),
        ("  of which multi-valued",
         sum(1 for a in platform_attrs if not a.is_binary)),
        ("partner (data-broker) attributes", len(partner)),
    ]
    rows += [(f"  from {broker}", count)
             for broker, count in sorted(by_broker.items())]
    rows.append(("total", len(catalog)))
    print(format_table(("segment", "attributes"), rows,
                       title="US targeting catalog (early-2018 shape)"))
    return 0


def _cmd_catalog_search(keyword: str, limit: int) -> int:
    catalog = build_us_catalog()
    hits = catalog.search(keyword)
    if not hits:
        print(f"no attributes match {keyword!r}")
        return 1
    rows = [
        (a.attr_id, a.name, a.source.value,
         a.broker or "-")
        for a in hits[:limit]
    ]
    print(format_table(("id", "name", "source", "broker"), rows,
                       title=f"{len(hits)} match(es) for {keyword!r}"))
    if len(hits) > limit:
        print(f"... and {len(hits) - limit} more (raise --limit)")
    return 0


def _cmd_demo() -> int:
    platform = AdPlatform()
    web = WebDirectory()
    user = platform.register_user(age=34)
    hidden = ["pc-networth-006", "pc-jobrole-000", "pc-autointent-007"]
    for attr_id in hidden:
        user.set_attribute(platform.catalog.get(attr_id))
    provider = TransparencyProvider(platform, web, budget=100.0,
                                    bid_cap_cpm=10.0)
    provider.optin.via_page_like(user.user_id)
    provider.launch_partner_sweep()
    provider.run_delivery()
    profile = TreadClient(user.user_id, platform,
                          provider.publish_decode_pack()).sync()
    print("ad-preferences page shows: "
          f"{len(platform.ad_preferences_for(user.user_id).shown_attributes)}"
          " attributes (partner data hidden)")
    print(f"Treads revealed {len(profile.set_attributes)}:")
    for attr_id in sorted(profile.set_attributes):
        print(f"  - {platform.catalog.get(attr_id).name}")
    print(f"spend: ${provider.total_spend():.4f} for "
          f"{provider.total_impressions()} impressions")
    return 0 if profile.set_attributes == set(hidden) else 1


def _cmd_validate(seed: int, bid_cpm: float) -> int:
    platform = AdPlatform(
        config=PlatformConfig(name="fbsim"),
        competing_draw=lognormal_competition(median_cpm=2.0, seed=seed),
    )
    web = WebDirectory()
    builder = PopulationBuilder(platform, seed=seed)
    profiled = builder.spawn(ESTABLISHED_PROFESSIONAL, 1)[0]
    unprofiled = builder.spawn(RECENT_ARRIVAL_GRAD_STUDENT, 1)[0]
    builder.finalize()
    provider = TransparencyProvider(platform, web, budget=500.0,
                                    bid_cap_cpm=bid_cpm)
    provider.optin.via_page_like(profiled.user_id)
    provider.optin.via_page_like(unprofiled.user_id)
    launch = provider.launch_partner_sweep()
    provider.run_delivery(max_rounds=200)
    pack = provider.publish_decode_pack()
    reveal_a = TreadClient(profiled.user_id, platform, pack).sync()
    reveal_b = TreadClient(unprofiled.user_id, platform, pack).sync()
    truth_a = {a for a in profiled.binary_attrs if a.startswith("pc-")}
    rows = [
        ("Treads run", 508, len(launch.treads)),
        ("profiled author reveals", "11 (paper)",
         len(reveal_a.set_attributes)),
        ("profiled author exact vs ground truth", "yes",
         "yes" if reveal_a.set_attributes == truth_a else "NO"),
        ("unprofiled author reveals", 0, len(reveal_b.set_attributes)),
        ("both received control", "yes",
         "yes" if reveal_a.control_received and reveal_b.control_received
         else "NO"),
        ("total spend", "(2nd-price)",
         f"${provider.total_spend():.4f}"),
    ]
    print(format_table(("quantity", "paper", "measured"), rows,
                       title=f"Section 3.1 validation (seed {seed}, "
                             f"bid ${bid_cpm:.0f} CPM)"))
    ok = (reveal_a.set_attributes == truth_a
          and not reveal_b.set_attributes
          and reveal_a.control_received and reveal_b.control_received)
    return 0 if ok else 1


def _cmd_cost(cpm: float, attribute_counts: Sequence[int]) -> int:
    model = CostModel(cpm=cpm)
    rows = [("one attribute", f"${model.per_attribute():.4f}")]
    rows += [
        (f"user with {count} set attributes",
         f"${model.full_profile(count):.4f}")
        for count in attribute_counts
    ]
    rows.append(("any unset attribute", "$0.0000 (never delivered)"))
    print(format_table(("reveal", "cost"), rows,
                       title=f"Treads cost at ${cpm:.2f} CPM (sec 3.1)"))
    return 0


def _cmd_scale(ms: Sequence[int]) -> int:
    rows = [
        (m, treads_needed_enumeration(m), bits_needed(m))
        for m in ms
    ]
    print(format_table(
        ("m (values)", "enumeration ads", "bit-split ads (ceil log2 m)"),
        rows, title="Treads needed per m-valued attribute (sec 3.1)",
    ))
    return 0


def _cmd_attack(defense_threshold: int) -> int:
    from repro.attacks import DeliveryInferenceAttack, SizeEstimateAttack
    from repro.workloads.competition import zero_competition

    def fresh(min_match):
        platform = AdPlatform(
            config=PlatformConfig(name=f"cli-atk{min_match}",
                                  min_delivery_match_count=min_match),
            catalog=build_us_catalog(60, 30),
            competing_draw=zero_competition(),
        )
        victim = platform.register_user()
        platform.users.attach_pii(victim.user_id, "email",
                                  "victim@example.com")
        attr = platform.catalog.partner_attributes()[0]
        victim.set_attribute(attr)
        return platform, attr

    platform, attr = fresh(0)
    size = SizeEstimateAttack(platform).run(
        "victim@example.com", attr.attr_id, ground_truth=True
    )
    delivery = DeliveryInferenceAttack(platform).run(
        "victim@example.com", attr.attr_id, ground_truth=True
    )
    patched_platform, patched_attr = fresh(defense_threshold)
    patched = DeliveryInferenceAttack(patched_platform).run(
        "victim@example.com", patched_attr.attr_id, ground_truth=True
    )
    rows = [
        ("size estimate, 2018 defaults",
         str(size.inferred_bit), size.observable),
        ("delivery probe, 2018 defaults",
         str(delivery.inferred_bit), delivery.observable),
        (f"delivery probe, min-match {defense_threshold}",
         str(patched.inferred_bit), patched.observable),
    ]
    print(format_table(
        ("attack channel / platform", "bit learned", "observable"),
        rows, title="Section 5 single-victim inference attack",
    ))
    return 0


def _cmd_stats(scenario: str, stats_format: str) -> int:
    """Run a scenario against a fresh registry and dump every metric.

    The registry swap must happen *before* the scenario constructs its
    platform — delivery/billing resolve their instruments at
    construction time — which is why this re-runs the scenario rather
    than reading whatever a previous command left behind. The
    scenario's own stdout is swallowed; only the metrics dump prints.
    """
    registry = MetricsRegistry("cli-stats")
    with use_registry(registry), \
            contextlib.redirect_stdout(io.StringIO()):
        if scenario == "demo":
            _cmd_demo()
        else:
            _cmd_validate(seed=7, bid_cpm=10.0)
    if stats_format == "prometheus":
        sys.stdout.write(obs_export.to_prometheus(registry))
    elif stats_format == "jsonl":
        sys.stdout.write(obs_export.to_jsonl(registry))
    else:
        print(obs_export.to_table(
            registry, title=f"metrics after {scenario!r} scenario"
        ))
    return 0


def _telemetry_interval_for(args: argparse.Namespace) -> Optional[float]:
    """Resolve the runtime's streaming poll period from the flags.

    Explicit ``--telemetry-interval`` wins; otherwise ``--metrics-out``
    needs a stream to snapshot (100 ms default), and ``top`` always
    streams (at half its redraw period so every frame has fresh rows).
    """
    explicit = getattr(args, "telemetry_interval", None)
    if explicit is not None:
        return explicit
    if getattr(args, "metrics_out", None) is not None:
        return 0.1
    if args.command == "top":
        return max(0.05, args.interval / 2.0)
    return None


def _write_metrics_snapshot(path: str, reg: MetricsRegistry) -> None:
    """Atomically replace ``path`` with a Prometheus dump of ``reg``
    (write-then-rename, so a concurrent scraper never reads a torn
    file)."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as stream:
        stream.write(obs_export.to_prometheus(reg))
    os.replace(tmp_path, path)


def _build_serving_world(args: argparse.Namespace
                         ) -> Tuple[ServingRuntime, LoadGenerator]:
    """Build a persona-mix world with a full Tread sweep, runtime, and
    generator.

    Shared engine room for ``serve``, ``loadgen``, and ``top`` — same
    world, same runtime, same generator; the commands differ only in
    which side of the run they report. ``--metrics-out`` hangs a
    telemetry listener here so Prometheus snapshots land on every tick
    of the streaming plane.
    """
    platform = AdPlatform(config=PlatformConfig(name="serve"))
    web = WebDirectory()
    builder = PopulationBuilder(platform, seed=args.seed)
    builder.spawn_mix(
        [ESTABLISHED_PROFESSIONAL, AVERAGE_CONSUMER,
         RECENT_ARRIVAL_GRAD_STUDENT],
        args.users,
    )
    builder.finalize()
    provider = TransparencyProvider(platform, web, budget=10_000.0,
                                    bid_cap_cpm=10.0)
    for user_id in platform.users.user_ids():
        provider.optin.via_page_like(user_id)
    provider.launch_partner_sweep()
    runtime = ServingRuntime(
        platform,
        RuntimeConfig(
            num_shards=args.shards,
            workers_per_shard=args.workers,
            queue_capacity=args.queue_capacity,
            backend=args.backend,
            telemetry_interval_s=_telemetry_interval_for(args),
        ),
        competition=KeyedCompetition(seed=args.seed),
    )
    generator = LoadGenerator(
        runtime,
        platform.users.user_ids(),
        LoadConfig(
            rps=args.rps,
            duration_s=args.duration,
            slots=args.slots,
            deadline_s=(args.deadline_ms / 1000.0
                        if args.deadline_ms is not None else None),
            seed=args.seed,
        ),
    )
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out is not None:
        runtime.add_telemetry_listener(
            lambda rt, sample: _write_metrics_snapshot(
                metrics_out, rt.live_metrics()))
    return runtime, generator


def _finish_serving_run(args: argparse.Namespace,
                        report: LoadReport) -> None:
    """Post-run bookkeeping shared by serve/loadgen/top: capture the
    merged runtime histograms and write the final metrics snapshot."""
    # After stop: on the process backend, worker registries have merged
    # back, so these are the fleet-wide (cross-process) histograms.
    report.attach_runtime_histograms(registry())
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out is not None:
        _write_metrics_snapshot(metrics_out, registry())
        print(f"wrote metrics snapshot to {metrics_out}",
              file=sys.stderr)


def _parse_slo_arg(args: argparse.Namespace) -> Optional[SLOSpec]:
    """Parse ``--slo`` up front (before spending a run on it); raises
    SystemExit(2) on a malformed spec, argparse-style."""
    text = getattr(args, "slo", None)
    if text is None:
        return None
    try:
        return parse_slo(text)
    except ValueError as exc:
        print(f"invalid --slo spec: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _apply_slo_gate(report: LoadReport,
                    spec: Optional[SLOSpec]) -> bool:
    """Score the report, print one verdict line per objective, and
    return whether every objective held."""
    if spec is None:
        return True
    evaluation = report.evaluate_slo(spec, registry=registry())
    for result in evaluation.results:
        print(f"slo: {result.describe()}")
    if not evaluation.ok:
        print(f"slo violated: {len(evaluation.violations)} of "
              f"{len(evaluation.results)} objective(s) missed",
              file=sys.stderr)
    return evaluation.ok


def _run_serving_world(args: argparse.Namespace
                       ) -> Tuple[ServingRuntime, LoadReport]:
    runtime, generator = _build_serving_world(args)
    with runtime:
        report = generator.run()
    _finish_serving_run(args, report)
    return runtime, report


def _cmd_serve(args: argparse.Namespace) -> int:
    runtime, report = _run_serving_world(args)
    quantiles = report.percentiles()
    tally = report.tally
    rows = [
        ("shards x workers", f"{args.shards} x {args.workers}"),
        ("backend", args.backend),
        ("offered / achieved rps",
         f"{report.config.rps:.0f} / {report.achieved_rps:.0f}"),
        ("served", tally.served),
        ("shed (queue full)", tally.shed),
        ("timeout (deadline)", tally.timeout),
        ("errors", tally.errors),
        ("impressions delivered", tally.impressions),
        ("latency p50 / p95 / p99 (ms)",
         " / ".join(f"{quantiles[p] * 1000:.2f}"
                    for p in ("p50", "p95", "p99"))),
    ]
    for stats in runtime.router.snapshot_stats():
        rows.append((f"  {stats['engine_id']}",
                     f"{stats['impressions']} impressions, "
                     f"{stats['users_with_feeds']} users"))
    print(format_table(("serving runtime", "value"), rows,
                       title=f"repro serve: {args.users} users, "
                             f"{args.duration:.0f}s at {args.rps:.0f} rps"))
    return 0 if tally.errors == 0 else 1


def _cmd_loadgen(args: argparse.Namespace) -> int:
    spec = _parse_slo_arg(args)  # fail fast, before spending a run
    _, report = _run_serving_world(args)
    quantiles = report.percentiles()
    tally = report.tally
    rows = [
        ("offered", report.offered),
        ("backend", args.backend),
        ("target / achieved rps",
         f"{report.config.rps:.0f} / {report.achieved_rps:.0f}"),
        ("served rps", f"{report.served_rps:.0f}"),
        ("served", tally.served),
        ("shed (queue full)", tally.shed),
        ("timeout (deadline)", tally.timeout),
        ("errors", tally.errors),
        ("p50 (ms)", f"{quantiles['p50'] * 1000:.3f}"),
        ("p95 (ms)", f"{quantiles['p95'] * 1000:.3f}"),
        ("p99 (ms)", f"{quantiles['p99'] * 1000:.3f}"),
    ]
    print(format_table(("load generation", "value"), rows,
                       title=f"repro loadgen: {args.rps:.0f} rps for "
                             f"{args.duration:.1f}s, seed {args.seed}"))
    slo_ok = _apply_slo_gate(report, spec)
    if args.histogram_out is not None:
        with open(args.histogram_out, "w", encoding="utf-8") as stream:
            json.dump(report.record(), stream, indent=2)
            stream.write("\n")
        print(f"wrote latency histogram to {args.histogram_out}",
              file=sys.stderr)
    return 0 if tally.errors == 0 and tally.served > 0 and slo_ok else 1


def _render_top_frame(runtime: ServingRuntime, shards: int,
                      window_s: float, elapsed_s: float) -> str:
    """One frame of the ``repro top`` view, rendered from the
    telemetry buffer (no locks held on the serving path)."""
    buffer = runtime.telemetry
    latest = buffer.latest()
    lines = [
        f"repro top — {elapsed_s:5.1f}s elapsed, "
        f"{len(buffer)} telemetry samples "
        f"(window {window_s:.1f}s)"
    ]
    if latest is None:
        lines.append("  waiting for first telemetry sample...")
        return "\n".join(lines)
    header = (f"  {'shard':>5} {'rps':>8} {'queue':>6} {'shed/s':>8} "
              f"{'tmo/s':>8} {'p50ms':>8} {'p95ms':>8} {'p99ms':>8}")
    lines.append(header)
    for index in range(shards):
        prefix = f"serve.shard{index}"
        hist = buffer.histogram_window(f"{prefix}.latency_s", window_s)
        if hist is not None and hist.count:
            q = hist.percentiles()
            p50, p95, p99 = (q["p50"] * 1000, q["p95"] * 1000,
                             q["p99"] * 1000)
            quantile_cells = (f"{p50:8.2f} {p95:8.2f} {p99:8.2f}")
        else:
            quantile_cells = f"{'-':>8} {'-':>8} {'-':>8}"
        lines.append(
            f"  {index:>5} "
            f"{buffer.rate(f'{prefix}.served', window_s):8.1f} "
            f"{latest.scalar(f'{prefix}.queue_depth'):6.0f} "
            f"{buffer.rate(f'{prefix}.shed', window_s):8.1f} "
            f"{buffer.rate(f'{prefix}.timeout', window_s):8.1f} "
            f"{quantile_cells}"
        )
    lines.append(
        f"  total: {latest.scalar('serve.requests_served'):.0f} served, "
        f"{latest.scalar('serve.requests_shed'):.0f} shed, "
        f"{latest.scalar('serve.requests_timeout'):.0f} timeout, "
        f"{latest.scalar('serve.requests_errored'):.0f} errored "
        f"({buffer.rate('serve.requests_served', window_s):.0f} rps "
        f"served over the window)"
    )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Loadgen watched live: a redraw loop over the telemetry buffer.

    The generator runs in a daemon thread; the main thread wakes every
    ``--interval`` seconds and paints per-shard rates/queue depths/
    quantiles from the streaming samples. On a tty each frame repaints
    in place (ANSI home+clear); on a pipe frames print sequentially,
    which is what the tests read.
    """
    import time as _time

    spec = _parse_slo_arg(args)
    runtime, generator = _build_serving_world(args)
    window_s = max(1.0, 4.0 * args.interval)
    holder: dict = {}

    def _drive() -> None:
        try:
            holder["report"] = generator.run()
        except BaseException as exc:  # surfaced after the loop
            holder["error"] = exc

    is_tty = sys.stdout.isatty()
    start = _time.perf_counter()
    with runtime:
        driver = threading.Thread(target=_drive, name="top-loadgen",
                                  daemon=True)
        driver.start()
        while driver.is_alive():
            driver.join(timeout=args.interval)
            frame = _render_top_frame(
                runtime, args.shards, window_s,
                _time.perf_counter() - start)
            if is_tty:
                sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n")
            else:
                sys.stdout.write(frame + "\n")
            sys.stdout.flush()
    if "error" in holder:
        raise holder["error"]
    report: LoadReport = holder["report"]
    _finish_serving_run(args, report)
    quantiles = report.percentiles()
    tally = report.tally
    rows = [
        ("offered", report.offered),
        ("backend", args.backend),
        ("target / achieved rps",
         f"{report.config.rps:.0f} / {report.achieved_rps:.0f}"),
        ("served / shed / timeout / errors",
         f"{tally.served} / {tally.shed} / {tally.timeout} / "
         f"{tally.errors}"),
        ("latency p50 / p95 / p99 (ms)",
         " / ".join(f"{quantiles[p] * 1000:.2f}"
                    for p in ("p50", "p95", "p99"))),
        ("telemetry samples", runtime.telemetry.appended),
    ]
    print(format_table(("repro top", "value"), rows,
                       title=f"final: {args.rps:.0f} rps for "
                             f"{args.duration:.1f}s, seed {args.seed}"))
    slo_ok = _apply_slo_gate(report, spec)
    return 0 if tally.errors == 0 and tally.served > 0 and slo_ok else 1


def _build_state_world(seed: int, users: int, shards: int,
                       journal_dir: Optional[str] = None):
    """The deterministic world behind ``checkpoint``/``restore``/
    ``replay``: a seeded persona-mix population with a launched Tread
    sweep, sharded with keyed competition so any two invocations with
    the same manifest produce identical serving decisions.
    """
    from repro.serve import ShardRouter, journal_store_factory
    from repro.workloads.competition import zero_competition

    platform = AdPlatform(
        config=PlatformConfig(name="state-cli"),
        catalog=build_us_catalog(platform_count=40, partner_count=25),
        competing_draw=zero_competition(),
    )
    web = WebDirectory()
    builder = PopulationBuilder(platform, seed=seed)
    builder.spawn_mix(
        [ESTABLISHED_PROFESSIONAL, AVERAGE_CONSUMER,
         RECENT_ARRIVAL_GRAD_STUDENT],
        users,
    )
    builder.finalize()
    provider = TransparencyProvider(platform, web, budget=10_000.0,
                                    bid_cap_cpm=10.0)
    for user_id in platform.users.user_ids():
        provider.optin.via_page_like(user_id)
    provider.launch_partner_sweep()
    factory = (journal_store_factory(journal_dir)
               if journal_dir is not None else None)
    router = ShardRouter(platform, num_shards=shards,
                         competition=KeyedCompetition(seed=seed),
                         store_factory=factory)
    return platform, router


def _serve_rounds(platform, router, rounds: int, slots: int) -> None:
    """Round-robin every user through their shard, ``rounds`` times."""
    for _ in range(rounds):
        for user in platform.users:
            shard = router.shard_for(user.user_id)
            base = shard.claim_slots(user.user_id, slots)
            with shard.engine.serving_session():
                shard.serve_user_slots(user, base, slots)


def _cmd_populate(args: argparse.Namespace) -> int:
    import time

    from repro.store.store import NullStore
    from repro.workloads.competition import zero_competition

    if args.users < 1:
        print("populate: --users must be >= 1", file=sys.stderr)
        return 2
    if args.sweep_workers is not None and not args.sweep:
        print("populate: --sweep-workers needs --sweep", file=sys.stderr)
        return 2
    columnar = args.columnar or args.sweep
    if args.sweep:
        # The batch sweep wants the million-user memory shape: columnar
        # rows, compact delivery state, journal records discarded, and
        # a constant competing draw (required for --sweep-workers).
        platform = AdPlatform(
            config=PlatformConfig(name="populate", columnar_users=True,
                                  compact_delivery=True),
            catalog=build_us_catalog(),
            competing_draw=zero_competition(),
            store=NullStore(),
        )
    else:
        platform = AdPlatform(
            config=PlatformConfig(name="populate",
                                  columnar_users=columnar),
            catalog=build_us_catalog(),
        )
    builder = PopulationBuilder(platform, seed=args.seed)
    personas = [AVERAGE_CONSUMER, ESTABLISHED_PROFESSIONAL,
                RECENT_ARRIVAL_GRAD_STUDENT]
    started = time.perf_counter()
    spawned = 0
    for chunk in builder.spawn_stream(personas, args.users,
                                      chunk_size=args.chunk_size):
        spawned += len(chunk)
    builder.finalize()
    elapsed = time.perf_counter() - started

    store_kind = "columnar" if columnar else "legacy"
    rows: List[Tuple[str, str]] = [
        ("store", store_kind),
        ("users", f"{spawned:,}"),
        ("populate (s)", f"{elapsed:.2f}"),
        ("users/s", f"{spawned / elapsed:,.0f}" if elapsed > 0
         else "inf"),
    ]
    if args.stats:
        if columnar:
            stats = platform.users.stats()
            rows.extend([
                ("binary attr vocab", str(stats["binary_attr_vocab"])),
                ("page vocab", str(stats["page_vocab"])),
                ("multi columns", str(stats["multi_columns"])),
                ("column bytes", f"{stats['column_bytes']:,}"),
                ("attr bitset density",
                 f"{stats['attr_bitset_density']:.4f}"),
                ("dense ids", str(stats["dense_ids"])),
            ])
        else:
            rows.append(("stats", "columnar-only; rerun with "
                                  "--columnar"))
    if args.sweep:
        provider = TransparencyProvider(platform, WebDirectory(),
                                        budget=50_000.0)
        for user_id in platform.users.user_ids():
            provider.optin.via_page_like(user_id)
        provider.launch_partner_sweep()
        deliver_wall = time.perf_counter()
        deliver_cpu = time.process_time()
        provider.run_delivery(sweep=True,
                              sweep_workers=args.sweep_workers)
        deliver_wall = time.perf_counter() - deliver_wall
        deliver_cpu = time.process_time() - deliver_cpu
        impressions = provider.total_impressions()
        rows.extend([
            ("sweep workers", str(args.sweep_workers or 1)),
            ("sweep impressions", f"{impressions:,}"),
            ("sweep wall (s)", f"{deliver_wall:.2f}"),
            ("sweep cpu (s)", f"{deliver_cpu:.2f}"),
            ("impressions/s", f"{impressions / deliver_wall:,.0f}"
             if deliver_wall > 0 else "inf"),
        ])
    print(format_table(("metric", "value"), rows,
                       title=f"populate — {store_kind} store"))
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    import os

    from repro.store.audit import canonical_json, state_report

    if not 0 <= args.checkpoint_after <= args.rounds:
        print("--checkpoint-after must be within [0, --rounds]",
              file=sys.stderr)
        return 2
    platform, router = _build_state_world(
        args.seed, args.users, args.shards, journal_dir=args.out)
    _serve_rounds(platform, router, args.checkpoint_after, args.slots)
    snapshots = router.checkpoint_shards(
        directory=args.out, label=f"after-round-{args.checkpoint_after}")
    _serve_rounds(platform, router,
                  args.rounds - args.checkpoint_after, args.slots)
    for shard in router.shards:
        shard.store.flush()
    manifest = {
        "seed": args.seed,
        "users": args.users,
        "shards": args.shards,
        "rounds": args.rounds,
        "checkpoint_after": args.checkpoint_after,
        "slots": args.slots,
    }
    with open(os.path.join(args.out, "manifest.json"), "w",
              encoding="utf-8") as stream:
        json.dump(manifest, stream, indent=2, sort_keys=True)
        stream.write("\n")
    report = state_report(router)
    with open(os.path.join(args.out, "final_report.json"), "w",
              encoding="utf-8") as stream:
        stream.write(canonical_json(report))
        stream.write("\n")
    journaled = sum(shard.store.record_count for shard in router.shards)
    for shard in router.shards:
        shard.store.close()
    rows = [
        ("shards", args.shards),
        ("rounds (snapshot after)",
         f"{args.rounds} ({args.checkpoint_after})"),
        ("records journaled", journaled),
        ("snapshot journal seqs",
         ", ".join(str(s.journal_seq) for s in snapshots)),
        ("impressions", report["totals"]["impressions"]),
        ("total spend", f"${report['totals']['spend']:.4f}"),
    ]
    print(format_table(("checkpoint", "value"), rows,
                       title=f"repro checkpoint -> {args.out}"))
    return 0


def _load_state_manifest(state_dir: str) -> dict:
    import os

    with open(os.path.join(state_dir, "manifest.json"),
              encoding="utf-8") as stream:
        return json.load(stream)


def _diff_against_recorded(router, state_dir: str,
                           mode: str) -> int:
    """Shared tail of ``restore``/``replay``: byte-diff the rebuilt
    router's report against the recorded one."""
    import os

    from repro.store.audit import canonical_json, state_report

    with open(os.path.join(state_dir, "final_report.json"),
              encoding="utf-8") as stream:
        recorded = stream.read().strip()
    rebuilt = canonical_json(state_report(router))
    for shard in router.shards:
        shard.store.close()
    identical = rebuilt == recorded
    rows = [
        ("recorded report bytes", len(recorded)),
        ("rebuilt report bytes", len(rebuilt)),
        ("byte-identical", "yes" if identical else "NO"),
    ]
    print(format_table((mode, "value"), rows,
                       title=f"repro {mode} <- {state_dir}"))
    if not identical:
        print(f"{mode} diverged from the recorded final state",
              file=sys.stderr)
    return 0 if identical else 1


def _cmd_restore(state_dir: str) -> int:
    manifest = _load_state_manifest(state_dir)
    _, router = _build_state_world(
        manifest["seed"], manifest["users"], manifest["shards"])
    for index in range(router.num_shards):
        router.recover_shard(index, state_dir)
    return _diff_against_recorded(router, state_dir, "restore")


def _cmd_replay(state_dir: str) -> int:
    from repro.serve import shard_journal_path
    from repro.store import JournalStore

    manifest = _load_state_manifest(state_dir)
    _, router = _build_state_world(
        manifest["seed"], manifest["users"], manifest["shards"])
    replayed = 0
    for index, shard in enumerate(router.shards):
        records = JournalStore.read(
            shard_journal_path(state_dir, index, router.num_shards))
        replayed += shard.store.replay(records)
    print(f"replayed {replayed} records across "
          f"{router.num_shards} shard(s)", file=sys.stderr)
    return _diff_against_recorded(router, state_dir, "replay")


def _cmd_gateway(args: argparse.Namespace) -> int:
    import signal

    from repro.gateway import (
        GatewayApp,
        GatewayServer,
        TenantRegistry,
        WorldManifest,
        build_runtime,
        build_world,
        existing_shard_journals,
        load_manifest,
        open_tenancy_store,
        recover_runtime_shards,
        save_manifest,
        tenancy_journal_path,
    )
    from repro.store import JournalStore
    from repro.store.audit import canonical_json, state_report

    spec = _parse_slo_arg(args)
    manifest = load_manifest(args.journal_dir)
    if manifest is None:
        manifest = WorldManifest(
            seed=args.seed,
            users=args.users,
            shards=args.shards,
            backend=args.backend,
            queue_capacity=args.queue_capacity,
            workers=1,
            deadline_ms=args.deadline_ms,
        )
        save_manifest(args.journal_dir, manifest)
    else:
        print(f"recovering world from {args.journal_dir} "
              f"(manifest wins over the world flags)", file=sys.stderr)
    present = existing_shard_journals(args.journal_dir, manifest)
    platform = build_world(manifest)
    runtime = build_runtime(
        platform, manifest, journal_dir=args.journal_dir,
        telemetry_interval_s=_telemetry_interval_for(args))
    recovered = recover_runtime_shards(runtime, args.journal_dir,
                                       manifest, indices=present)
    if recovered:
        print(f"recovered shard journal(s) {list(recovered)}",
              file=sys.stderr)
    tenancy_records = []
    tenancy_file = tenancy_journal_path(args.journal_dir)
    if os.path.exists(tenancy_file):
        tenancy_records = JournalStore.read(tenancy_file)
    store = open_tenancy_store(args.journal_dir)
    tenants = TenantRegistry(platform, store)
    for record in tenancy_records:
        tenants.apply_record(record)
    if tenancy_records:
        print(f"replayed {len(tenancy_records)} tenancy record(s)",
              file=sys.stderr)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out is not None:
        runtime.add_telemetry_listener(
            lambda rt, sample: _write_metrics_snapshot(
                metrics_out, rt.live_metrics()))
    runtime.start()
    server = GatewayServer(
        GatewayApp(platform, runtime, tenants, manifest,
                   slo_spec=spec),
        host=args.host, port=args.port)
    try:
        server.start()
    except RuntimeError as exc:
        print(f"gateway: {exc}", file=sys.stderr)
        runtime.stop()
        store.close()
        return 1
    print(f"gateway listening on {server.url} "
          f"(journal dir {args.journal_dir})", flush=True)
    stopping = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda _s, _f: stopping.set())
    stopping.wait()
    print("gateway shutting down", file=sys.stderr)
    server.stop()
    runtime.stop()
    report = state_report(runtime.router)
    with open(os.path.join(args.journal_dir, "final_report.json"),
              "w", encoding="utf-8") as stream:
        stream.write(canonical_json(report))
        stream.write("\n")
    if runtime.config.backend != "process":
        for shard in runtime.router.shards:
            shard.store.close()
    store.close()
    if metrics_out is not None:
        _write_metrics_snapshot(metrics_out, registry())
    return 0


def _cmd_httpgen(args: argparse.Namespace) -> int:
    from repro.gateway import HttpLoadGenerator

    spec = _parse_slo_arg(args)
    generator = HttpLoadGenerator(
        args.url,
        config=LoadConfig(
            rps=args.rps,
            duration_s=args.duration,
            slots=args.slots,
            deadline_s=(args.deadline_ms / 1000.0
                        if args.deadline_ms is not None else None),
            seed=args.seed,
        ),
        connections=args.connections,
    )
    try:
        report = generator.run()
    except (OSError, RuntimeError, ValueError) as exc:
        print(f"httpgen: {exc}", file=sys.stderr)
        return 1
    quantiles = report.percentiles()
    tally = report.tally
    rows = [
        ("gateway", args.url),
        ("offered", report.offered),
        ("connections", args.connections),
        ("target / achieved rps",
         f"{report.config.rps:.0f} / {report.achieved_rps:.0f}"),
        ("served", tally.served),
        ("shed (429)", tally.shed),
        ("timeout (504)", tally.timeout),
        ("errors", tally.errors),
        ("p50 (ms)", f"{quantiles['p50'] * 1000:.3f}"),
        ("p95 (ms)", f"{quantiles['p95'] * 1000:.3f}"),
        ("p99 (ms)", f"{quantiles['p99'] * 1000:.3f}"),
    ]
    print(format_table(("http load generation", "value"), rows,
                       title=f"repro httpgen: {args.rps:.0f} rps for "
                             f"{args.duration:.1f}s, seed {args.seed}"))
    slo_ok = _apply_slo_gate(report, spec)
    if args.histogram_out is not None:
        with open(args.histogram_out, "w", encoding="utf-8") as stream:
            json.dump(report.record(), stream, indent=2)
            stream.write("\n")
        print(f"wrote latency histogram to {args.histogram_out}",
              file=sys.stderr)
    return 0 if tally.errors == 0 and tally.served > 0 and slo_ok else 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "catalog":
        if args.catalog_command == "stats":
            return _cmd_catalog_stats()
        return _cmd_catalog_search(args.keyword, args.limit)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "validate":
        return _cmd_validate(args.seed, args.bid_cpm)
    if args.command == "stats":
        return _cmd_stats(args.scenario, args.stats_format)
    if args.command == "cost":
        return _cmd_cost(args.cpm, args.attributes)
    if args.command == "scale":
        return _cmd_scale(args.m)
    if args.command == "attack":
        return _cmd_attack(args.defense_threshold)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "gateway":
        return _cmd_gateway(args)
    if args.command == "httpgen":
        return _cmd_httpgen(args)
    if args.command == "populate":
        return _cmd_populate(args)
    if args.command == "checkpoint":
        return _cmd_checkpoint(args)
    if args.command == "restore":
        return _cmd_restore(args.state_dir)
    if args.command == "replay":
        return _cmd_replay(args.state_dir)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    _configure_logging(args.verbose)
    trace_out = getattr(args, "trace_out", None)
    if trace_out is None:
        return _dispatch(args)
    run_tracer = Tracer()
    with use_tracer(run_tracer):
        code = _dispatch(args)
    with open(trace_out, "w", encoding="utf-8") as stream:
        if getattr(args, "trace_format", "jsonl") == "chrome":
            written = run_tracer.write_chrome_trace(stream)
        else:
            written = run_tracer.write_jsonl(stream)
    print(f"wrote {written} spans to {trace_out}", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
