"""Provider-side campaign reports.

Renders a human-readable summary of a Tread campaign from exactly the
data a real provider would hold: its own Tread plan, the platform's
performance reports, and the billing invoice. Used by the CLI and the
examples; tests assert it never contains user identities.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import format_table
from repro.core.provider import TransparencyProvider
from repro.core.treads import RevealKind


def campaign_report(provider: TransparencyProvider,
                    top_attributes: int = 10) -> str:
    """A text report of one provider's campaign so far."""
    lines: List[str] = []
    launched = [t for t in provider.treads if t.launched]
    rejected = [t for t in provider.treads if t.rejected]
    invoice = provider.platform.invoice(provider.account.account_id)

    by_kind: dict = {}
    for tread in launched:
        key = tread.payload.kind.value
        by_kind[key] = by_kind.get(key, 0) + 1

    overview_rows = [
        ("Treads launched", len(launched)),
        ("Treads rejected by review", len(rejected)),
        ("impressions billed", invoice.impressions),
        ("total spend", f"${invoice.total:.4f}"),
        ("effective CPM",
         f"${1000 * invoice.total / invoice.impressions:.2f}"
         if invoice.impressions else "-"),
        ("remaining budget", f"${provider.account.budget:.2f}"),
    ]
    lines.append(format_table(
        ("quantity", "value"), overview_rows,
        title=f"Campaign report — {provider.name} on "
              f"{provider.platform.name}",
    ))
    lines.append("")
    lines.append(format_table(
        ("Tread kind", "count"), sorted(by_kind.items()),
        title="Launched Treads by kind",
    ))

    counts = provider.aggregate_attribute_counts()
    nonzero = sorted(
        ((attr_id, count) for attr_id, count in counts.items() if count),
        key=lambda item: (-item[1], item[0]),
    )
    if nonzero:
        catalog = provider.platform.catalog
        rows = [
            (catalog.get(attr_id).name if attr_id in catalog else attr_id,
             count)
            for attr_id, count in nonzero[:top_attributes]
        ]
        lines.append("")
        lines.append(format_table(
            ("attribute (aggregate reach)", "opted-in users"),
            rows,
            title=f"Top attributes among subscribers "
                  f"(aggregates only — the provider never sees users)",
        ))
    return "\n".join(lines)
