"""Statistical helpers for provider-side estimates.

The provider "can estimate how many of the opted-in users have a
particular attribute" (paper section 3.1). When the opted-in population
is itself a sample of some larger population of interest, that count is a
binomial observation; the Wilson score interval turns it into an honest
population-prevalence estimate. Pure-python (no scipy needed here) so the
provider-side code keeps its light dependency footprint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

#: z for the conventional 95% interval.
_Z_95 = 1.959963984540054


@dataclass(frozen=True)
class PrevalenceEstimate:
    """A prevalence point estimate with its Wilson 95% interval."""

    count: int
    sample_size: int
    point: float
    low: float
    high: float

    def __str__(self) -> str:
        return (f"{self.point:.1%} "
                f"[{self.low:.1%}, {self.high:.1%}] "
                f"(n={self.sample_size})")


def wilson_interval(count: int, sample_size: int,
                    z: float = _Z_95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because Tread counts are
    often tiny (the paper's validation had n=2) where Wald intervals
    collapse to nonsense.
    """
    if sample_size <= 0:
        raise ValueError("sample size must be positive")
    if not 0 <= count <= sample_size:
        raise ValueError("count must lie in [0, sample size]")
    p_hat = count / sample_size
    denom = 1 + z * z / sample_size
    centre = (p_hat + z * z / (2 * sample_size)) / denom
    margin = (z / denom) * math.sqrt(
        p_hat * (1 - p_hat) / sample_size
        + z * z / (4 * sample_size * sample_size)
    )
    low = max(0.0, centre - margin)
    high = min(1.0, centre + margin)
    # At the boundaries the Wilson endpoints equal 0/1 exactly in real
    # arithmetic; pin them so float round-off cannot produce a "low" of
    # 3e-17 that excludes the observed proportion.
    if count == 0:
        low = 0.0
    if count == sample_size:
        high = 1.0
    return (low, high)


def prevalence_estimate(count: int, sample_size: int) -> PrevalenceEstimate:
    """Point + Wilson 95% interval for one attribute's prevalence."""
    low, high = wilson_interval(count, sample_size)
    return PrevalenceEstimate(
        count=count,
        sample_size=sample_size,
        point=count / sample_size,
        low=low,
        high=high,
    )
