"""Fixed-width table rendering for the benchmark harness.

Every bench prints paper-vs-measured rows; this renderer keeps them
aligned and diff-friendly (stable column widths, right-aligned numbers).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 0.01:
            return f"{cell:.5f}"
        return f"{cell:,.3f}".rstrip("0").rstrip(".")
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
) -> str:
    """Render an aligned text table.

    >>> print(format_table(("a", "b"), [(1, 2.5)]))
    a |   b
    --+----
    1 | 2.5
    """
    str_rows: List[List[str]] = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.ljust(widths[index]) if index == 0 else
            cell.rjust(widths[index])
            for index, cell in enumerate(cells)
        ).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                title: str = "") -> None:
    print(format_table(headers, rows, title=title))
    print()
