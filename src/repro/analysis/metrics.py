"""Reveal-quality metrics.

A transparency mechanism's output for one user is a set of revealed facts;
the simulation knows the ground truth (the platform's actual profile).
These metrics score mechanisms the way the paper frames the comparison:
the status quo "present[s] an incomplete view" while Treads reveal the
full targetable profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Set


@dataclass(frozen=True)
class CoverageScore:
    """Precision / recall / F1 of one revealed fact-set vs ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        if denominator == 0:
            return 1.0  # revealed nothing wrong
        return self.true_positives / denominator

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        if denominator == 0:
            return 1.0  # nothing to reveal
        return self.true_positives / denominator

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)


def score_reveal(revealed: Set[str], truth: Set[str]) -> CoverageScore:
    """Score one user's revealed attribute ids against ground truth."""
    return CoverageScore(
        true_positives=len(revealed & truth),
        false_positives=len(revealed - truth),
        false_negatives=len(truth - revealed),
    )


def mechanism_completeness(
    revealed_by_user: Mapping[str, Set[str]],
    truth_by_user: Mapping[str, Set[str]],
) -> float:
    """Population-level completeness: total facts revealed / total facts.

    Users with empty ground truth contribute nothing to either sum (they
    have nothing to reveal), mirroring how the paper's unprofiled author
    is not a miss for Treads.
    """
    revealed_total = 0
    truth_total = 0
    for user_id, truth in truth_by_user.items():
        truth_total += len(truth)
        revealed_total += len(revealed_by_user.get(user_id, set()) & truth)
    if truth_total == 0:
        return 1.0
    return revealed_total / truth_total


@dataclass(frozen=True)
class DeliveryDisparity:
    """Delivery-rate comparison between two user groups for one ad.

    The measurement behind the discriminatory-advertising findings the
    paper recounts in section 5: an ad can *formally* target something
    innocuous yet reach protected groups at very different rates.
    """

    group_a_reached: int
    group_a_total: int
    group_b_reached: int
    group_b_total: int

    @property
    def rate_a(self) -> float:
        return self.group_a_reached / self.group_a_total \
            if self.group_a_total else 0.0

    @property
    def rate_b(self) -> float:
        return self.group_b_reached / self.group_b_total \
            if self.group_b_total else 0.0

    @property
    def disparate_impact_ratio(self) -> float:
        """rate_b / rate_a — the 80%-rule statistic (1.0 = parity;
        below 0.8 is the conventional adverse-impact threshold)."""
        if self.rate_a == 0.0:
            return 1.0 if self.rate_b == 0.0 else float("inf")
        return self.rate_b / self.rate_a


def delivery_disparity(
    reached_user_ids: Set[str],
    group_a_ids: Set[str],
    group_b_ids: Set[str],
) -> DeliveryDisparity:
    """Score one ad's reach against two disjoint user groups."""
    return DeliveryDisparity(
        group_a_reached=len(reached_user_ids & group_a_ids),
        group_a_total=len(group_a_ids),
        group_b_reached=len(reached_user_ids & group_b_ids),
        group_b_total=len(group_b_ids),
    )


def macro_scores(
    revealed_by_user: Mapping[str, Set[str]],
    truth_by_user: Mapping[str, Set[str]],
) -> Dict[str, float]:
    """Macro-averaged precision/recall/F1 across users."""
    scores = [
        score_reveal(revealed_by_user.get(user_id, set()), truth)
        for user_id, truth in truth_by_user.items()
    ]
    if not scores:
        return {"precision": 1.0, "recall": 1.0, "f1": 1.0}
    return {
        "precision": sum(s.precision for s in scores) / len(scores),
        "recall": sum(s.recall for s in scores) / len(scores),
        "f1": sum(s.f1 for s in scores) / len(scores),
    }
