"""Scoring and presentation helpers for experiments."""

from repro.analysis.metrics import (
    CoverageScore,
    mechanism_completeness,
    score_reveal,
)
from repro.analysis.tables import format_table

__all__ = [
    "CoverageScore",
    "format_table",
    "mechanism_completeness",
    "score_reveal",
]
