"""Simulation trace export/import (JSON Lines).

Benchmarks and examples sometimes need to hand a run's raw events to
external tooling (plotting, spreadsheets, diffing two configurations).
A trace is a list of flat JSON records — impressions, clicks, charges,
pixel events, and web-log entries — with a header line carrying run
metadata. Everything here is plain data the respective parties could
log anyway; no platform-internal secrets are added (the impression and
click logs are platform-internal and marked as such in their records).

Live observability streams merge in, too: records captured from
:mod:`repro.obs.events` (via :func:`merge_event_stream`) interleave
with the snapshot records under their own kinds, so one trace file can
carry both the post-hoc state dump and the as-it-happened event log.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.obs.events import ObsEvent
from repro.platform.platform import AdPlatform
from repro.platform.web import Website

_SCHEMA_VERSION = 1


@dataclass
class Trace:
    """An in-memory trace: a header plus flat event records."""

    header: Dict[str, object] = field(default_factory=dict)
    events: List[Dict[str, object]] = field(default_factory=list)

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        return [e for e in self.events if e.get("kind") == kind]

    def __len__(self) -> int:
        return len(self.events)


def capture_trace(platform: AdPlatform,
                  websites: Optional[List[Website]] = None) -> Trace:
    """Snapshot a platform's (and optionally some websites') event logs."""
    trace = Trace(header={
        "schema": _SCHEMA_VERSION,
        "platform": platform.name,
        "users": len(platform.users),
        "ads": len(platform.inventory.ads()),
    })
    for impression in platform.delivery.impressions():
        trace.events.append({
            "kind": "impression",
            "visibility": "platform-internal",
            "seq": impression.seq,
            "ad_id": impression.ad_id,
            "account_id": impression.account_id,
            "user_id": impression.user_id,
            "price": impression.price,
        })
    for click in platform.delivery.clicks():
        trace.events.append({
            "kind": "click",
            "visibility": "platform-internal",
            "ad_id": click.ad_id,
            "user_id": click.user_id,
            "click_seq": click.click_seq,
        })
    for charge in platform.ledger.all_charges():
        trace.events.append({
            "kind": "charge",
            "visibility": "advertiser",
            "ad_id": charge.ad_id,
            "account_id": charge.account_id,
            "amount": charge.amount,
            "impression_seq": charge.impression_seq,
        })
    for website in websites or []:
        for entry in website.access_log:
            trace.events.append({
                "kind": "web_visit",
                "visibility": "site-owner",
                "domain": website.domain,
                "path": entry.path,
                "cookie_id": entry.cookie_id,
                "visit_seq": entry.visit_seq,
            })
    return trace


def merge_event_stream(
    trace: Trace,
    events: Iterable[Union[ObsEvent, Dict[str, object]]],
) -> Trace:
    """Fold a live obs event stream into a captured trace (in place).

    ``events`` may be typed :class:`~repro.obs.events.ObsEvent` records
    (e.g. from ``EventBus.capture()``) or already-flat dicts (e.g. a
    parsed JSONL sink file). Each lands as one trace record under its
    own kind, tagged ``"visibility": "observability"`` so downstream
    tooling can separate live telemetry from the snapshot records.
    Returns the trace for chaining.
    """
    for event in events:
        record = event.record() if isinstance(event, ObsEvent) \
            else dict(event)
        record.setdefault("visibility", "observability")
        if record.get("kind") == "header":
            raise ValueError("event stream cannot carry a header record")
        trace.events.append(record)
    return trace


def dump_jsonl(trace: Trace) -> str:
    """Serialize a trace to a JSONL string (header first)."""
    buffer = io.StringIO()
    buffer.write(json.dumps({"kind": "header", **trace.header}))
    buffer.write("\n")
    for event in trace.events:
        buffer.write(json.dumps(event))
        buffer.write("\n")
    return buffer.getvalue()


def load_jsonl(text: str) -> Trace:
    """Parse a JSONL trace string back into a :class:`Trace`.

    Raises :class:`ValueError` on a missing/invalid header or schema
    mismatch, so silently-corrupt traces fail loudly.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty trace")
    header = json.loads(lines[0])
    if header.get("kind") != "header":
        raise ValueError("trace must start with a header record")
    if header.get("schema") != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema {header.get('schema')!r}"
        )
    header.pop("kind")
    trace = Trace(header=header)
    for line in lines[1:]:
        trace.events.append(json.loads(line))
    return trace


def spend_by_day_of_seq(trace: Trace, seqs_per_day: int = 1000) -> Dict[int, float]:
    """Example downstream analysis: bucket charges by impression seq."""
    if seqs_per_day <= 0:
        raise ValueError("seqs_per_day must be positive")
    buckets: Dict[int, float] = {}
    for event in trace.of_kind("charge"):
        bucket = int(event["impression_seq"]) // seqs_per_day
        buckets[bucket] = buckets.get(bucket, 0.0) + float(event["amount"])
    return buckets
