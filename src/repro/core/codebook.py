"""Obfuscation codebooks: payloads <-> innocuous numeric tokens.

Figure 1b of the paper shows a Tread "obfuscating its targeting, encoding
the parameter as part of the ad ('2,830,120')". The mapping from targeting
information to such encodings "is provided to users" when they opt in
(section 3, section 3.1 "User opt-in"), so a browser extension can decode
received Treads while the ad text stays innocuous for ToS review.

A :class:`Codebook` deterministically assigns each payload a unique
seven-digit token, rendered with thousands separators exactly like the
figure. The provider builds one codebook per campaign; the user-side
client holds a copy.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.treads import RevealPayload, payload_from_canonical
from repro.errors import EncodingError

_TOKEN_SPACE = 9_000_000  # seven-digit tokens: 1,000,000 .. 9,999,999
_TOKEN_BASE = 1_000_000


def _token_for(canonical: str, salt: str, attempt: int) -> int:
    digest = hashlib.sha256(
        f"{salt}:{attempt}:{canonical}".encode("utf-8")
    ).digest()
    return _TOKEN_BASE + int.from_bytes(digest[:8], "big") % _TOKEN_SPACE


@dataclass
class Codebook:
    """A bidirectional payload/token mapping shared at opt-in.

    ``salt`` namespaces campaigns: two providers (or two campaigns) derive
    disjoint-looking token sets, so a user subscribed to both cannot
    confuse their Treads.
    """

    salt: str = "treads"
    _by_canonical: Dict[str, int] = field(default_factory=dict)
    _by_token: Dict[int, str] = field(default_factory=dict)

    def register(self, payload: RevealPayload) -> str:
        """Assign (or return the existing) token for a payload.

        Hash collisions inside one codebook are resolved by rehashing with
        an attempt counter, so registration never fails.
        """
        canonical = payload.canonical()
        if canonical in self._by_canonical:
            return self.render(self._by_canonical[canonical])
        attempt = 0
        token = _token_for(canonical, self.salt, attempt)
        while token in self._by_token:
            attempt += 1
            token = _token_for(canonical, self.salt, attempt)
        self._by_canonical[canonical] = token
        self._by_token[token] = canonical
        return self.render(token)

    def register_all(self, payloads: Iterable[RevealPayload]) -> List[str]:
        return [self.register(payload) for payload in payloads]

    @staticmethod
    def render(token: int) -> str:
        """Format a token with thousands separators ("2,830,120")."""
        return f"{token:,}"

    @staticmethod
    def parse_token(text: str) -> int:
        cleaned = text.replace(",", "").strip()
        if not cleaned.isdigit():
            raise EncodingError(f"{text!r} is not a codebook token")
        return int(cleaned)

    def token_for(self, payload: RevealPayload) -> Optional[str]:
        """Rendered token for a payload, or None when unregistered."""
        token = self._by_canonical.get(payload.canonical())
        if token is None:
            return None
        return self.render(token)

    def decode(self, token_text: str) -> RevealPayload:
        """Token text (with or without separators) back to its payload."""
        token = self.parse_token(token_text)
        canonical = self._by_token.get(token)
        if canonical is None:
            raise EncodingError(f"token {token_text!r} not in codebook")
        return payload_from_canonical(canonical)

    def try_decode(self, token_text: str) -> Optional[RevealPayload]:
        """Like :meth:`decode` but returns None for unknown/invalid text —
        the extension scans all ad text and most of it is not a token."""
        try:
            return self.decode(token_text)
        except EncodingError:
            return None

    def __len__(self) -> int:
        return len(self._by_token)

    def snapshot(self) -> Dict[str, str]:
        """Serializable view ``rendered-token -> canonical payload`` — what
        the provider actually publishes to opted-in users."""
        return {
            self.render(token): canonical
            for token, canonical in sorted(self._by_token.items())
        }

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, str],
                      salt: str = "treads") -> "Codebook":
        """Rebuild a codebook from its published snapshot (user side)."""
        book = cls(salt=salt)
        for rendered, canonical in snapshot.items():
            token = cls.parse_token(rendered)
            if token in book._by_token:
                raise EncodingError(f"duplicate token {rendered!r}")
            book._by_token[token] = canonical
            book._by_canonical[canonical] = token
        return book
