"""The log2(m) bit-splitting scheme for multi-valued attributes.

Paper section 3.1, "Scale": *"For a non-binary attribute (such as age)
with m possible values, only log2(m) Treads are required in total to allow
any user to learn which of the m possible values they have (since each
Tread can represent one of the log2(m) bits to be learnt)."*

The construction: index the attribute's values 0..m-1. For each bit
position b in 0..ceil(log2 m)-1, run one Tread targeting the users whose
assigned value's index has bit b set — an OR over the matching values.
A user assigned value v receives exactly the Treads for v's set bits;
missing bit-Treads decode as 0 (the control ad establishes the user was
reachable, so absence is informative). The recipient reconstructs v's
index and looks the value up in the published value table.

Compare with *value enumeration*: m Treads, one per value, of which each
user receives exactly one. Both cost the user O(1)-ish impressions; the
provider's ad count differs by m / log2(m) — the benchmark E4 table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.treads import RevealKind, RevealPayload
from repro.errors import CatalogError, EncodingError
from repro.platform.attributes import Attribute, AttributeKind


def bits_needed(m: int) -> int:
    """ceil(log2(m)) — Treads needed to distinguish m values; 0 for m=1."""
    if m < 1:
        raise ValueError("m must be positive")
    if m == 1:
        return 0
    return (m - 1).bit_length()


def treads_needed_enumeration(m: int) -> int:
    """Ads needed by the naive one-Tread-per-value scheme."""
    if m < 1:
        raise ValueError("m must be positive")
    return m


def values_with_bit(values: Sequence[str], bit_index: int) -> List[str]:
    """Values whose index has ``bit_index`` set — one Tread's OR-targets."""
    return [
        value for index, value in enumerate(values)
        if (index >> bit_index) & 1
    ]


@dataclass(frozen=True)
class BitTread:
    """One planned bit-Tread: its payload plus the value OR-list."""

    payload: RevealPayload
    attr_id: str
    bit_index: int
    or_values: Tuple[str, ...]

    def targeting_term(self) -> str:
        """The compact targeting fragment for this bit-Tread."""
        clauses = [
            f"value:{self.attr_id}={value}" for value in self.or_values
        ]
        if len(clauses) == 1:
            return clauses[0]
        return "(" + " | ".join(clauses) + ")"


def plan_bit_treads(attribute: Attribute) -> List[BitTread]:
    """The ceil(log2 m) bit-Treads for one multi-valued attribute."""
    if attribute.kind is not AttributeKind.MULTI:
        raise CatalogError(
            f"bit-splitting needs a multi attribute, got {attribute.attr_id!r}"
        )
    plans: List[BitTread] = []
    for bit_index in range(bits_needed(len(attribute.values))):
        or_values = values_with_bit(attribute.values, bit_index)
        if not or_values:
            continue  # can't happen for bit < bits_needed, kept defensive
        payload = RevealPayload(
            kind=RevealKind.VALUE_BIT,
            attr_id=attribute.attr_id,
            bit_index=bit_index,
            bit_value=1,
            display=attribute.name,
        )
        plans.append(
            BitTread(
                payload=payload,
                attr_id=attribute.attr_id,
                bit_index=bit_index,
                or_values=tuple(or_values),
            )
        )
    return plans


def expected_impressions_per_user(attribute: Attribute) -> float:
    """Average bit-Treads a uniformly-assigned user receives (= mean
    popcount of value indices). Bounded by bits_needed(m)."""
    m = len(attribute.values)
    total = sum(bin(index).count("1") for index in range(m))
    return total / m


def reconstruct_value(
    attribute_values: Sequence[str],
    received_bits: Dict[int, int],
    total_bits: Optional[int] = None,
) -> str:
    """User-side: rebuild the assigned value from received bit-Treads.

    ``received_bits`` maps bit_index -> bit_value for every bit-Tread the
    user received; positions absent from the map decode as 0. The result
    index must fall inside the value table — an out-of-range index means
    the campaign did not saturate (or the user decoded garbage), and is an
    error rather than a silent wrong answer.
    """
    width = total_bits if total_bits is not None \
        else bits_needed(len(attribute_values))
    index = 0
    for bit_index, bit_value in received_bits.items():
        if bit_index >= width:
            raise EncodingError(
                f"bit index {bit_index} outside {width}-bit encoding"
            )
        if bit_value:
            index |= 1 << bit_index
    if index >= len(attribute_values):
        raise EncodingError(
            f"reconstructed index {index} outside value table of size "
            f"{len(attribute_values)}"
        )
    return attribute_values[index]
