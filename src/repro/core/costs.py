"""The Treads cost model (paper section 3.1, "Cost").

The arithmetic the paper reports, reproduced both analytically (this
module) and empirically (the billing ledger of a simulated campaign):

* at the recommended **$2 CPM**, one impression — one attribute revealed —
  costs **$0.002**;
* at the validation's elevated **$10 CPM**, **$0.01** per attribute;
* a user with 50 set attributes costs **$0.10** to fully reveal;
* attributes a user does *not* have cost **zero** (their Treads are never
  shown to that user);
* an m-valued attribute still costs ~one impression per user (the user
  receives only their own value's Tread).

The funding models sketched in the paper — provider-funded via donations,
or user-pays ("users opting-in could pay the transparency provider a
nominal fee (the cost of their own impressions)") — are modelled by
:class:`FundingPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

#: Paper constants.
DEFAULT_CPM_USD = 2.0
VALIDATION_CPM_USD = 10.0


@dataclass(frozen=True)
class CostModel:
    """Analytic per-impression cost at a given CPM bid."""

    cpm: float = DEFAULT_CPM_USD

    @property
    def per_impression(self) -> float:
        """Dollars per single impression: CPM / 1000."""
        return self.cpm / 1000.0

    def per_attribute(self) -> float:
        """Cost to reveal one set attribute to one user: one impression."""
        return self.per_impression

    def full_profile(self, set_attribute_count: int,
                     include_control: bool = False) -> float:
        """Cost to reveal a user's whole profile of set attributes.

        Only *set* attributes cost anything; the sweep's other Treads are
        never delivered to this user. ``include_control`` adds the control
        ad's impression.
        """
        if set_attribute_count < 0:
            raise ValueError("attribute count cannot be negative")
        impressions = set_attribute_count + (1 if include_control else 0)
        return impressions * self.per_impression

    def nonbinary_attribute(self, treads_received: int = 1) -> float:
        """Cost of revealing one m-valued attribute to one user.

        Enumeration: exactly one Tread received (the user's value), so the
        default matches the paper's "only have to pay for one impression
        per user, costing around $0.002". Bit-splitting pays one
        impression per set bit — pass the popcount.
        """
        return treads_received * self.per_impression

    def unset_attribute(self) -> float:
        """Zero, structurally: undelivered Treads are unbilled."""
        return 0.0


@dataclass(frozen=True)
class CampaignCostSummary:
    """Measured (ledger-derived) cost figures for one Tread campaign."""

    total_spend: float
    impressions: int
    treads_launched: int
    users_opted_in: int

    @property
    def cost_per_impression(self) -> float:
        if self.impressions == 0:
            return 0.0
        return self.total_spend / self.impressions

    @property
    def effective_cpm(self) -> float:
        return 1000.0 * self.cost_per_impression

    @property
    def cost_per_user(self) -> float:
        if self.users_opted_in == 0:
            return 0.0
        return self.total_spend / self.users_opted_in


@dataclass(frozen=True)
class FundingPlan:
    """How a provider covers campaign costs (section 3.1, "Cost").

    ``user_fee`` is what each opted-in user is asked to pay; donations
    cover the remainder. ``break_even_user_fee`` is the fee making the
    operation self-sustaining ("users opting-in could pay ... the cost of
    their own impressions").
    """

    summary: CampaignCostSummary
    donation_pool: float = 0.0

    @property
    def break_even_user_fee(self) -> float:
        return self.summary.cost_per_user

    @property
    def donation_shortfall(self) -> float:
        """Unfunded spend if users pay nothing."""
        return max(0.0, self.summary.total_spend - self.donation_pool)

    def user_fee_with_donations(self) -> float:
        """Per-user fee after donations are applied."""
        if self.summary.users_opted_in == 0:
            return 0.0
        return self.donation_shortfall / self.summary.users_opted_in


def per_user_cost_curve(
    attribute_counts: Iterable[int],
    cpm: float = DEFAULT_CPM_USD,
) -> List[Dict[str, float]]:
    """Rows of (attributes set, cost) — the E3 sweep table."""
    model = CostModel(cpm=cpm)
    rows = []
    for count in attribute_counts:
        rows.append({
            "attributes_set": float(count),
            "cost_usd": model.full_profile(count),
        })
    return rows
