"""Paced multi-day campaign execution.

The paper costs Treads per impression, but a real provider runs them over
days of ordinary user browsing ("Users see these Treads while browsing
normally", section 3.1) under a daily budget. This module is the
provider-side harness for that: it advances simulated days of browsing,
enforces a daily spend cap by escrowing the account budget, and decides
when the campaign has *saturated* using only provider-observable signals
(platform reports' cumulative impressions flat for ``patience`` days —
the provider cannot see platform-internal eligibility).

It also surfaces an honest failure mode the paper glosses over: if the
budget runs out mid-campaign, users who already received the control ad
may wrongly read missing attribute Treads as "attribute not set". The
runner reports ``exhausted_budget`` so a provider can warn subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.provider import TransparencyProvider
from repro.workloads.browsing import BrowsingModel, simulate_day


@dataclass(frozen=True)
class DayRecord:
    """One simulated day of a paced campaign (provider-observable)."""

    day: int
    spend: float
    impressions: int
    cumulative_spend: float
    cumulative_impressions: int


@dataclass
class ScheduleResult:
    """Outcome of a paced run."""

    days: List[DayRecord] = field(default_factory=list)
    #: True when the stop reason was impressions flat for `patience` days.
    saturated: bool = False
    #: True when the account could no longer afford a single impression.
    exhausted_budget: bool = False

    @property
    def total_days(self) -> int:
        return len(self.days)

    @property
    def total_spend(self) -> float:
        if not self.days:
            return 0.0
        return self.days[-1].cumulative_spend

    @property
    def total_impressions(self) -> int:
        if not self.days:
            return 0
        return self.days[-1].cumulative_impressions


class PacedCampaignRunner:
    """Runs a launched Tread campaign day by day under a spend cap.

    Parameters
    ----------
    provider:
        A provider whose Treads are already launched.
    daily_budget:
        Maximum dollars chargeable per simulated day (None = unpaced).
        Enforced by escrowing the rest of the account budget during the
        day — the delivery engine's affordability check then does the
        capping naturally.
    browsing_model:
        How many ad slots each user's daily browsing exposes.
    patience:
        Days of flat cumulative impressions before declaring saturation.
    seed:
        Browsing randomness seed (each day derives its own stream).
    """

    def __init__(
        self,
        provider: TransparencyProvider,
        daily_budget: Optional[float] = None,
        browsing_model: Optional[BrowsingModel] = None,
        patience: int = 2,
        seed: int = 101,
    ):
        if daily_budget is not None and daily_budget <= 0:
            raise ValueError("daily budget must be positive")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self._provider = provider
        self._platform = provider.platform
        self.daily_budget = daily_budget
        self.browsing_model = browsing_model or BrowsingModel()
        self.patience = patience
        self.seed = seed

    def run(self, max_days: int = 30) -> ScheduleResult:
        """Advance up to ``max_days`` days; stop early on saturation or
        budget exhaustion."""
        result = ScheduleResult()
        account = self._provider.account
        flat_days = 0
        previous_cumulative = self._provider.total_impressions()
        cumulative_spend_start = self._provider.total_spend()

        for day in range(1, max_days + 1):
            escrow = 0.0
            if self.daily_budget is not None:
                allowance = min(account.budget, self.daily_budget)
                escrow = account.budget - allowance
                account.budget = allowance

            spend_before = self._provider.total_spend()
            simulate_day(
                self._platform,
                list(self._platform.users),
                self.browsing_model,
                seed=self.seed + day,
            )
            account.budget += escrow

            cumulative_impressions = self._provider.total_impressions()
            cumulative_spend = self._provider.total_spend()
            result.days.append(DayRecord(
                day=day,
                spend=cumulative_spend - spend_before,
                impressions=cumulative_impressions - previous_cumulative,
                cumulative_spend=cumulative_spend - cumulative_spend_start,
                cumulative_impressions=cumulative_impressions,
            ))

            if cumulative_impressions == previous_cumulative:
                flat_days += 1
            else:
                flat_days = 0
            previous_cumulative = cumulative_impressions

            cheapest_bid = self._cheapest_active_bid()
            if cheapest_bid is not None and \
                    not account.can_afford(cheapest_bid):
                result.exhausted_budget = True
                break
            if flat_days >= self.patience:
                result.saturated = True
                break
        return result

    def _cheapest_active_bid(self) -> Optional[float]:
        """Cheapest-possible next impression for this account's ads."""
        bids = [
            ad.bid_per_impression
            for ad in self._platform.inventory.ads_owned_by(
                self._provider.account.account_id
            )
            if ad.status.value == "active"
        ]
        if not bids:
            return None
        return min(bids)


def coverage_curve(result: ScheduleResult) -> List[tuple]:
    """(day, cumulative impressions) points — the time-to-coverage curve a
    provider would plot from its own reports."""
    return [(record.day, record.cumulative_impressions)
            for record in result.days]
