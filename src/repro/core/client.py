"""The user side: a "browser extension" that collects and decodes Treads.

"Users see these Treads while browsing normally (and can potentially save
these using a browser extension)" (paper section 3.1). The
:class:`TreadClient` plays that extension: it scans the user's ad feed for
ads from the subscribed provider, decodes each reveal payload (explicit
text, codebook token, steganographic image, or landing-page token), and
folds everything into a :class:`RevealedProfile` — the user's
reconstruction of what the platform knows about them.

Decoding never talks to the provider: everything needed is in the
:class:`~repro.core.provider.DecodePack` published at opt-in, plus the
(semi-public) attribute name catalog. Following landing-page links is
opt-in (``follow_landing``) because it is the one channel that can leak to
the provider — unless the user clears cookies first, which the client
does when asked (``clear_cookies_first``), mirroring the paper's
mitigation ("users can avert any possible leakage by clearing out their
cookies ... before they start receiving any Treads").
"""

from __future__ import annotations

import logging
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.bitsplit import reconstruct_value
from repro.core.codebook import Codebook
from repro.core.provider import DecodePack
from repro.core.stego import try_extract
from repro.core.treads import RevealKind, RevealPayload, payload_from_canonical
from repro.errors import EncodingError
from repro.obs import tracing as obs_tracing
from repro.obs.metrics import bind as _obs_bind
from repro.platform.attributes import AttributeCatalog
from repro.platform.delivery import DeliveredAd
from repro.platform.platform import AdPlatform
from repro.platform.web import Browser, WebDirectory

_TOKEN_RE = re.compile(r"\b\d{1,3}(?:,\d{3})+\b|\b\d{7}\b")
_EXPLICIT_SET_RE = re.compile(
    r"According to this ad platform, you are: (?P<display>.+)\.$"
)
_EXPLICIT_EXCLUDED_RE = re.compile(
    r"the attribute '(?P<display>.+)' is false for you or missing"
)
_EXPLICIT_VALUE_RE = re.compile(
    r"According to this ad platform, your (?P<display>.+) is: "
    r"(?P<value>.+)\.$"
)
_EXPLICIT_PII_RE = re.compile(
    r"This ad platform has your (?P<kind>[a-z_]+) \(hash (?P<prefix>[0-9a-f]+)"
)
_EXPLICIT_CUSTOM_RE = re.compile(
    r"You match the custom attribute '(?P<label>.+)' according"
)
_EXPLICIT_CONTROL_RE = re.compile(
    r"You are reachable by ads from your transparency provider"
)
_EXPLICIT_INTENT_RE = re.compile(
    r"The advertiser's intent in targeting you: (?P<intent>.+)$"
)
_LANDING_TOKEN_RE = re.compile(r"/t/(?P<digits>\d+)$")

_log = logging.getLogger("repro.core.client")

_obs_client = _obs_bind(lambda reg: (
    reg.counter("client.syncs"),
    reg.counter("client.treads_decoded"),
    reg.counter("client.treads_undecoded"),
))


@dataclass
class RevealedProfile:
    """What the user has learnt about the platform's profile of them."""

    user_id: str
    #: Binary attributes the platform has SET (attr ids).
    set_attributes: Set[str] = field(default_factory=set)
    #: Attributes revealed as false-or-missing via exclusion Treads.
    false_or_missing: Set[str] = field(default_factory=set)
    #: Multi-valued attribute assignments (direct VALUE_IS reveals and
    #: bit-split reconstructions).
    values: Dict[str, str] = field(default_factory=dict)
    #: PII kinds the platform provably holds for this user.
    pii_present: Set[str] = field(default_factory=set)
    #: Custom attribute labels the user matched.
    custom_matches: Set[str] = field(default_factory=set)
    #: Advertiser intent statements received (section 4).
    intents: List[str] = field(default_factory=list)
    #: Whether the control ad arrived (reachability established).
    control_received: bool = False
    #: Raw bit-Treads received: attr_id -> {bit_index: bit_value}.
    raw_bits: Dict[str, Dict[int, int]] = field(default_factory=dict)
    #: Provider ads we could not decode (should be empty; surfaced for
    #: debugging rather than silently dropped).
    undecoded: List[str] = field(default_factory=list)

    @property
    def total_facts(self) -> int:
        """Count of distinct facts learnt (the paper's "bits revealed")."""
        return (
            len(self.set_attributes)
            + len(self.false_or_missing)
            + len(self.values)
            + len(self.pii_present)
            + len(self.custom_matches)
        )


class TreadClient:
    """One user's Tread-decoding extension, bound to one provider."""

    def __init__(
        self,
        user_id: str,
        platform: AdPlatform,
        pack: DecodePack,
        catalog: Optional[AttributeCatalog] = None,
        web: Optional[WebDirectory] = None,
        browser: Optional[Browser] = None,
        follow_landing: bool = False,
        clear_cookies_first: bool = True,
    ):
        self.user_id = user_id
        self._platform = platform
        self._pack = pack
        self._codebook = Codebook.from_snapshot(
            pack.codebook_snapshot, salt=pack.codebook_salt
        )
        self._catalog = catalog if catalog is not None else platform.catalog
        self._name_to_attr = {
            attribute.name: attribute.attr_id for attribute in self._catalog
        }
        self._web = web
        self._browser = browser
        self.follow_landing = follow_landing
        self.clear_cookies_first = clear_cookies_first
        self._provider_accounts = set(pack.account_ids.values())
        self._landing_domains = set(pack.landing_domains)

    # ------------------------------------------------------------------

    def provider_ads(self) -> List[DeliveredAd]:
        """The subset of the feed that came from the provider's account."""
        return [
            ad for ad in self._platform.feed(self.user_id)
            if ad.account_id in self._provider_accounts
        ]

    def sync(self) -> RevealedProfile:
        """Scan the feed, decode every provider ad, rebuild the profile."""
        syncs_c, decoded_c, undecoded_c = _obs_client()
        syncs_c.inc()
        profile = RevealedProfile(user_id=self.user_id)
        with obs_tracing.tracer().span("client.sync",
                                       user_id=self.user_id):
            for ad in self.provider_ads():
                payload = self._decode_ad(ad)
                if payload is None:
                    undecoded_c.inc()
                    profile.undecoded.append(ad.ad_id)
                    continue
                decoded_c.inc()
                self._apply(payload, profile)
            self._reconstruct_bitsplit_values(profile)
        _log.debug("sync for %s: %d facts, %d undecoded",
                   self.user_id, profile.total_facts,
                   len(profile.undecoded))
        return profile

    # ------------------------------------------------------------------
    # per-ad decoding
    # ------------------------------------------------------------------

    def _decode_ad(self, ad: DeliveredAd) -> Optional[RevealPayload]:
        # 1. codebook token anywhere in the ad text
        for match in _TOKEN_RE.finditer(f"{ad.headline}\n{ad.body}"):
            payload = self._codebook.try_decode(match.group(0))
            if payload is not None:
                return payload
        # 2. steganographic image
        if ad.image is not None:
            canonical = try_extract(ad.image)
            if canonical is not None:
                try:
                    return payload_from_canonical(canonical)
                except EncodingError:
                    pass
        # 3. landing-page token (decodable from the URL alone; the visit
        #    is optional and only for the human-readable page)
        if ad.landing_url is not None:
            payload = self._decode_landing(ad)
            if payload is not None:
                return payload
        # 4. explicit sentence in the ad body
        return self._parse_explicit(ad.body)

    def _decode_landing(self, ad: DeliveredAd) -> Optional[RevealPayload]:
        landing_url = ad.landing_url or ""
        domain = _domain_of(landing_url)
        if domain not in self._landing_domains:
            return None
        match = _LANDING_TOKEN_RE.search(landing_url)
        if match is None:
            return None
        if self.follow_landing:
            self._visit_landing(ad, domain,
                                f"/t/{match.group('digits')}")
        return self._codebook.try_decode(match.group("digits"))

    def _visit_landing(self, ad: DeliveredAd, domain: str,
                       path: str) -> None:
        """Actually click through (leaks a cookie to the provider's
        first-party log unless cleared first). The click itself is
        recorded by the platform, which surfaces it to the provider only
        as a CTR count."""
        if self._web is None or self._browser is None:
            return
        self._platform.click_ad(self.user_id, ad.ad_id)
        if self.clear_cookies_first:
            self._browser.clear_cookies()
        self._browser.visit(self._web.resolve(domain), path)

    def _parse_explicit(self, body: str) -> Optional[RevealPayload]:
        match = _EXPLICIT_SET_RE.search(body)
        if match:
            attr_id = self._name_to_attr.get(match.group("display"))
            if attr_id is not None:
                return RevealPayload(
                    kind=RevealKind.ATTRIBUTE_SET,
                    attr_id=attr_id,
                    display=match.group("display"),
                )
        match = _EXPLICIT_EXCLUDED_RE.search(body)
        if match:
            attr_id = self._name_to_attr.get(match.group("display"))
            if attr_id is not None:
                return RevealPayload(
                    kind=RevealKind.ATTRIBUTE_EXCLUDED,
                    attr_id=attr_id,
                    display=match.group("display"),
                )
        match = _EXPLICIT_VALUE_RE.search(body)
        if match:
            attr_id = self._name_to_attr.get(match.group("display"))
            if attr_id is not None:
                return RevealPayload(
                    kind=RevealKind.VALUE_IS,
                    attr_id=attr_id,
                    value=match.group("value"),
                    display=match.group("display"),
                )
        match = _EXPLICIT_PII_RE.search(body)
        if match:
            return RevealPayload(
                kind=RevealKind.PII_PRESENT,
                pii_kind=match.group("kind"),
                pii_digest=match.group("prefix"),
            )
        match = _EXPLICIT_CUSTOM_RE.search(body)
        if match:
            return RevealPayload(
                kind=RevealKind.CUSTOM_ATTRIBUTE,
                custom_label=match.group("label"),
            )
        match = _EXPLICIT_INTENT_RE.search(body)
        if match:
            return RevealPayload(
                kind=RevealKind.INTENT,
                display=match.group("intent"),
            )
        if _EXPLICIT_CONTROL_RE.search(body):
            return RevealPayload(kind=RevealKind.CONTROL)
        return None

    # ------------------------------------------------------------------
    # folding payloads into the profile
    # ------------------------------------------------------------------

    def _apply(self, payload: RevealPayload,
               profile: RevealedProfile) -> None:
        kind = payload.kind
        if kind is RevealKind.ATTRIBUTE_SET and payload.attr_id:
            profile.set_attributes.add(payload.attr_id)
        elif kind is RevealKind.ATTRIBUTE_EXCLUDED and payload.attr_id:
            profile.false_or_missing.add(payload.attr_id)
        elif kind is RevealKind.VALUE_IS and payload.attr_id:
            profile.values[payload.attr_id] = payload.value or ""
        elif kind is RevealKind.VALUE_BIT and payload.attr_id is not None:
            bits = profile.raw_bits.setdefault(payload.attr_id, {})
            bits[payload.bit_index or 0] = payload.bit_value or 0
        elif kind is RevealKind.PII_PRESENT and payload.pii_kind:
            profile.pii_present.add(payload.pii_kind)
        elif kind is RevealKind.CUSTOM_ATTRIBUTE and payload.custom_label:
            profile.custom_matches.add(payload.custom_label)
        elif kind is RevealKind.INTENT:
            profile.intents.append(payload.display)
        elif kind is RevealKind.CONTROL:
            profile.control_received = True

    def _reconstruct_bitsplit_values(self, profile: RevealedProfile) -> None:
        """Turn received bit-Treads into value assignments.

        Absent bits decode as 0 — valid only once the control ad proved
        the user reachable (otherwise "no Tread" could mean "no
        delivery"), so reconstruction waits for the control.
        """
        if not profile.control_received:
            return
        widths = self._bit_widths_in_codebook()
        # Iterate the attributes the CAMPAIGN covered (from the published
        # codebook), not just those the user received bits for: a user
        # whose value index is 0 receives no bit-Treads at all, and the
        # control ad is what licenses decoding that silence as index 0.
        for attr_id, width in widths.items():
            table = self._pack.value_tables.get(attr_id)
            if table is None:
                continue
            bits = profile.raw_bits.get(attr_id, {})
            try:
                profile.values[attr_id] = reconstruct_value(
                    table, bits, total_bits=width
                )
            except EncodingError:
                profile.undecoded.append(f"bitsplit:{attr_id}")

    def _bit_widths_in_codebook(self) -> Dict[str, int]:
        """How many bit positions each attribute's campaign used, learnt
        from the published codebook."""
        widths: Dict[str, int] = {}
        for canonical in self._pack.codebook_snapshot.values():
            try:
                payload = payload_from_canonical(canonical)
            except EncodingError:
                continue
            if payload.kind is RevealKind.VALUE_BIT and payload.attr_id:
                current = widths.get(payload.attr_id, 0)
                widths[payload.attr_id] = max(
                    current, (payload.bit_index or 0) + 1
                )
        return widths


def _domain_of(url: str) -> str:
    without_scheme = url.split("//", 1)[-1]
    return without_scheme.split("/", 1)[0]
