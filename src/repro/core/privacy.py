"""Privacy analysis: what the transparency provider can and cannot learn.

Paper section 3.1, "Privacy analysis". The threat model grants the
provider (a) the platform's performance statistics (reach estimates per
Tread) and (b) its own websites' first-party logs (cookies on landing
pages). The claims to verify:

1. the provider "can estimate how many of the opted-in users have a
   particular attribute" — aggregate counts ARE learnable;
2. "the transparency provider cannot learn *which* particular users have
   which attributes" — an individual-inference attack from reports alone
   does no better than base rate;
3. with IN_AD placements "there is no scope for leakage except via the
   platform"; with LANDING_PAGE placement the provider's cookie can link
   a visitor's Treads together — unless the user clears/disables cookies.

This module implements the provider-side attacker for (2) and the
first-party-log linkage analysis for (3).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.platform.web import Website


@dataclass(frozen=True)
class AggregateKnowledge:
    """What the provider's reports actually disclose."""

    optin_count: int
    #: attr_id -> reported reach of its Tread (possibly quantized).
    attribute_counts: Dict[str, int]

    def prevalence(self, attr_id: str) -> float:
        """Provider-side estimate of Pr[user has attribute]."""
        if self.optin_count == 0:
            return 0.0
        return self.attribute_counts.get(attr_id, 0) / self.optin_count


@dataclass
class InferenceAttackResult:
    """Outcome of the provider's best individual-level attack."""

    attribute_count: int
    #: Mean per-attribute accuracy of the provider's guesses.
    attack_accuracy: float
    #: Accuracy of always guessing the majority class (the floor any
    #: aggregate-only attacker can trivially achieve).
    baseline_accuracy: float

    @property
    def advantage(self) -> float:
        """Attack accuracy above the trivial baseline; ~0 when the
        platform's aggregation does its job."""
        return self.attack_accuracy - self.baseline_accuracy


def aggregate_inference_attack(
    knowledge: AggregateKnowledge,
    optin_user_ids: Sequence[str],
    ground_truth: Mapping[str, Set[str]],
) -> InferenceAttackResult:
    """The provider's optimal attack given only aggregate counts.

    With no per-user signal, the Bayes-optimal guess for every user is the
    majority class of each attribute (has it iff prevalence > 0.5). The
    attack therefore collapses to the baseline — that equality is the
    privacy property, and the test suite asserts it. ``ground_truth`` maps
    attr_id -> set of opted-in user ids that truly have the attribute
    (simulation-level omniscience, used only for scoring).
    """
    if not optin_user_ids:
        raise ValueError("no opted-in users to attack")
    total_correct = 0
    total_guesses = 0
    baseline_correct = 0
    for attr_id, truthy_users in ground_truth.items():
        prevalence = knowledge.prevalence(attr_id)
        guess_has = prevalence > 0.5
        positives = len(set(truthy_users) & set(optin_user_ids))
        negatives = len(optin_user_ids) - positives
        if guess_has:
            total_correct += positives
        else:
            total_correct += negatives
        baseline_correct += max(positives, negatives)
        total_guesses += len(optin_user_ids)
    return InferenceAttackResult(
        attribute_count=len(ground_truth),
        attack_accuracy=total_correct / total_guesses,
        baseline_accuracy=baseline_correct / total_guesses,
    )


@dataclass(frozen=True)
class AnonymitySets:
    """Per-attribute anonymity: each recipient hides among the reported
    reach of that attribute's Tread."""

    #: attr_id -> anonymity-set size (the Tread's reach).
    sizes: Dict[str, int]

    def smallest(self) -> int:
        if not self.sizes:
            return 0
        return min(self.sizes.values())

    def singletons(self) -> List[str]:
        """Attributes whose Tread reached exactly one user — the provider
        knows *someone* unique has it, though still not who."""
        return [attr for attr, size in self.sizes.items() if size == 1]


def anonymity_sets(attribute_counts: Mapping[str, int]) -> AnonymitySets:
    return AnonymitySets(sizes={
        attr_id: count
        for attr_id, count in attribute_counts.items()
        if count > 0
    })


# ---------------------------------------------------------------------------
# Landing-page cookie leakage (the one provider-side channel)
# ---------------------------------------------------------------------------

@dataclass
class LinkageReport:
    """What the provider's first-party log lets it reconstruct.

    ``profiles`` maps each cookie id to the set of Tread landing paths it
    visited — i.e. a pseudonymous profile of revealed attributes. The
    paper's mitigation (clear/disable cookies) collapses every profile to
    size <= 1 or removes cookies entirely.
    """

    total_landing_visits: int
    cookieless_visits: int
    profiles: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def largest_profile(self) -> int:
        if not self.profiles:
            return 0
        return max(len(paths) for paths in self.profiles.values())

    @property
    def linkable_multi_visit_cookies(self) -> int:
        """Cookies tying 2+ Tread visits together — real linkage events."""
        return sum(1 for paths in self.profiles.values() if len(paths) >= 2)


def landing_page_linkage(
    website: Website,
    landing_paths: Iterable[str],
) -> LinkageReport:
    """Analyse the provider's own web log for Tread-visit linkage."""
    tracked = set(landing_paths)
    profiles: Dict[str, Set[str]] = defaultdict(set)
    total = 0
    cookieless = 0
    for entry in website.access_log:
        if entry.path not in tracked:
            continue
        total += 1
        if entry.cookie_id is None:
            cookieless += 1
            continue
        profiles[entry.cookie_id].add(entry.path)
    return LinkageReport(
        total_landing_visits=total,
        cookieless_visits=cookieless,
        profiles=dict(profiles),
    )


def reach_quantization_error(
    true_counts: Mapping[str, int],
    reported_counts: Mapping[str, int],
) -> float:
    """Mean absolute error the platform's reach quantization introduces in
    the provider's aggregate estimates (the E5 ablation metric)."""
    keys = set(true_counts) | set(reported_counts)
    if not keys:
        return 0.0
    return sum(
        abs(true_counts.get(k, 0) - reported_counts.get(k, 0)) for k in keys
    ) / len(keys)
