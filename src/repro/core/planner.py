"""Campaign planning: from attribute lists to concrete Tread plans.

The provider "selects a set of such attributes (potentially the
pre-selected set of attributes that the advertising platform offers
advertisers), and pays to run one Tread corresponding to each attribute"
(paper section 3.1). The planner turns attribute lists into
:class:`~repro.core.treads.Tread` objects — payload + targeting — that the
provider then renders and launches.

Every plan conjoins an *audience term* (``audience:...`` or ``page:...``)
restricting delivery to opted-in users, because targeting the whole
country "might be prohibitively costly and might be undesirable to some
users" (section 3.1, "User opt-in").
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.bitsplit import plan_bit_treads
from repro.core.treads import (
    Encoding,
    Placement,
    RevealKind,
    RevealPayload,
    Tread,
)
from repro.errors import CatalogError
from repro.platform.attributes import Attribute, AttributeKind


def control_tread(
    audience_term: str,
    encoding: Encoding = Encoding.CODEBOOK,
    placement: Placement = Placement.IN_AD_TEXT,
) -> Tread:
    """The control ad: opted-in audience, no extra targeting.

    The validation ran one "to test whether the signed-up users were
    reachable with ads" — without it, not receiving any Treads is
    ambiguous between "no attributes" and "ads never delivered".
    """
    return Tread(
        payload=RevealPayload(kind=RevealKind.CONTROL),
        encoding=encoding,
        placement=placement,
        targeting_text=audience_term,
    )


def binary_attribute_tread(
    attribute: Attribute,
    audience_term: str,
    encoding: Encoding = Encoding.CODEBOOK,
    placement: Placement = Placement.IN_AD_TEXT,
    exclude: bool = False,
) -> Tread:
    """One Tread for one binary attribute.

    ``exclude=False``: targets opted-in users *with* the attribute —
    recipients learn it is set. ``exclude=True``: targets opted-in users
    *without* it — recipients learn it is "false, or missing from the
    advertising platform's database" (section 3.1).
    """
    if attribute.kind is not AttributeKind.BINARY:
        raise CatalogError(
            f"binary sweep over non-binary attribute {attribute.attr_id!r}"
        )
    if exclude:
        payload = RevealPayload(
            kind=RevealKind.ATTRIBUTE_EXCLUDED,
            attr_id=attribute.attr_id,
            display=attribute.name,
        )
        targeting = f"!attr:{attribute.attr_id} & {audience_term}"
    else:
        payload = RevealPayload(
            kind=RevealKind.ATTRIBUTE_SET,
            attr_id=attribute.attr_id,
            display=attribute.name,
        )
        targeting = f"attr:{attribute.attr_id} & {audience_term}"
    return Tread(
        payload=payload,
        encoding=encoding,
        placement=placement,
        targeting_text=targeting,
    )


def binary_sweep(
    attributes: Iterable[Attribute],
    audience_term: str,
    encoding: Encoding = Encoding.CODEBOOK,
    placement: Placement = Placement.IN_AD_TEXT,
    include_exclusions: bool = False,
    include_control: bool = True,
) -> List[Tread]:
    """One Tread per binary attribute (m Treads for m attributes —
    section 3.1 "Scale"), optionally with exclusion Treads and the
    control ad. This is the paper's validation campaign shape."""
    treads: List[Tread] = []
    if include_control:
        treads.append(control_tread(audience_term, encoding, placement))
    for attribute in attributes:
        treads.append(
            binary_attribute_tread(
                attribute, audience_term, encoding, placement, exclude=False
            )
        )
        if include_exclusions:
            treads.append(
                binary_attribute_tread(
                    attribute, audience_term, encoding, placement,
                    exclude=True,
                )
            )
    return treads


def value_enumeration(
    attribute: Attribute,
    audience_term: str,
    encoding: Encoding = Encoding.CODEBOOK,
    placement: Placement = Placement.IN_AD_TEXT,
) -> List[Tread]:
    """m Treads for an m-valued attribute, one per value.

    Each user receives at most one (their value's), so "the provider would
    run one Tread targeting each possible value, but would only have to
    pay for one impression per user" (section 3.1, "Cost").
    """
    if attribute.kind is not AttributeKind.MULTI:
        raise CatalogError(
            f"value enumeration needs a multi attribute, got "
            f"{attribute.attr_id!r}"
        )
    treads: List[Tread] = []
    for value in attribute.values:
        payload = RevealPayload(
            kind=RevealKind.VALUE_IS,
            attr_id=attribute.attr_id,
            value=value,
            display=attribute.name,
        )
        treads.append(
            Tread(
                payload=payload,
                encoding=encoding,
                placement=placement,
                targeting_text=(
                    f"value:{attribute.attr_id}={value} & {audience_term}"
                ),
            )
        )
    return treads


def value_bitsplit(
    attribute: Attribute,
    audience_term: str,
    encoding: Encoding = Encoding.CODEBOOK,
    placement: Placement = Placement.IN_AD_TEXT,
) -> List[Tread]:
    """ceil(log2 m) bit-Treads for an m-valued attribute (section 3.1,
    "Scale"). See :mod:`repro.core.bitsplit` for the construction."""
    treads: List[Tread] = []
    for bit_plan in plan_bit_treads(attribute):
        treads.append(
            Tread(
                payload=bit_plan.payload,
                encoding=encoding,
                placement=placement,
                targeting_text=(
                    f"{bit_plan.targeting_term()} & {audience_term}"
                ),
            )
        )
    return treads


def pii_reveal_tread(
    pii_kind: str,
    audience_id: str,
    batch_label: str,
    encoding: Encoding = Encoding.CODEBOOK,
    placement: Placement = Placement.IN_AD_TEXT,
) -> Tread:
    """One Tread at a PII-based audience built from opted-in users' hashes.

    Receiving it tells a user the platform holds the PII item they handed
    the provider (hashed) for ``pii_kind`` (section 3.1, "Supporting PII").
    """
    payload = RevealPayload(
        kind=RevealKind.PII_PRESENT,
        pii_kind=pii_kind,
        pii_digest=batch_label,
    )
    return Tread(
        payload=payload,
        encoding=encoding,
        placement=placement,
        targeting_text=f"audience:{audience_id}",
    )


def custom_attribute_tread(
    label: str,
    pixel_audience_id: str,
    attribute_term: str,
    encoding: Encoding = Encoding.CODEBOOK,
    placement: Placement = Placement.IN_AD_TEXT,
) -> Tread:
    """Per-attribute custom opt-in (section 3.1, "Supporting custom
    attributes"): target the visitors of the attribute's dedicated opt-in
    page *who also have* the attribute.

    ``attribute_term`` is the targeting fragment for the custom attribute
    (e.g. ``attr:pf-interest-042``); ``pixel_audience_id`` is the audience
    of users who opted in for exactly this attribute.
    """
    payload = RevealPayload(
        kind=RevealKind.CUSTOM_ATTRIBUTE,
        custom_label=label,
    )
    return Tread(
        payload=payload,
        encoding=encoding,
        placement=placement,
        targeting_text=f"{attribute_term} & audience:{pixel_audience_id}",
    )


def plan_summary(treads: Sequence[Tread]) -> dict:
    """Counts by reveal kind — used in reports and tests."""
    counts: dict = {}
    for tread in treads:
        key = tread.payload.kind.value
        counts[key] = counts.get(key, 0) + 1
    return counts
