"""LSB steganography for Tread images.

Paper section 3: the targeting information "could be encoded into the ad
image or other multimedia content (in the ad or in the landing page) via
steganographic techniques, which can be extracted by code".

The scheme is classic least-significant-bit embedding over the grayscale
:class:`~repro.platform.ads.AdImage`: a 32-bit big-endian length header
followed by the UTF-8 payload, one bit per pixel. It is invisible to the
platform's text-based ToS review (and visually: each pixel moves by at
most 1/255), and trivially extracted by the user-side extension.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import EncodingError
from repro.platform.ads import AdImage

_HEADER_BITS = 32
#: Magic prefix so extraction can tell a carrier from a clean image.
_MAGIC = b"TR"


def capacity_bytes(image: AdImage) -> int:
    """Payload bytes an image can carry (after header and magic)."""
    usable_bits = len(image.pixels) - _HEADER_BITS
    if usable_bits <= 0:
        return 0
    return max(0, usable_bits // 8 - len(_MAGIC))


def embed(image: AdImage, payload: str) -> AdImage:
    """Return a copy of ``image`` carrying ``payload`` in pixel LSBs."""
    data = _MAGIC + payload.encode("utf-8")
    needed_bits = _HEADER_BITS + len(data) * 8
    if needed_bits > len(image.pixels):
        raise EncodingError(
            f"payload needs {needed_bits} pixels, image has "
            f"{len(image.pixels)}"
        )
    carrier = image.copy()
    bits = _int_bits(len(data), _HEADER_BITS) + _bytes_bits(data)
    for index, bit in enumerate(bits):
        carrier.pixels[index] = (carrier.pixels[index] & 0xFE) | bit
    return carrier


def extract(image: AdImage) -> str:
    """Extract an embedded payload; raises when none is present."""
    payload = try_extract(image)
    if payload is None:
        raise EncodingError("image carries no Tread payload")
    return payload


def try_extract(image: AdImage) -> Optional[str]:
    """Extract if a payload is present, else None (extension-side scan)."""
    if len(image.pixels) < _HEADER_BITS:
        return None
    length = 0
    for index in range(_HEADER_BITS):
        length = (length << 1) | (image.pixels[index] & 1)
    total_bits = _HEADER_BITS + length * 8
    if length < len(_MAGIC) or total_bits > len(image.pixels):
        return None
    data = bytearray()
    for byte_index in range(length):
        value = 0
        for bit_index in range(8):
            pixel = image.pixels[_HEADER_BITS + byte_index * 8 + bit_index]
            value = (value << 1) | (pixel & 1)
        data.append(value)
    if bytes(data[: len(_MAGIC)]) != _MAGIC:
        return None
    try:
        return bytes(data[len(_MAGIC):]).decode("utf-8")
    except UnicodeDecodeError:
        return None


def _int_bits(value: int, width: int) -> list:
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def _bytes_bits(data: bytes) -> list:
    bits = []
    for byte in data:
        bits.extend(_int_bits(byte, 8))
    return bits
