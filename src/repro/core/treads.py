"""The Tread object and its reveal payloads.

Paper section 3: the targeting information a Tread reveals "could be
included directly within the content of the ad ... or could be in one of
the landing pages that the links within the ad point to. Further, this
information could either be explicit (immediately readable by humans), or
encoded (and thus obfuscated)".

That gives two orthogonal axes, modelled by :class:`Placement` and
:class:`Encoding`; and the *meaning* of a Tread — which bit of profile
information it reveals — is a :class:`RevealPayload` of some
:class:`RevealKind`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import EncodingError


class Placement(enum.Enum):
    """Where the reveal payload travels."""

    #: In the ad's visible text (Figure 1 of the paper).
    IN_AD_TEXT = "in_ad_text"
    #: Steganographically inside the ad image.
    IN_AD_IMAGE = "in_ad_image"
    #: On the external landing page the ad links to.
    LANDING_PAGE = "landing_page"


class Encoding(enum.Enum):
    """How the payload is written down."""

    #: Immediately human-readable ("You are interested in Salsa dancing
    #: according to this ad platform") — violates platform ToS in-ad.
    EXPLICIT = "explicit"
    #: An innocuous token from a codebook shared at opt-in (Figure 1b's
    #: "2,830,120"); needs the extension/codebook to decode.
    CODEBOOK = "codebook"
    #: Bits hidden in image pixels; needs the extension to extract.
    STEGANOGRAPHIC = "steganographic"


class RevealKind(enum.Enum):
    """What kind of fact one Tread reveals to its recipients."""

    #: Recipient *has* a binary attribute set.
    ATTRIBUTE_SET = "attribute_set"
    #: Recipient was *excluded* by the attribute: it is false or missing
    #: from the platform's database (paper section 3.1).
    ATTRIBUTE_EXCLUDED = "attribute_excluded"
    #: Recipient's multi-valued attribute equals a specific value.
    VALUE_IS = "value_is"
    #: One bit of the recipient's value index for a multi-valued attribute
    #: (the log2(m) scheme of section 3.1 "Scale").
    VALUE_BIT = "value_bit"
    #: The platform holds a specific (hashed) PII item for the recipient.
    PII_PRESENT = "pii_present"
    #: The recipient matched a custom (keyword/pixel-defined) attribute.
    CUSTOM_ATTRIBUTE = "custom_attribute"
    #: Control ad: recipient is reachable at all (no extra targeting).
    CONTROL = "control"
    #: Advertiser-declared intent (section 4, advertiser-driven
    #: transparency).
    INTENT = "intent"


@dataclass(frozen=True)
class RevealPayload:
    """The canonical content of one Tread, independent of encoding.

    The ``detail`` fields are kind-dependent:

    =====================  =================================================
    kind                   fields used
    =====================  =================================================
    ATTRIBUTE_SET          ``attr_id``, ``display``
    ATTRIBUTE_EXCLUDED     ``attr_id``, ``display``
    VALUE_IS               ``attr_id``, ``value``, ``display``
    VALUE_BIT              ``attr_id``, ``bit_index``, ``bit_value``
    PII_PRESENT            ``pii_kind``, ``pii_digest``
    CUSTOM_ATTRIBUTE       ``custom_label``
    CONTROL                (none)
    INTENT                 ``display`` (the advertiser's intent statement)
    =====================  =================================================

    ``display`` is the human-readable attribute name used for explicit
    renderings.
    """

    kind: RevealKind
    attr_id: Optional[str] = None
    value: Optional[str] = None
    bit_index: Optional[int] = None
    bit_value: Optional[int] = None
    pii_kind: Optional[str] = None
    pii_digest: Optional[str] = None
    custom_label: Optional[str] = None
    display: str = ""

    def canonical(self) -> str:
        """A stable string key for codebooks and stego embedding.

        The inverse is :func:`payload_from_canonical`; the pair round-trips
        for every payload kind (property-tested).
        """
        parts = [self.kind.value]
        if self.kind in (RevealKind.ATTRIBUTE_SET,
                         RevealKind.ATTRIBUTE_EXCLUDED):
            parts.append(self.attr_id or "")
        elif self.kind is RevealKind.VALUE_IS:
            parts.extend((self.attr_id or "", self.value or ""))
        elif self.kind is RevealKind.VALUE_BIT:
            parts.extend((self.attr_id or "", str(self.bit_index),
                          str(self.bit_value)))
        elif self.kind is RevealKind.PII_PRESENT:
            parts.extend((self.pii_kind or "", self.pii_digest or ""))
        elif self.kind is RevealKind.CUSTOM_ATTRIBUTE:
            parts.append(self.custom_label or "")
        elif self.kind is RevealKind.INTENT:
            parts.append(self.display)
        return "|".join(parts)

    def explicit_text(self) -> str:
        """The human-readable reveal sentence (Figure 1a style)."""
        if self.kind is RevealKind.ATTRIBUTE_SET:
            return (
                f"According to this ad platform, you are: {self.display}."
            )
        if self.kind is RevealKind.ATTRIBUTE_EXCLUDED:
            return (
                f"According to this ad platform, the attribute "
                f"{self.display!r} is false for you or missing from its "
                f"database."
            )
        if self.kind is RevealKind.VALUE_IS:
            return (
                f"According to this ad platform, your {self.display} "
                f"is: {self.value}."
            )
        if self.kind is RevealKind.VALUE_BIT:
            return (
                f"Bit {self.bit_index} of your {self.attr_id} value index "
                f"is {self.bit_value} according to this ad platform."
            )
        if self.kind is RevealKind.PII_PRESENT:
            return (
                f"This ad platform has your {self.pii_kind} "
                f"(hash {self.pii_digest[:12] if self.pii_digest else ''}...)."
            )
        if self.kind is RevealKind.CUSTOM_ATTRIBUTE:
            return (
                f"You match the custom attribute {self.custom_label!r} "
                f"according to this ad platform."
            )
        if self.kind is RevealKind.INTENT:
            return f"The advertiser's intent in targeting you: {self.display}"
        return "You are reachable by ads from your transparency provider."


def payload_from_canonical(canonical: str) -> RevealPayload:
    """Invert :meth:`RevealPayload.canonical`."""
    parts = canonical.split("|")
    try:
        kind = RevealKind(parts[0])
    except ValueError:
        raise EncodingError(f"unknown payload kind in {canonical!r}") from None
    rest = parts[1:]
    if kind in (RevealKind.ATTRIBUTE_SET, RevealKind.ATTRIBUTE_EXCLUDED):
        _require(rest, 1, canonical)
        return RevealPayload(kind=kind, attr_id=rest[0])
    if kind is RevealKind.VALUE_IS:
        _require(rest, 2, canonical)
        return RevealPayload(kind=kind, attr_id=rest[0], value=rest[1])
    if kind is RevealKind.VALUE_BIT:
        _require(rest, 3, canonical)
        return RevealPayload(
            kind=kind, attr_id=rest[0],
            bit_index=int(rest[1]), bit_value=int(rest[2]),
        )
    if kind is RevealKind.PII_PRESENT:
        _require(rest, 2, canonical)
        return RevealPayload(kind=kind, pii_kind=rest[0], pii_digest=rest[1])
    if kind is RevealKind.CUSTOM_ATTRIBUTE:
        _require(rest, 1, canonical)
        return RevealPayload(kind=kind, custom_label=rest[0])
    if kind is RevealKind.INTENT:
        _require(rest, 1, canonical)
        return RevealPayload(kind=kind, display=rest[0])
    return RevealPayload(kind=RevealKind.CONTROL)


def _require(rest, count: int, canonical: str) -> None:
    if len(rest) != count:
        raise EncodingError(
            f"payload {canonical!r} needs {count} fields, got {len(rest)}"
        )


@dataclass
class Tread:
    """One planned (and possibly launched) transparency-enhancing ad.

    ``targeting_text`` is the compact targeting-spec string submitted to
    the platform; ``ad_id`` is filled in once the provider launches the
    Tread; ``landing_path`` is set for LANDING_PAGE placement.
    """

    payload: RevealPayload
    encoding: Encoding
    placement: Placement
    targeting_text: str
    token: Optional[str] = None
    landing_path: Optional[str] = None
    ad_id: Optional[str] = None
    rejected: bool = False
    review_note: str = ""

    @property
    def launched(self) -> bool:
        return self.ad_id is not None and not self.rejected
