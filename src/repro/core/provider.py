"""The transparency provider.

"We envisage that Treads will be run by an entity, such as a non-profit,
with the goal of revealing to users what information has been collected
about them by various advertising platforms" (paper section 1). The
provider is an *ordinary advertiser*: it opens an account, collects
opt-ins, plans one Tread per targeting parameter, launches them, and reads
back only the platform's aggregate reports.

:class:`TransparencyProvider` is the orchestrator; the decode pack it
publishes (:class:`DecodePack`) is everything an opted-in user's extension
needs: the codebook, value tables for multi-valued attributes, and the
provider's identifiers so the extension can recognise provider ads.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import planner
from repro.core.codebook import Codebook
from repro.core.creative import RenderedCreative, render
from repro.core.optin import OptInManager
from repro.core.treads import (
    Encoding,
    Placement,
    RevealKind,
    RevealPayload,
    Tread,
)
from repro.errors import ProviderError
from repro.obs import events as obs_events
from repro.obs import tracing as obs_tracing
from repro.obs.metrics import bind as _obs_bind
from repro.platform.ads import AdStatus
from repro.platform.attributes import Attribute, AttributeKind
from repro.platform.audiences import Audience
from repro.platform.platform import AdPlatform
from repro.platform.reporting import AdPerformanceReport
from repro.platform.web import WebDirectory

_log = logging.getLogger("repro.core.provider")

_obs_provider = _obs_bind(lambda reg: (
    reg.counter("provider.treads_launched"),
    reg.counter("provider.treads_rejected"),
    reg.counter("provider.decode_packs_published"),
))


@dataclass(frozen=True)
class DecodePack:
    """What the provider publishes to opted-in users at sign-up.

    "the provider can share the mapping of targeting information to
    encodings with users when they opt-in" (section 3.1). The pack is all
    public-to-subscribers data; it contains nothing user-specific.
    """

    provider_name: str
    codebook_snapshot: Dict[str, str]
    codebook_salt: str
    #: attr_id -> ordered value table, for bit-split reconstruction.
    value_tables: Dict[str, Tuple[str, ...]]
    #: Advertiser account ids the provider runs, per platform name.
    account_ids: Dict[str, str]
    #: Domains whose landing pages carry Tread payloads.
    landing_domains: Tuple[str, ...]


@dataclass
class LaunchReport:
    """Outcome of launching a batch of Treads."""

    treads: List[Tread] = field(default_factory=list)

    @property
    def launched(self) -> List[Tread]:
        return [t for t in self.treads if t.launched]

    @property
    def rejected(self) -> List[Tread]:
        return [t for t in self.treads if t.rejected]

    @property
    def launch_rate(self) -> float:
        if not self.treads:
            return 0.0
        return len(self.launched) / len(self.treads)


class TransparencyProvider:
    """A transparency provider operating on one platform.

    Parameters
    ----------
    platform:
        The ad platform to operate on.
    web:
        The shared off-platform web directory (the provider registers its
        website here).
    name:
        Provider name; also seeds ids, the website domain, and the
        codebook salt.
    budget:
        Initial ad-account deposit in dollars.
    encoding, placement:
        Default Tread rendering mode (overridable per launch).
    bid_cap_cpm:
        Default bid cap; the paper's validation used $10 CPM (5x the $2
        default) "to increase the chances of these ads winning".
    codebook:
        Pass a shared codebook when several accounts jointly run one
        logical campaign (the crowdsourced provider of section 4).
    """

    def __init__(
        self,
        platform: AdPlatform,
        web: WebDirectory,
        name: str = "transparency-project",
        budget: float = 1000.0,
        encoding: Encoding = Encoding.CODEBOOK,
        placement: Placement = Placement.IN_AD_TEXT,
        bid_cap_cpm: float = 10.0,
        codebook: Optional[Codebook] = None,
        website_domain: Optional[str] = None,
    ):
        self.platform = platform
        self.name = name
        self.default_encoding = encoding
        self.default_placement = placement
        self.bid_cap_cpm = bid_cap_cpm
        self.account = platform.create_ad_account(name, budget=budget)
        self.campaign = platform.create_campaign(
            self.account.account_id, name=f"{name}-treads"
        )
        self.page = platform.create_page(
            self.account.account_id, name=f"{name} updates"
        )
        domain = website_domain or f"{name}.example.org"
        if domain in web:
            self.website = web.resolve(domain)
        else:
            self.website = web.create_site(domain, owner=name)
        self.codebook = codebook if codebook is not None else Codebook(salt=name)
        self.optin = OptInManager(
            platform=platform,
            account_id=self.account.account_id,
            website=self.website,
            page_id=self.page.page_id,
        )
        self.treads: List[Tread] = []
        self._value_tables: Dict[str, Tuple[str, ...]] = {}
        self._pixel_audience: Optional[Audience] = None

    # ------------------------------------------------------------------
    # audiences
    # ------------------------------------------------------------------

    def page_audience_term(self) -> str:
        """Targeting term for the page-like opt-in route (the validation's
        route: "connections" targeting has no minimum audience size)."""
        return f"page:{self.page.page_id}"

    def pixel_audience_term(self) -> str:
        """Targeting term for the anonymous-pixel route.

        Creates the website custom audience on first use. Subject to the
        platform's minimum-audience-size gate at ad submission.
        """
        if self._pixel_audience is None:
            self._pixel_audience = self.platform.create_pixel_audience(
                self.account.account_id,
                self.optin.optin_pixel.pixel_id,
                name=f"{self.name} opt-ins",
            )
        return f"audience:{self._pixel_audience.audience_id}"

    # ------------------------------------------------------------------
    # launching
    # ------------------------------------------------------------------

    def launch(self, treads: Sequence[Tread],
               bid_cap_cpm: Optional[float] = None) -> LaunchReport:
        """Render and submit a batch of planned Treads.

        Review rejections are recorded on the Tread (``rejected`` +
        ``review_note``) rather than raised: a provider sweeping 507
        attributes wants the batch outcome, not an exception on ad 14.
        """
        report = LaunchReport()
        bid = bid_cap_cpm if bid_cap_cpm is not None else self.bid_cap_cpm
        with obs_tracing.tracer().span("provider.launch",
                                       provider=self.name,
                                       batch=len(treads)):
            for tread in treads:
                rendered = self._render(tread)
                self._publish_landing(rendered, tread)
                ad = self.platform.submit_ad(
                    account_id=self.account.account_id,
                    campaign_id=self.campaign.campaign_id,
                    creative=rendered.creative,
                    targeting=tread.targeting_text,
                    bid_cap_cpm=bid,
                )
                tread.ad_id = ad.ad_id
                tread.token = rendered.token
                if ad.status is AdStatus.REJECTED:
                    tread.rejected = True
                    tread.review_note = ad.review_note
                report.treads.append(tread)
                self.treads.append(tread)
        launched_c, rejected_c, _ = _obs_provider()
        launched_c.inc(len(report.launched))
        rejected_c.inc(len(report.rejected))
        _log.info("provider %r launched %d treads (%d rejected)",
                  self.name, len(report.launched), len(report.rejected))
        bus = obs_events.bus()
        if bus.active:
            bus.emit(obs_events.TreadsLaunched(
                provider=self.name,
                launched=len(report.launched),
                rejected=len(report.rejected),
            ))
        return report

    def _render(self, tread: Tread) -> RenderedCreative:
        return render(
            payload=tread.payload,
            encoding=tread.encoding,
            placement=tread.placement,
            codebook=self.codebook,
            landing_domain=self.website.domain,
        )

    def _publish_landing(self, rendered: RenderedCreative,
                         tread: Tread) -> None:
        if rendered.landing_path is None:
            return
        self.website.add_page(
            rendered.landing_path,
            content=rendered.landing_content or "",
        )
        tread.landing_path = rendered.landing_path

    # -- campaign shapes ------------------------------------------------------

    def launch_partner_sweep(
        self,
        audience_term: Optional[str] = None,
        encoding: Optional[Encoding] = None,
        placement: Optional[Placement] = None,
        include_exclusions: bool = False,
        bid_cap_cpm: Optional[float] = None,
    ) -> LaunchReport:
        """The paper's validation campaign: one Tread per US partner
        category (507 ads) plus the control ad."""
        attributes = self.platform.catalog.partner_attributes(
            self.account.country
        )
        return self.launch_attribute_sweep(
            attributes,
            audience_term=audience_term,
            encoding=encoding,
            placement=placement,
            include_exclusions=include_exclusions,
            bid_cap_cpm=bid_cap_cpm,
        )

    def launch_attribute_sweep(
        self,
        attributes: Sequence[Attribute],
        audience_term: Optional[str] = None,
        encoding: Optional[Encoding] = None,
        placement: Optional[Placement] = None,
        include_exclusions: bool = False,
        include_control: bool = True,
        bid_cap_cpm: Optional[float] = None,
    ) -> LaunchReport:
        """One Tread per binary attribute in ``attributes``."""
        treads = planner.binary_sweep(
            [a for a in attributes if a.kind is AttributeKind.BINARY],
            audience_term or self.page_audience_term(),
            encoding or self.default_encoding,
            placement or self.default_placement,
            include_exclusions=include_exclusions,
            include_control=include_control,
        )
        return self.launch(treads, bid_cap_cpm=bid_cap_cpm)

    def launch_value_reveal(
        self,
        attr_id: str,
        scheme: str = "bitsplit",
        audience_term: Optional[str] = None,
        encoding: Optional[Encoding] = None,
        placement: Optional[Placement] = None,
        bid_cap_cpm: Optional[float] = None,
    ) -> LaunchReport:
        """Reveal a multi-valued attribute via enumeration or bit-split."""
        attribute = self.platform.catalog.get(attr_id)
        term = audience_term or self.page_audience_term()
        enc = encoding or self.default_encoding
        plc = placement or self.default_placement
        if scheme == "bitsplit":
            treads = planner.value_bitsplit(attribute, term, enc, plc)
        elif scheme == "enumeration":
            treads = planner.value_enumeration(attribute, term, enc, plc)
        else:
            raise ProviderError(f"unknown value-reveal scheme {scheme!r}")
        self._value_tables[attr_id] = tuple(attribute.values)
        return self.launch(treads, bid_cap_cpm=bid_cap_cpm)

    #: Synthetic attribute ids for demographic reveals (these live outside
    #: the advertiser catalog — they are profile fields targeted via the
    #: dedicated age/zip predicates).
    AGE_ATTR_ID = "demographic:age"
    ZIP_ATTR_ID = "demographic:zip"

    def launch_age_reveal(
        self,
        min_age: int = 13,
        max_age: int = 109,
        audience_term: Optional[str] = None,
        bid_cap_cpm: Optional[float] = None,
    ) -> LaunchReport:
        """The paper's Scale example made concrete: reveal the user's
        exact age with ceil(log2 m) Treads (m = 97 for ages 13..109).

        Bit b's Tread targets the OR of the single-year age ranges whose
        value index has bit b set; a recipient's received-bit pattern
        reconstructs their age via the published value table.
        """
        if min_age > max_age:
            raise ProviderError("age range inverted")
        from repro.core.bitsplit import bits_needed, values_with_bit

        ages = [str(age) for age in range(min_age, max_age + 1)]
        term = audience_term or self.page_audience_term()
        treads: List[Tread] = []
        for bit_index in range(bits_needed(len(ages))):
            matching = values_with_bit(ages, bit_index)
            clauses = [f"age:{age}-{age}" for age in matching]
            or_term = clauses[0] if len(clauses) == 1 \
                else "(" + " | ".join(clauses) + ")"
            payload = RevealPayload(
                kind=RevealKind.VALUE_BIT,
                attr_id=self.AGE_ATTR_ID,
                bit_index=bit_index,
                bit_value=1,
                display="age",
            )
            treads.append(Tread(
                payload=payload,
                encoding=self.default_encoding,
                placement=self.default_placement,
                targeting_text=f"{or_term} & {term}",
            ))
        self._value_tables[self.AGE_ATTR_ID] = tuple(ages)
        return self.launch(treads, bid_cap_cpm=bid_cap_cpm)

    def launch_location_reveal(
        self,
        zip_codes: Sequence[str],
        audience_term: Optional[str] = None,
        bid_cap_cpm: Optional[float] = None,
    ) -> LaunchReport:
        """Reveal which of ``zip_codes`` the platform locates a user in.

        Section 3.1: "a Tread can reveal whether the attribute is set to a
        particular value for the user (e.g., whether a user is determined
        to have recently visited a particular ZIP code)". One Tread per
        candidate ZIP; each user receives at most one (their own), so the
        per-user cost stays one impression regardless of the candidate
        count.
        """
        if not zip_codes:
            raise ProviderError("need at least one ZIP code")
        term = audience_term or self.page_audience_term()
        treads: List[Tread] = []
        for zip_code in zip_codes:
            payload = RevealPayload(
                kind=RevealKind.VALUE_IS,
                attr_id=self.ZIP_ATTR_ID,
                value=zip_code,
                display="ZIP code",
            )
            treads.append(Tread(
                payload=payload,
                encoding=self.default_encoding,
                placement=self.default_placement,
                targeting_text=f"zip:{zip_code} & {term}",
            ))
        self._value_tables[self.ZIP_ATTR_ID] = tuple(zip_codes)
        return self.launch(treads, bid_cap_cpm=bid_cap_cpm)

    def launch_pii_reveals(
        self,
        bid_cap_cpm: Optional[float] = None,
    ) -> LaunchReport:
        """One Tread per collected PII kind, at a PII audience built from
        the opted-in users' hashes (section 3.1, "Supporting PII")."""
        treads: List[Tread] = []
        for kind in self.optin.pii_kinds():
            batch = self.optin.pii_batch(kind)
            audience = self.platform.create_pii_audience(
                self.account.account_id,
                batch,
                name=f"{self.name} pii:{kind}",
            )
            treads.append(
                planner.pii_reveal_tread(
                    pii_kind=kind,
                    audience_id=audience.audience_id,
                    batch_label=audience.audience_id,
                    encoding=self.default_encoding,
                    placement=self.default_placement,
                )
            )
        return self.launch(treads, bid_cap_cpm=bid_cap_cpm)

    def launch_keyword_reveal(
        self,
        label: str,
        phrases: Sequence[str],
        audience_term: Optional[str] = None,
        bid_cap_cpm: Optional[float] = None,
    ) -> LaunchReport:
        """Reveal membership in a keyword (custom intent) audience.

        Google-style platforms match users to advertiser-supplied phrases
        internally (section 2.1); the platform never tells users they were
        matched. One Tread at ``keyword-audience & opted-in`` reveals it:
        recipients learn the platform considers them to match ``phrases``.
        """
        audience = self.platform.create_keyword_audience(
            self.account.account_id, phrases,
            name=f"{self.name} kw:{label}",
        )
        tread = planner.custom_attribute_tread(
            label=label,
            pixel_audience_id=audience.audience_id,
            attribute_term=audience_term or self.page_audience_term(),
            encoding=self.default_encoding,
            placement=self.default_placement,
        )
        return self.launch([tread], bid_cap_cpm=bid_cap_cpm)

    def launch_custom_attribute(
        self,
        label: str,
        attribute_term: str,
        bid_cap_cpm: Optional[float] = None,
    ) -> LaunchReport:
        """Per-attribute pixel opt-in reveal (section 3.1)."""
        optin = self.optin.custom_optin_page(label)
        audience = self.platform.create_pixel_audience(
            self.account.account_id,
            optin.pixel.pixel_id,
            name=f"{self.name} custom:{label}",
        )
        tread = planner.custom_attribute_tread(
            label=label,
            pixel_audience_id=audience.audience_id,
            attribute_term=attribute_term,
            encoding=self.default_encoding,
            placement=self.default_placement,
        )
        return self.launch([tread], bid_cap_cpm=bid_cap_cpm)

    # ------------------------------------------------------------------
    # what the provider can see afterwards
    # ------------------------------------------------------------------

    def publish_decode_pack(self) -> DecodePack:
        """The subscriber bundle: codebook + value tables + identifiers."""
        _obs_provider()[2].inc()
        return DecodePack(
            provider_name=self.name,
            codebook_snapshot=self.codebook.snapshot(),
            codebook_salt=self.codebook.salt,
            value_tables=dict(self._value_tables),
            account_ids={self.platform.name: self.account.account_id},
            landing_domains=(self.website.domain,),
        )

    def estimate_sweep_cost(
        self,
        attributes: Sequence[Attribute],
        audience_term: Optional[str] = None,
        bid_cap_cpm: Optional[float] = None,
        include_control: bool = True,
    ) -> float:
        """Pre-launch worst-case cost estimate for an attribute sweep.

        Uses the platform's rounded potential-reach numbers (the only
        size signal an advertiser gets) times the bid cap per impression.
        Because small audiences are reported as "below floor", and the
        second-price auction charges at most the cap, the estimate is an
        upper bound — a provider budgeting this much cannot be surprised.
        """
        term = audience_term or self.page_audience_term()
        bid = bid_cap_cpm if bid_cap_cpm is not None else self.bid_cap_cpm
        per_impression = bid / 1000.0
        total = 0.0
        specs = [f"attr:{a.attr_id} & {term}" for a in attributes]
        if include_control:
            specs.append(term)
        for spec_text in specs:
            estimate = self.platform.estimate_spec_reach(
                self.account.account_id, spec_text
            )
            total += estimate.displayed * per_impression
        return total

    def performance_reports(self) -> List[AdPerformanceReport]:
        """Everything the platform tells the provider about its Treads."""
        return self.platform.reports(self.account.account_id)

    def aggregate_attribute_counts(self) -> Dict[str, int]:
        """Per-attribute reach counts, the provider's entire knowledge:
        "the transparency provider can estimate how many of the opted-in
        users have a particular attribute" (section 3.1)."""
        counts: Dict[str, int] = {}
        by_ad = {t.ad_id: t for t in self.treads if t.ad_id}
        for report in self.performance_reports():
            tread = by_ad.get(report.ad_id)
            if tread is None or tread.payload.attr_id is None:
                continue
            if tread.payload.kind is RevealKind.ATTRIBUTE_SET:
                counts[tread.payload.attr_id] = report.reach
        return counts

    def prevalence_estimates(self) -> Dict[str, object]:
        """Per-attribute prevalence with Wilson 95% intervals.

        Provider-side statistics over provider-visible numbers only: the
        denominator is the control ad's reach (the provable count of
        reachable subscribers), the numerator each attribute Tread's
        reach. Empty until a control ad has reached someone.
        """
        from repro.analysis.stats import prevalence_estimate

        control_reach = 0
        by_ad = {t.ad_id: t for t in self.treads if t.ad_id}
        for report in self.performance_reports():
            tread = by_ad.get(report.ad_id)
            if tread is not None and \
                    tread.payload.kind is RevealKind.CONTROL:
                control_reach = max(control_reach, report.reach)
        if control_reach == 0:
            return {}
        return {
            attr_id: prevalence_estimate(min(count, control_reach),
                                         control_reach)
            for attr_id, count in self.aggregate_attribute_counts().items()
        }

    def total_spend(self) -> float:
        return self.platform.invoice(self.account.account_id).total

    def total_impressions(self) -> int:
        return self.platform.invoice(self.account.account_id).impressions

    def run_delivery(self, max_rounds: int = 50, sweep: bool = False,
                     sweep_workers: Optional[int] = None) -> None:
        """Drive the platform until the Tread campaign saturates.

        ``sweep=True`` uses the vectorized batch sweep (columnar
        platforms only) — same deliveries and reports, column algebra
        instead of the per-user loop; ``sweep_workers`` > 1 additionally
        partitions rows across forked processes (compact platforms)."""
        if sweep:
            self.platform.run_sweep(max_rounds=max_rounds,
                                    workers=sweep_workers)
        else:
            self.platform.run_until_saturated(max_rounds=max_rounds)
