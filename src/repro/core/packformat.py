"""Decode-pack serialization and subscriber-side validation.

The :class:`~repro.core.provider.DecodePack` is the artifact a provider
actually *publishes* — so it needs a wire format
(:func:`pack_to_json` / :func:`pack_from_json`) and, because subscribers
should not blindly trust a provider, a validator
(:func:`validate_pack`) that checks the pack's internal consistency and
its plausibility against the platform's (semi-public) attribute catalog.

A malformed or malicious pack cannot make the extension *reveal* wrong
platform data (delivery is the ground truth), but it could mislabel what
a token means — validation catches the detectable cases: duplicate
tokens, undecodable canonicals, attribute ids absent from the catalog,
and value tables inconsistent with the bit-split widths.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.core.bitsplit import bits_needed
from repro.core.codebook import Codebook
from repro.core.provider import DecodePack
from repro.core.treads import RevealKind, payload_from_canonical
from repro.errors import EncodingError
from repro.platform.attributes import AttributeCatalog

_FORMAT_VERSION = 1


def pack_to_json(pack: DecodePack) -> str:
    """Serialize a decode pack to a stable JSON document."""
    return json.dumps({
        "format": _FORMAT_VERSION,
        "provider_name": pack.provider_name,
        "codebook_salt": pack.codebook_salt,
        "codebook": pack.codebook_snapshot,
        "value_tables": {k: list(v) for k, v in pack.value_tables.items()},
        "account_ids": pack.account_ids,
        "landing_domains": list(pack.landing_domains),
    }, sort_keys=True)


def pack_from_json(text: str) -> DecodePack:
    """Parse a published decode pack; rejects unknown format versions."""
    data = json.loads(text)
    if data.get("format") != _FORMAT_VERSION:
        raise EncodingError(
            f"unsupported decode-pack format {data.get('format')!r}"
        )
    return DecodePack(
        provider_name=data["provider_name"],
        codebook_snapshot=dict(data["codebook"]),
        codebook_salt=data["codebook_salt"],
        value_tables={k: tuple(v)
                      for k, v in data["value_tables"].items()},
        account_ids=dict(data["account_ids"]),
        landing_domains=tuple(data["landing_domains"]),
    )


def validate_pack(pack: DecodePack,
                  catalog: Optional[AttributeCatalog] = None) -> List[str]:
    """Subscriber-side sanity check; returns human-readable issues.

    An empty list means the pack is internally consistent (and, when a
    catalog is supplied, plausible against it).
    """
    issues: List[str] = []
    try:
        Codebook.from_snapshot(pack.codebook_snapshot,
                               salt=pack.codebook_salt)
    except EncodingError as error:
        issues.append(f"codebook snapshot invalid: {error}")

    seen_attr_bits: dict = {}
    for token, canonical in pack.codebook_snapshot.items():
        try:
            payload = payload_from_canonical(canonical)
        except EncodingError:
            issues.append(f"token {token}: undecodable canonical "
                          f"{canonical!r}")
            continue
        if payload.kind in (RevealKind.ATTRIBUTE_SET,
                            RevealKind.ATTRIBUTE_EXCLUDED,
                            RevealKind.VALUE_IS):
            attr_id = payload.attr_id or ""
            if (catalog is not None and attr_id
                    and not attr_id.startswith("demographic:")
                    and attr_id not in catalog):
                issues.append(
                    f"token {token}: attribute {attr_id!r} not in the "
                    "platform catalog"
                )
        if payload.kind is RevealKind.VALUE_BIT and payload.attr_id:
            width = seen_attr_bits.get(payload.attr_id, 0)
            seen_attr_bits[payload.attr_id] = max(
                width, (payload.bit_index or 0) + 1
            )

    for attr_id, width in seen_attr_bits.items():
        table = pack.value_tables.get(attr_id)
        if table is None:
            issues.append(
                f"bit-split attribute {attr_id!r} has no value table"
            )
            continue
        needed = bits_needed(len(table))
        if width > needed:
            issues.append(
                f"bit-split attribute {attr_id!r}: {width} bit positions "
                f"but the value table needs only {needed}"
            )

    if not pack.account_ids:
        issues.append("pack names no provider accounts")
    return issues
