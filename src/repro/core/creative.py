"""Creative builders: render a reveal payload into a platform creative.

Each combination of :class:`~repro.core.treads.Encoding` and
:class:`~repro.core.treads.Placement` has a rendering rule (paper section
3 and Figure 1):

* EXPLICIT + IN_AD_TEXT — the Figure 1a ad: the reveal sentence is the ad
  body. Asserts a personal attribute, so platform review rejects it — that
  rejection is itself a result the E2/E7 benchmarks reproduce.
* CODEBOOK + IN_AD_TEXT — the Figure 1b ad: an innocuous sentence carrying
  the codebook token ("2,830,120").
* STEGANOGRAPHIC + IN_AD_IMAGE — neutral text, payload in image LSBs.
* EXPLICIT/CODEBOOK + LANDING_PAGE — neutral ad, reveal on a provider-owned
  landing page the ad links to (review never fetches it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.codebook import Codebook
from repro.core.stego import embed
from repro.core.treads import Encoding, Placement, RevealPayload
from repro.errors import EncodingError
from repro.platform.ads import AdCreative, AdImage, LandingURL

#: (encoding, placement) pairs that have a rendering rule.
SUPPORTED_MODES = (
    (Encoding.EXPLICIT, Placement.IN_AD_TEXT),
    (Encoding.CODEBOOK, Placement.IN_AD_TEXT),
    (Encoding.STEGANOGRAPHIC, Placement.IN_AD_IMAGE),
    (Encoding.EXPLICIT, Placement.LANDING_PAGE),
    (Encoding.CODEBOOK, Placement.LANDING_PAGE),
)

_NEUTRAL_HEADLINE = "A note from the Transparency Project"
_NEUTRAL_BODY = "Thanks for subscribing. Tap through for this week's update."
_TOKEN_BODY_TEMPLATE = "Transparency Project update. Reference: {token}."


@dataclass(frozen=True)
class RenderedCreative:
    """A built creative plus the artefacts the provider must track.

    ``token`` is set for codebook renderings (it is also the landing-page
    path component); ``landing_path`` + ``landing_content`` describe the
    page the provider must publish on its website before launching.
    """

    creative: AdCreative
    token: Optional[str] = None
    landing_path: Optional[str] = None
    landing_content: Optional[str] = None


def render(
    payload: RevealPayload,
    encoding: Encoding,
    placement: Placement,
    codebook: Codebook,
    landing_domain: Optional[str] = None,
    image_size: int = 64,
) -> RenderedCreative:
    """Render ``payload`` under one (encoding, placement) mode.

    The codebook is consulted (and extended) for CODEBOOK renderings and
    for landing-page paths, which are keyed by token so that one page
    serves one payload. ``landing_domain`` is required for LANDING_PAGE
    placement.
    """
    if (encoding, placement) not in SUPPORTED_MODES:
        raise EncodingError(
            f"no rendering rule for {encoding.value} + {placement.value}"
        )

    if placement is Placement.IN_AD_TEXT:
        if encoding is Encoding.EXPLICIT:
            return RenderedCreative(
                creative=AdCreative(
                    headline=_NEUTRAL_HEADLINE,
                    body=payload.explicit_text(),
                )
            )
        token = codebook.register(payload)
        return RenderedCreative(
            creative=AdCreative(
                headline=_NEUTRAL_HEADLINE,
                body=_TOKEN_BODY_TEMPLATE.format(token=token),
            ),
            token=token,
        )

    if placement is Placement.IN_AD_IMAGE:
        carrier = embed(
            AdImage.blank(width=image_size, height=image_size),
            payload.canonical(),
        )
        return RenderedCreative(
            creative=AdCreative(
                headline=_NEUTRAL_HEADLINE,
                body=_NEUTRAL_BODY,
                image=carrier,
            )
        )

    # LANDING_PAGE
    if landing_domain is None:
        raise EncodingError("landing-page placement needs a landing_domain")
    token = codebook.register(payload)
    path = landing_path_for_token(token)
    if encoding is Encoding.EXPLICIT:
        content = payload.explicit_text()
    else:
        content = _TOKEN_BODY_TEMPLATE.format(token=token)
    return RenderedCreative(
        creative=AdCreative(
            headline=_NEUTRAL_HEADLINE,
            body=_NEUTRAL_BODY,
            landing_url=LandingURL(domain=landing_domain, path=path),
        ),
        token=token,
        landing_path=path,
        landing_content=content,
    )


def landing_path_for_token(token: str) -> str:
    """Landing-page path for a codebook token: ``/t/2830120``."""
    return "/t/" + token.replace(",", "")
